//! Vendored, offline subset of the `proptest` crate.
//!
//! Supports the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map`, implemented for numeric ranges,
//!   tuples (arity 1–4), [`Just`] and [`prop::collection::vec`],
//! * [`any`] for the primitive types the tests draw,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`.
//!
//! No shrinking: a failing case panics with the sampled inputs' debug
//! representation and the deterministic case number, which is enough to
//! reproduce (cases are seeded from the test name and case index).

use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The deterministic generator handed to strategies.
pub struct TestRng(rand_chacha::ChaCha8Rng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(rand_chacha::ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
}

/// Why a test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the suite quick while still
        // exercising a broad input space per run.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

/// [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}
arbitrary_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Strategy over a type's whole domain.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample_value(rng)
    }
}

/// Helper used by [`prop_oneof!`] so element types unify by inference.
pub fn box_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// `proptest::prop` namespace (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Drives `cases` deterministic executions of one property.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(name, i);
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{name}' failed at deterministic case {i}/{}: {e}", config.cases);
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?} at {}:{}: {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::box_strategy($strategy)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample_value(&($strategy), __proptest_rng);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0.0..10.0f64, (a, b) in (0u32..5, 1usize..4)) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0i32..100).prop_map(|n| n * 2), 0..20)) {
            prop_assert!(v.len() < 20);
            for e in &v {
                prop_assert_eq!(e % 2, 0);
            }
        }

        #[test]
        fn oneof_and_just(c in prop_oneof![Just(1u8), Just(2), Just(3)], y in any::<u64>()) {
            prop_assert!((1..=3).contains(&c));
            let _ = y;
        }
    }
}
