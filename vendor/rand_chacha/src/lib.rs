//! Vendored ChaCha8-based generator.
//!
//! Implements the real ChaCha8 block function (Bernstein 2008, 8 rounds)
//! over a 256-bit seed, exposed through the vendored [`rand`] stub's
//! traits. Deterministic and platform-independent; the exact output
//! stream is *not* guaranteed to match the crates.io `rand_chacha`
//! word-for-word (the workspace never relies on that, only on stable
//! seeded streams).

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate() {
            self.block[i] = w.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, block: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn counter_advances_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn output_is_roughly_uniform() {
        use rand::Rng;
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
