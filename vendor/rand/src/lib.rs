//! Vendored, offline subset of the `rand` crate API.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of `rand` features the workspace actually uses are implemented
//! here: [`RngCore`], [`SeedableRng`] (with the SplitMix64-based
//! `seed_from_u64` expansion the real `rand_core` uses), the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Determinism is the only hard requirement — every generator in the
//! workspace is explicitly seeded — and this stub is fully deterministic
//! and platform-independent.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 — the same
    /// expansion `rand_core` uses, so seeded streams are stable.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + (self.end - self.start) * uniform_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + (hi - lo) * uniform_f64(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        uniform_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&v));
            let i: usize = rng.gen_range(2..9usize);
            assert!((2..9).contains(&i));
            let j: i64 = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Counter(3));
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
