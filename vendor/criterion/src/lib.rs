//! Vendored, offline subset of the `criterion` benchmarking crate.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, `iter` — with a simple median-of-samples wall-clock
//! harness printing one line per benchmark. No plots, no statistics
//! beyond median and min; good enough to compare alternatives locally
//! in a container without crates.io access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    /// Default number of timed samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name, sample_size, throughput: None }
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) {
        run_benchmark("", &id.into(), self.sample_size, None, f);
    }
}

/// Throughput annotation, reported as elements (or bytes) per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named benchmark within a group, optionally parameterised.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.into(), self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Runs closures and accumulates elapsed time.
pub struct Bencher {
    /// Iterations the next `iter` call should execute.
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibration: one iteration to size the sample loop so each sample
    // runs for roughly 25 ms (bounded to keep total time sane).
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(25);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let samples = sample_size.clamp(2, 30);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];

    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let mut line = format!(
        "{label:<48} median {:>12} | min {:>12} | {samples} samples x {iters} iters",
        format_time(median),
        format_time(min),
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if median > 0.0 {
            line.push_str(&format!(" | {:.3e} {unit}", count as f64 / median));
        }
    }
    println!("{line}");
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects benchmark functions into one runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
