//! Quickstart: generate a microcircuit, open it through the builder, and
//! serve every workload through the unified `Query` API — collect,
//! stream with predicate pushdown, explain plans, bind a zero-alloc
//! session, find synapse candidates and replay a SCOUT walkthrough.
//!
//! Run with: `cargo run --release --example quickstart`

use neurospatial::prelude::*;

fn main() {
    // --- 1. Generate a synthetic microcircuit ---------------------------
    // (substitute for the proprietary Blue Brain datasets; see DESIGN.md)
    let circuit = CircuitBuilder::new(42)
        .neurons(40)
        .morphology(MorphologyParams::cortical())
        .placement(SomaPlacement::Layered { count: 4, jitter: 15.0 })
        .build();
    println!(
        "circuit: {} neurons, {} segments, bounds {}",
        circuit.neuron_count(),
        circuit.segments().len(),
        circuit.bounds()
    );

    // --- 2. Open a spatial database through the builder ------------------
    // FLAT backend, named populations (replacing the even/odd default).
    let db = NeuroDb::builder()
        .circuit(&circuit)
        .backend(IndexBackend::Flat)
        .split_populations("axons", "dendrites", |s| s.neuron % 2 == 0)
        .build()
        .expect("valid configuration");
    let flat = db.flat_index().expect("FLAT backend selected above");
    println!(
        "FLAT index: {} pages, {:.1} neighbors/page, seed-tree height {}",
        flat.page_count(),
        flat.mean_neighbors(),
        flat.seed_tree_height()
    );

    // --- 3. One composable query surface ----------------------------------
    // Everything below runs through db.query(): what (range/knn/touching/
    // along_path) × over what (in_population/filter/limit) × how
    // (collect/stream/session), with explain() on every shape.
    let region = Aabb::cube(circuit.bounds().center(), 50.0);
    let out = db.query().range(region).collect().expect("no population constraint");
    println!(
        "\nrange query {}: {} segments, {} index reads, {} re-seeds",
        region,
        out.len(),
        out.stats.nodes_read,
        out.stats.reseeds
    );
    println!("  plan: {}", db.query().range(region).explain());

    // --- 3b. Stream with predicate pushdown: no result Vec is ever built.
    let thick = |s: &NeuronSegment| s.geom.radius > 0.4;
    let mut thick_cable = 0.0;
    let stats = db
        .query()
        .range(region)
        .filter(&thick)
        .stream(|s| thick_cable += s.geom.axis_length())
        .expect("no population constraint");
    println!(
        "streamed {} thick segments ({:.0} µm cable) without materializing; \
         plan: {}",
        stats.results,
        thick_cable,
        db.query().range(region).filter(&thick).explain()
    );

    // --- 3c. KNN and population-restricted queries through the same grammar.
    let p = circuit.bounds().center();
    let (nearest, _) =
        db.query().knn(p, 5).in_population("axons").collect().expect("population exists");
    println!(
        "5 nearest axon segments to the centre: {:?}",
        nearest.iter().map(|n| n.segment.id).collect::<Vec<_>>()
    );

    // --- 3d. Race every backend on the same query -------------------------
    println!("\nbackend race on the same query (identical results, different cost):");
    for backend in IndexBackend::ALL {
        let index = backend.build(circuit.segments().to_vec(), &IndexParams::default());
        let o = index.range_query(&region);
        assert_eq!(o.sorted_ids(), out.sorted_ids(), "backends must agree");
        println!(
            "  {:>10}: {:>5} results | {:>5} index reads | {:>9.1} KiB",
            backend.name(),
            o.len(),
            o.stats.nodes_read,
            index.memory_bytes() as f64 / 1024.0
        );
    }

    // --- 3e. Tissue statistics (the §2.1 use case) ------------------------
    let stats = db.region_stats(&region);
    println!(
        "\nregion stats: {} segments of {} neurons | {:.0} µm cable | density {:.4} seg/µm³",
        stats.count, stats.neuron_count, stats.total_cable_length, stats.density
    );

    // --- 4. Session: one scratch bound across a serving loop --------------
    // Steady-state queries allocate nothing; with_prefetch additionally
    // replays the loop against simulated cold storage with SCOUT.
    let mut session =
        db.query().session().with_prefetch(WalkthroughMethod::Scout).expect("FLAT backend");
    let mut served = 0usize;
    for step in 0..6 {
        let q = Aabb::cube(circuit.bounds().center() + Vec3::splat(step as f64 * 8.0), 25.0);
        let (hits, _) = session.range(&q);
        served += hits.len();
    }
    let prefetch = session.prefetch_stats().expect("cursor bound").clone();
    println!(
        "\nsession served {served} segments over 6 queries; simulated cold-storage replay: \
         {:.1} ms stall, {:.0}% hit ratio, {} pages prefetched",
        prefetch.total_stall_ms,
        prefetch.hit_ratio() * 100.0,
        prefetch.total_prefetched
    );

    // --- 5. Synapse candidates (TOUCH distance join) ---------------------
    let eps = 2.5; // µm
    let synapses = db
        .query()
        .touching("dendrites", eps)
        .in_population("axons")
        .collect()
        .expect("populations declared above");
    println!(
        "synapse candidates at ε={eps}: {} pairs in {:.1} ms ({} comparisons, {} filtered out)",
        synapses.pairs.len(),
        synapses.stats.total_ms,
        synapses.stats.total_comparisons(),
        synapses.stats.filtered_out
    );

    // --- 6. Branch-following walkthrough with SCOUT ----------------------
    let path = db
        .navigation_path(&circuit, 7, 25.0, 10.0)
        .expect("generated circuits always have branches");
    println!(
        "walkthrough: following neuron {} over {} steps ({:.0} µm); plan: {}",
        path.neuron,
        path.queries.len(),
        path.path_length(),
        db.query().along_path(&path).explain()
    );
    for method in WalkthroughMethod::ALL {
        let s = db.query().along_path(&path).method(method).run().expect("FLAT backend");
        println!(
            "  {:>13}: stall {:>8.1} ms | hit ratio {:>5.1}% | prefetched {:>4} pages ({:>5.1}% useful)",
            s.method,
            s.total_stall_ms,
            s.hit_ratio() * 100.0,
            s.total_prefetched,
            s.prefetch_precision() * 100.0,
        );
    }
}
