//! Quickstart: generate a microcircuit, open it through the builder,
//! race the index backends on the same query, find synapse candidates
//! between named populations and replay an exploration walkthrough.
//!
//! Run with: `cargo run --release --example quickstart`

use neurospatial::prelude::*;

fn main() {
    // --- 1. Generate a synthetic microcircuit ---------------------------
    // (substitute for the proprietary Blue Brain datasets; see DESIGN.md)
    let circuit = CircuitBuilder::new(42)
        .neurons(40)
        .morphology(MorphologyParams::cortical())
        .placement(SomaPlacement::Layered { count: 4, jitter: 15.0 })
        .build();
    println!(
        "circuit: {} neurons, {} segments, bounds {}",
        circuit.neuron_count(),
        circuit.segments().len(),
        circuit.bounds()
    );

    // --- 2. Open a spatial database through the builder ------------------
    // FLAT backend, named populations (replacing the even/odd default).
    let db = NeuroDb::builder()
        .circuit(&circuit)
        .backend(IndexBackend::Flat)
        .split_populations("axons", "dendrites", |s| s.neuron % 2 == 0)
        .build()
        .expect("valid configuration");
    let flat = db.flat_index().expect("FLAT backend selected above");
    println!(
        "FLAT index: {} pages, {:.1} neighbors/page, seed-tree height {}",
        flat.page_count(),
        flat.mean_neighbors(),
        flat.seed_tree_height()
    );

    // --- 3. Range query through the backend-agnostic API ------------------
    let region = Aabb::cube(circuit.bounds().center(), 50.0);
    let out = db.range_query(&region);
    println!(
        "range query {}: {} segments, {} index reads, {} re-seeds",
        region,
        out.len(),
        out.stats.nodes_read,
        out.stats.reseeds
    );

    // --- 3b. Race every backend on the same query -------------------------
    println!("\nbackend race on the same query (identical results, different cost):");
    for backend in IndexBackend::ALL {
        let index = backend.build(circuit.segments().to_vec(), &IndexParams::default());
        let o = index.range_query(&region);
        assert_eq!(o.sorted_ids(), out.sorted_ids(), "backends must agree");
        println!(
            "  {:>10}: {:>5} results | {:>5} index reads | {:>9.1} KiB",
            backend.name(),
            o.len(),
            o.stats.nodes_read,
            index.memory_bytes() as f64 / 1024.0
        );
    }

    // --- 3c. Tissue statistics (the §2.1 use case) ------------------------
    let stats = db.region_stats(&region);
    println!(
        "\nregion stats: {} segments of {} neurons | {:.0} µm cable | density {:.4} seg/µm³",
        stats.count, stats.neuron_count, stats.total_cable_length, stats.density
    );

    // --- 4. Synapse candidates (TOUCH distance join) ---------------------
    let eps = 2.5; // µm
    let synapses = db.join_between("axons", "dendrites", eps).expect("populations declared above");
    println!(
        "synapse candidates at ε={eps}: {} pairs in {:.1} ms ({} comparisons, {} filtered out)",
        synapses.pairs.len(),
        synapses.stats.total_ms,
        synapses.stats.total_comparisons(),
        synapses.stats.filtered_out
    );

    // --- 5. Branch-following walkthrough with SCOUT ----------------------
    let path = db
        .navigation_path(&circuit, 7, 25.0, 10.0)
        .expect("generated circuits always have branches");
    println!(
        "walkthrough: following neuron {} over {} steps ({:.0} µm)",
        path.neuron,
        path.queries.len(),
        path.path_length()
    );
    for method in WalkthroughMethod::ALL {
        let s = db.walkthrough(&path, method).expect("FLAT backend");
        println!(
            "  {:>13}: stall {:>8.1} ms | hit ratio {:>5.1}% | prefetched {:>4} pages ({:>5.1}% useful)",
            s.method,
            s.total_stall_ms,
            s.hit_ratio() * 100.0,
            s.total_prefetched,
            s.prefetch_precision() * 100.0,
        );
    }
}
