//! Quickstart: generate a microcircuit, index it, query it, find synapse
//! candidates and replay an exploration walkthrough.
//!
//! Run with: `cargo run --release --example quickstart`

use neurospatial::prelude::*;

fn main() {
    // --- 1. Generate a synthetic microcircuit ---------------------------
    // (substitute for the proprietary Blue Brain datasets; see DESIGN.md)
    let circuit = CircuitBuilder::new(42)
        .neurons(40)
        .morphology(MorphologyParams::cortical())
        .placement(SomaPlacement::Layered { count: 4, jitter: 15.0 })
        .build();
    println!(
        "circuit: {} neurons, {} segments, bounds {}",
        circuit.neuron_count(),
        circuit.segments().len(),
        circuit.bounds()
    );

    // --- 2. Open a spatial database (FLAT index underneath) -------------
    let db = NeuroDb::from_circuit(&circuit);
    println!(
        "FLAT index: {} pages, {:.1} neighbors/page, seed-tree height {}",
        db.index().page_count(),
        db.index().mean_neighbors(),
        db.index().seed_tree_height()
    );

    // --- 3. Range query --------------------------------------------------
    let region = Aabb::cube(circuit.bounds().center(), 50.0);
    let (hits, stats) = db.range_query(&region);
    println!(
        "range query {}: {} segments, {} data pages read, {} seed nodes, {} re-seeds",
        region, hits.len(), stats.pages_read, stats.seed_nodes_read, stats.reseeds
    );

    // --- 3b. Tissue statistics (the §2.1 use case) ------------------------
    let stats = db.region_stats(&region);
    println!(
        "region stats: {} segments of {} neurons | {:.0} µm cable | density {:.4} seg/µm³",
        stats.count, stats.neuron_count, stats.total_cable_length, stats.density
    );

    // --- 4. Synapse candidates (TOUCH distance join) ---------------------
    let eps = 2.5; // µm
    let synapses = db.find_synapse_candidates(eps);
    println!(
        "synapse candidates at ε={eps}: {} pairs in {:.1} ms ({} comparisons, {} filtered out)",
        synapses.pairs.len(),
        synapses.stats.total_ms,
        synapses.stats.total_comparisons(),
        synapses.stats.filtered_out
    );

    // --- 5. Branch-following walkthrough with SCOUT ----------------------
    let path = db
        .navigation_path(&circuit, 7, 25.0, 10.0)
        .expect("generated circuits always have branches");
    println!(
        "walkthrough: following neuron {} over {} steps ({:.0} µm)",
        path.neuron,
        path.queries.len(),
        path.path_length()
    );
    for method in WalkthroughMethod::ALL {
        let s = db.walkthrough(&path, method);
        println!(
            "  {:>13}: stall {:>8.1} ms | hit ratio {:>5.1}% | prefetched {:>4} pages ({:>5.1}% useful)",
            s.method,
            s.total_stall_ms,
            s.hit_ratio() * 100.0,
            s.total_prefetched,
            s.prefetch_precision() * 100.0,
        );
    }
}
