//! Live ingest quickstart: open a WAL-backed database, apply durable
//! writes while querying, ride a background re-freeze, then crash
//! (drop) and recover the acknowledged state from the log.
//!
//! Run with: `cargo run --release --example ingest_quickstart`

use neurospatial::prelude::*;

fn main() {
    let circuit = CircuitBuilder::new(42).neurons(20).build();
    let wal = std::env::temp_dir()
        .join(format!("neurospatial-ingest-quickstart-{}.wal", std::process::id()));
    std::fs::remove_file(&wal).ok();

    // --- 1. Open live: .durable(path) turns on the WAL -----------------
    {
        let db = NeuroDb::builder()
            .circuit(&circuit)
            .durable(&wal)
            .refreeze_threshold(64) // fold the delta into the base this often
            .build()
            .expect("valid configuration");
        println!("live: {} base segments, wal at {}", db.len(), wal.display());

        // --- 2. Durable writes: the ack means "fsynced, survives a crash"
        let far = Vec3::new(9_000.0, 0.0, 0.0);
        let ack = db
            .insert_segment(NeuronSegment {
                id: 1_000_000,
                neuron: 999,
                section: 0,
                index_on_section: 0,
                geom: Segment::new(far, far + Vec3::new(2.0, 0.0, 0.0), 0.5),
            })
            .expect("acked");
        let gone = circuit.segments()[0].id;
        db.remove_segment(gone).expect("acked");
        println!("acked through lsn {}, {} ops pending in the delta", ack.lsn, {
            db.wal_health().expect("live").pending_ops
        });

        // --- 3. Queries merge base + delta immediately ------------------
        let hit = db.range_query(&Aabb::cube(far, 10.0));
        assert_eq!(hit.sorted_ids(), vec![1_000_000]);
        println!("insert visible: {:?}; removed id {gone} is masked", hit.sorted_ids());

        // --- 4. Re-freeze: rebuild base+delta, atomic swap, checkpoint --
        let epoch = db.refreeze().expect("refrozen");
        let h = db.wal_health().expect("live");
        println!("swap #{epoch}: delta folded in, wal truncated to {} bytes", h.wal_bytes);
        // (a background poller can do this instead: db.with_ingest_maintenance)
    } // <- "crash": the database drops with writes still in the log

    // --- 5. Recovery: the WAL is the source of truth --------------------
    let db = NeuroDb::builder().segments(vec![]).durable(&wal).build().expect("recovered");
    let h = db.wal_health().expect("live");
    println!(
        "recovered {} segments (replayed {} ops, torn tail: {})",
        db.len(),
        h.replayed_ops,
        h.recovered_torn_tail
    );
    assert_eq!(db.range_query(&Aabb::cube(Vec3::new(9_000.0, 0.0, 0.0), 10.0)).len(), 1);

    std::fs::remove_file(&wal).ok();
}
