//! Synapse detection: the TOUCH workload of §4 of the paper, driven
//! through the unified `Query` builder.
//!
//! Opens a database with named axon/dendrite populations, runs the
//! ε-distance join as `query().touching(..)` — plain, filtered (predicate
//! pushed onto the left population) and limited — then races the five
//! join algorithms on the same pair set and prints the statistics the
//! demo shows live: time, memory footprint, pairwise comparisons.
//!
//! Run with: `cargo run --release --example synapse_detection`

use neurospatial::prelude::*;

fn main() {
    let circuit =
        CircuitBuilder::new(7).neurons(30).morphology(MorphologyParams::cortical()).build();
    let db = NeuroDb::builder()
        .circuit(&circuit)
        .split_populations("axons", "dendrites", |s| s.neuron % 2 == 0)
        .build()
        .expect("valid configuration");
    let axons = db.population("axons").expect("declared");
    let dendrites = db.population("dendrites").expect("declared");
    println!("populations: |axons| = {} segments, |dendrites| = {}", axons.len(), dendrites.len());

    let eps = 2.0;

    // --- The workload through the builder --------------------------------
    println!("\nplan: {}", db.query().touching("dendrites", eps).in_population("axons").explain());
    let synapses = db
        .query()
        .touching("dendrites", eps)
        .in_population("axons")
        .collect()
        .expect("populations exist");
    println!(
        "touching(ε={eps}): {} candidate pairs in {:.1} ms",
        synapses.pairs.len(),
        synapses.stats.total_ms
    );

    // Pushdown composition: only proximal axon segments (first on their
    // section) join, pair indices still address the full population.
    let proximal = |s: &NeuronSegment| s.index_on_section < 4;
    let filtered = db
        .query()
        .touching("dendrites", eps)
        .in_population("axons")
        .filter(&proximal)
        .collect()
        .expect("populations exist");
    assert!(filtered.pairs.iter().all(|&(i, _)| proximal(&axons[i as usize])));
    println!(
        "filtered to proximal axon segments: {} pairs (indices stay population-relative)",
        filtered.pairs.len()
    );

    // Sink-based delivery: aggregate per neuron pair without keeping the
    // pair vector around.
    use std::collections::HashMap;
    let mut per_pair: HashMap<(u32, u32), usize> = HashMap::new();
    db.query()
        .touching("dendrites", eps)
        .in_population("axons")
        .stream(|i, j| {
            *per_pair
                .entry((axons[i as usize].neuron, dendrites[j as usize].neuron))
                .or_default() += 1;
        })
        .expect("populations exist");
    let mut counts: Vec<_> = per_pair.into_iter().collect();
    counts.sort_by_key(|&(pair, c)| (std::cmp::Reverse(c), pair));
    println!("\ntop connected neuron pairs (pre-synaptic, post-synaptic, contact sites):");
    for ((a, b), c) in counts.into_iter().take(5) {
        println!("  neuron {a:>3} ↔ neuron {b:>3}: {c} candidate sites");
    }

    // --- Race the join algorithms on the same pair set --------------------
    println!(
        "\n{:>13} | {:>10} | {:>12} | {:>12} | {:>10} | {:>8}",
        "method", "time ms", "comparisons", "aux mem KiB", "pairs", "build ms"
    );
    let run = |name: &str, r: JoinResult| {
        println!(
            "{:>13} | {:>10.1} | {:>12} | {:>12.1} | {:>10} | {:>8.1}",
            name,
            r.stats.total_ms,
            r.stats.total_comparisons(),
            r.stats.aux_memory_bytes as f64 / 1024.0,
            r.pairs.len(),
            r.stats.build_ms,
        );
        r.sorted_pairs()
    };
    let reference = synapses.sorted_pairs();
    let others = [
        run("touch", TouchJoin::default().join(axons, dendrites, eps)),
        run("touch(4thr)", TouchJoin::parallel(4).join(axons, dendrites, eps)),
        run("pbsm", PbsmJoin::default().join(axons, dendrites, eps)),
        run("s3", S3Join::default().join(axons, dendrites, eps)),
        run("plane-sweep", PlaneSweepJoin.join(axons, dendrites, eps)),
        run("nested-loop", NestedLoopJoin.join(axons, dendrites, eps)),
    ];
    for o in &others {
        assert_eq!(*o, reference, "all algorithms must agree with the builder's join");
    }
    println!("\nall {} algorithms returned the builder's pair set ✓", others.len());
}
