//! Synapse detection: the TOUCH workload of §4 of the paper.
//!
//! Builds two neuron populations, races all five join algorithms on the
//! same ε-distance join, and prints the statistics the demo shows live:
//! time, memory footprint, pairwise comparisons.
//!
//! Run with: `cargo run --release --example synapse_detection`

use neurospatial::prelude::*;

fn main() {
    let circuit =
        CircuitBuilder::new(7).neurons(30).morphology(MorphologyParams::cortical()).build();
    let (axons, dendrites) = circuit.split_populations();
    println!("populations: |A| = {} segments, |B| = {} segments", axons.len(), dendrites.len());

    let eps = 2.0;
    println!("\ndistance join at ε = {eps} µm:");
    println!(
        "{:>13} | {:>10} | {:>12} | {:>12} | {:>10} | {:>8}",
        "method", "time ms", "comparisons", "aux mem KiB", "pairs", "build ms"
    );

    let run = |name: &str, r: JoinResult| {
        println!(
            "{:>13} | {:>10.1} | {:>12} | {:>12.1} | {:>10} | {:>8.1}",
            name,
            r.stats.total_ms,
            r.stats.total_comparisons(),
            r.stats.aux_memory_bytes as f64 / 1024.0,
            r.pairs.len(),
            r.stats.build_ms,
        );
        r.sorted_pairs()
    };

    let reference = run("touch", TouchJoin::default().join(&axons, &dendrites, eps));
    let others = [
        run("touch(4thr)", TouchJoin::parallel(4).join(&axons, &dendrites, eps)),
        run("pbsm", PbsmJoin::default().join(&axons, &dendrites, eps)),
        run("s3", S3Join::default().join(&axons, &dendrites, eps)),
        run("plane-sweep", PlaneSweepJoin.join(&axons, &dendrites, eps)),
        run("nested-loop", NestedLoopJoin.join(&axons, &dendrites, eps)),
    ];
    for o in &others {
        assert_eq!(*o, reference, "all algorithms must agree");
    }
    println!("\nall {} algorithms returned identical pair sets ✓", others.len() + 1);

    // Where would the synapses go? Summarise per neuron pair.
    use std::collections::HashMap;
    let mut per_pair: HashMap<(u32, u32), usize> = HashMap::new();
    let r = TouchJoin::default().join(&axons, &dendrites, eps);
    for &(i, j) in &r.pairs {
        *per_pair.entry((axons[i as usize].neuron, dendrites[j as usize].neuron)).or_default() += 1;
    }
    let mut counts: Vec<_> = per_pair.into_iter().collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\ntop connected neuron pairs (pre-synaptic, post-synaptic, contact sites):");
    for ((a, b), c) in counts.into_iter().take(5) {
        println!("  neuron {a:>3} ↔ neuron {b:>3}: {c} candidate sites");
    }
}
