//! Out-of-core quickstart: spill a FLAT index to a real page file,
//! query it through a bounded buffer pool with background prefetching,
//! and watch the physical I/O counters — while every answer stays
//! byte-identical to the in-memory index.
//!
//! Run with: `cargo run --release --example ooc_quickstart`

use neurospatial::prelude::*;
use neurospatial::scout::ooc::frame_budget_for;

fn main() {
    // --- 1. A circuit big enough to make paging interesting -------------
    let circuit =
        CircuitBuilder::new(42).neurons(60).morphology(MorphologyParams::cortical()).build();
    println!("circuit: {} segments, bounds {}", circuit.segments().len(), circuit.bounds());

    // An in-memory database as the ground truth to compare against.
    let mem = NeuroDb::from_circuit(&circuit);
    let pages = mem.flat_index().expect("FLAT default").page_count();

    // --- 2. Spill to disk: same data, bounded RAM ------------------------
    // .paged(true) writes the FLAT index to a checksummed page file in
    // the temp directory (deleted on drop; use .page_file(path) to keep
    // it) and opens it through the pager. The frame budget caps how many
    // pages stay resident: here 10% of the dataset.
    let budget = frame_budget_for(pages, 10);
    let db = NeuroDb::builder()
        .circuit(&circuit)
        .paged(true)
        .frame_budget(budget)
        .prefetch_workers(2)
        .build()
        .expect("temp dir is writable");
    let paged = db.paged_index().expect("paged mode selected above");
    println!(
        "paged FLAT: {} pages on disk at {}, {budget} frames resident ({} policy), \
         engine footprint {:.1} KiB",
        paged.page_count(),
        paged.path().display(),
        paged.ooc().pool().policy(),
        paged.ooc().memory_bytes() as f64 / 1024.0,
    );

    // --- 3. Queries read through the buffer pool -------------------------
    // Results and logical statistics are byte-identical to the in-memory
    // backend; the cache_* fields report the real page I/O.
    let region = Aabb::cube(circuit.bounds().center(), 50.0);
    let (want, got) = (mem.range_query(&region), db.range_query(&region));
    assert_eq!(want.sorted_ids(), got.sorted_ids(), "paged answers match in-memory");
    println!(
        "\nrange query {region}: {} segments | {} index reads | \
         {} pool hits, {} misses, {} evictions",
        got.len(),
        got.stats.nodes_read,
        got.stats.cache_hits,
        got.stats.cache_misses,
        got.stats.cache_evictions,
    );

    // Re-running the same query hits the pool instead of the disk.
    let again = db.range_query(&region);
    println!(
        "same query again: {} hits, {} misses (the pool remembered {} of {} pages)",
        again.stats.cache_hits,
        again.stats.cache_misses,
        budget.min(pages),
        pages
    );

    // --- 4. A real-I/O walkthrough with SCOUT prefetching ----------------
    // Prefetches are actual background reads racing the exploration
    // cursor through the same pool — stall time is wall-clock, not
    // simulated.
    let path = db.navigation_path(&circuit, 7, 25.0, 10.0).expect("branches exist");
    println!("\nwalkthrough over {} steps at a {budget}-frame budget:", path.queries.len());
    for method in [WalkthroughMethod::None, WalkthroughMethod::Scout] {
        let s = db.walkthrough(&path, method).expect("paged FLAT supports walkthroughs");
        println!(
            "  {:>6}: stall {:>7.2} ms | {:>4} demand misses | {:>4} pages prefetched \
             ({} later demanded)",
            s.method,
            s.total_stall_ms,
            s.total_demand_misses,
            s.total_prefetched,
            s.useful_prefetched,
        );
    }

    // --- 5. The cumulative pool counters ---------------------------------
    let fs = paged.frame_stats();
    println!(
        "\nframe pool lifetime: {} hits / {} misses / {} evictions / {} prefetched",
        fs.hits, fs.misses, fs.evictions, fs.prefetched
    );
}
