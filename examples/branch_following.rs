//! Branch following: the SCOUT walkthrough of §3 of the paper.
//!
//! Simulates a scientist following a neuron branch through the model with
//! moving range queries, comparing all four prefetching policies, and
//! prints the candidate-pruning series of Figure 5.
//!
//! Run with: `cargo run --release --example branch_following`

use neurospatial::prelude::*;
use neurospatial::scout::{PrefetchContext, ScoutPrefetcher};

fn main() {
    let circuit =
        CircuitBuilder::new(13).neurons(25).morphology(MorphologyParams::cortical()).build();
    let db = NeuroDb::from_circuit(&circuit);
    let path = db
        .navigation_path(&circuit, 3, 22.0, 9.0)
        .expect("generated circuits always have branches");

    println!(
        "following neuron {} through {} sections, {} steps, {:.0} µm of cable",
        path.neuron,
        path.sections.len(),
        path.queries.len(),
        path.path_length()
    );

    // --- Figure 6: per-method walkthrough statistics ---------------------
    println!("\nwalkthrough statistics (disk model: {:?}):", CostModel::default());
    println!(
        "{:>13} | {:>9} | {:>9} | {:>10} | {:>11} | {:>8}",
        "method", "stall ms", "hit rate", "prefetched", "useful", "speedup"
    );
    let baseline = db.walkthrough(&path, WalkthroughMethod::None).expect("flat backend");
    for m in WalkthroughMethod::ALL {
        let s = db.walkthrough(&path, m).expect("flat backend");
        println!(
            "{:>13} | {:>9.1} | {:>8.1}% | {:>10} | {:>10.1}% | {:>7.1}×",
            s.method,
            s.total_stall_ms,
            s.hit_ratio() * 100.0,
            s.total_prefetched,
            s.prefetch_precision() * 100.0,
            s.speedup_over(&baseline).min(999.0),
        );
    }

    // --- Figure 5: candidate-set pruning ---------------------------------
    // Replay the walkthrough manually to expose SCOUT's candidate counts.
    let mut scout = ScoutPrefetcher::default();
    let mut history = Vec::new();
    let flat = db.flat_index().expect("default backend is FLAT");
    for q in &path.queries {
        history.push(q.center());
        let (result, stats) = flat.range_query(q);
        let pages: Vec<u32> = stats.crawl_order.clone();
        let ctx =
            PrefetchContext { query: q, result: &result, history: &history, pages_read: &pages };
        let _ = scout.plan(&ctx);
    }
    println!("\ncandidate structures per step (the paper's Figure 5 pruning):");
    print!("  ");
    for (i, c) in scout.candidate_history().iter().enumerate() {
        print!("q{i}:{c} ");
    }
    println!();
    let last = *scout.candidate_history().last().expect("at least one step");
    println!(
        "  → converged to {last} candidate(s); the followed structure was {}",
        if last <= 2 { "identified" } else { "still ambiguous" }
    );
}
