//! Spin up a `neurospatial-server` and talk to it — in one process.
//!
//! The server borrows the database inside a scoped thread pool, so the
//! whole arrangement needs no `Arc`, no `'static`, and shuts down by
//! joining when the callback returns. Run with:
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use neurospatial::prelude::*;
use neurospatial::WalkthroughMethod;
use neurospatial_server::protocol::QueryDescView;
use neurospatial_server::{serve_with, Client, FilterRegistry, QueryDesc, Request, ServerConfig};
use std::sync::atomic::Ordering;

fn main() {
    // A database: synthetic microcircuit, FLAT backend, two populations.
    let circuit = CircuitBuilder::new(7).neurons(24).build();
    let db = NeuroDb::builder()
        .circuit(&circuit)
        .backend(IndexBackend::Flat)
        .split_populations("axons", "dendrites", |s| s.neuron % 2 == 0)
        .build()
        .expect("valid configuration");

    // Predicates can't cross the wire; clients name server-registered
    // filters by id instead.
    let low_neurons = |s: &NeuronSegment| s.neuron < 8;
    let mut filters = FilterRegistry::new();
    filters.register(1, &low_neurons);

    let region = Aabb::cube(circuit.bounds().center(), 35.0);
    let cfg = ServerConfig::default();

    serve_with(&db, &filters, &cfg, |handle| {
        println!("serving on {}", handle.addr());
        let mut client = Client::connect(handle.addr()).expect("connect");

        // 1. Plain range query, streamed back in chunks.
        let mut segments = Vec::new();
        let stats = client
            .range(
                &QueryDescView { tenant: 42, ..QueryDescView::default() },
                &region,
                &mut segments,
            )
            .expect("range");
        println!("range: {} segments, {} index nodes read", segments.len(), stats.nodes_read);

        // 2. The same query with the full pushdown envelope: population
        //    membership, server-side filter 1, limit 10 — all applied
        //    below the index traversal, on the server.
        let desc = QueryDescView {
            tenant: 42,
            population: Some("axons"),
            filter_id: Some(1),
            limit: Some(10),
            ..QueryDescView::default()
        };
        let stats = client.range(&desc, &region, &mut segments).expect("filtered range");
        println!("pushdown range: {} segments (limit 10)", stats.results);

        // 3. Count-only aggregation: nothing is materialized anywhere.
        let (count, _) = client
            .count(&QueryDescView { tenant: 42, ..QueryDescView::default() }, &region)
            .expect("count");
        println!("count: {count} segments in region");

        // 4. K nearest neighbours.
        let mut neighbors = Vec::new();
        let stats = client
            .knn(&QueryDescView::default(), circuit.bounds().center(), 5, &mut neighbors)
            .expect("knn");
        println!("knn: {} neighbours ({} objects tested)", neighbors.len(), stats.objects_tested);

        // 5. ε-distance join between the populations (TOUCH).
        let mut pairs = Vec::new();
        let desc = QueryDescView { population: Some("axons"), ..QueryDescView::default() };
        client.touching(&desc, "dendrites", 3.0, &mut pairs).expect("touching");
        println!("touching: {} candidate synapse pairs", pairs.len());

        // 6. Walkthrough replay with SCOUT prefetching (FLAT only).
        if let Some(path) = db.navigation_path(&circuit, 1, 20.0, 8.0) {
            let walk = client.walkthrough(0, WalkthroughMethod::Scout, &path).expect("walk");
            println!(
                "walkthrough: {} steps, {} demand misses, {} pages prefetched",
                walk.steps, walk.demand_misses, walk.prefetched
            );
        }

        // 7. EXPLAIN: what would run, without running it.
        let plan = client
            .explain(&Request::Range { desc: QueryDesc::tenant(42), region })
            .expect("explain");
        println!("plan: {} via {}, ~{} reads", plan.operation, plan.backend, plan.estimated_reads);

        // 8. Per-tenant accounting, straight off the server.
        let totals = client.stats(42).expect("stats");
        println!(
            "tenant 42: {} queries, {} results, {} nodes read",
            totals.queries, totals.results, totals.nodes_read
        );
        println!(
            "server: {} connections accepted, {} rejected",
            handle.metrics().accepted.load(Ordering::Relaxed),
            handle.metrics().rejected.load(Ordering::Relaxed)
        );
    })
    .expect("bind server");
}
