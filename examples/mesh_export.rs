//! Mesh and morphology export: write one synthetic neuron as Wavefront
//! OBJ (the surface-mesh artefact the demo renders, cf. Figure 1) and as
//! SWC (the standard neuroscience interchange format), plus the whole
//! circuit as a compact binary segment file.
//!
//! Run with: `cargo run --release --example mesh_export`
//! Files are written to the system temp directory.

use neurospatial::model::{mesh, swc};
use neurospatial::prelude::*;

fn main() -> std::io::Result<()> {
    let circuit =
        CircuitBuilder::new(3).neurons(3).morphology(MorphologyParams::cortical()).build();
    let out_dir = std::env::temp_dir().join("neurospatial_export");
    std::fs::create_dir_all(&out_dir)?;

    // --- One neuron as OBJ surface mesh ----------------------------------
    let morph = &circuit.morphologies()[0];
    let m = mesh::morphology_mesh(morph, 8);
    assert_eq!(m.open_edge_count(), 0, "exported meshes are watertight");
    let obj_path = out_dir.join("neuron0.obj");
    std::fs::write(&obj_path, m.to_obj())?;
    println!(
        "wrote {} ({} vertices, {} triangles, {:.0} µm² surface)",
        obj_path.display(),
        m.vertices.len(),
        m.triangles.len(),
        m.surface_area()
    );

    // --- The same neuron as SWC ------------------------------------------
    let swc_path = out_dir.join("neuron0.swc");
    std::fs::write(&swc_path, swc::to_swc(morph))?;
    let reparsed =
        swc::from_swc(&std::fs::read_to_string(&swc_path)?).expect("our own SWC must parse back");
    println!(
        "wrote {} ({} sections, {:.0} µm cable; reparse OK: {} sections)",
        swc_path.display(),
        morph.sections.len(),
        morph.total_length(),
        reparsed.sections.len()
    );

    // --- The full circuit as a binary segment file ------------------------
    let bin_path = out_dir.join("circuit.nspz");
    let bytes = neurospatial::model::encode_segments(circuit.segments());
    std::fs::write(&bin_path, &bytes)?;
    let back = neurospatial::model::decode_segments(&std::fs::read(&bin_path)?).expect("roundtrip");
    assert_eq!(back.len(), circuit.segments().len());
    println!(
        "wrote {} ({} segments, {} KiB); decoded back losslessly",
        bin_path.display(),
        back.len(),
        bytes.len() / 1024
    );

    // A downstream consumer can open a database straight from the file.
    let db = NeuroDb::builder().segments(back).build().expect("valid default config");
    let stats = db.region_stats(&Aabb::cube(circuit.segments()[0].geom.center(), 40.0));
    println!(
        "reloaded database: {} segments; sample region holds {} segments of {} neurons, {:.1} µm cable",
        db.len(),
        stats.count,
        stats.neuron_count,
        stats.total_cable_length
    );
    Ok(())
}
