//! Density scaling: the FLAT experiment of §2 of the paper.
//!
//! Increases the density of the model (more neurons in the same tissue
//! volume) and shows that the R-Tree's page accesses grow with density
//! while FLAT's stay proportional to the result size.
//!
//! Run with: `cargo run --release --example density_scaling`

use neurospatial::prelude::*;

fn main() {
    println!("range queries on circuits of growing density (fixed tissue volume)\n");
    println!(
        "{:>8} | {:>9} | {:>7} | {:>12} | {:>12} | {:>12} | {:>8}",
        "neurons", "segments", "result", "flat pages", "rtree nodes", "dyn-rtree", "reseeds"
    );

    let volume = Aabb::new(Vec3::ZERO, Vec3::splat(300.0));
    for neurons in [5u32, 10, 20, 40] {
        let circuit = CircuitBuilder::new(11)
            .neurons(neurons)
            .volume(volume)
            .morphology(MorphologyParams::small())
            .build();
        let segments = circuit.segments().to_vec();

        let flat = FlatIndex::build(segments.clone(), FlatBuildParams::default());
        let packed = RTree::bulk_load(segments.clone(), RTreeParams::default());
        let mut dynamic = RTree::new(RTreeParams::default());
        for s in &segments {
            dynamic.insert(*s);
        }

        // Average over a data-centred workload.
        let w = RangeQueryWorkload::generate(
            3,
            &circuit.bounds(),
            30,
            20.0,
            QueryPlacement::DataCentered,
            Some(&segments),
        );
        let (mut fp, mut rn, mut dn, mut res, mut rs) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for q in &w.queries {
            let (hits, fs) = flat.range_query(q);
            let (_, ps) = packed.range_query(q);
            let (_, ds) = dynamic.range_query(q);
            fp += fs.pages_read + fs.seed_nodes_read;
            rn += ps.nodes_visited();
            dn += ds.nodes_visited();
            res += hits.len() as u64;
            rs += fs.reseeds;
        }
        let n = w.queries.len() as u64;
        println!(
            "{:>8} | {:>9} | {:>7} | {:>12.1} | {:>12.1} | {:>12.1} | {:>8.2}",
            neurons,
            segments.len(),
            res / n,
            fp as f64 / n as f64,
            rn as f64 / n as f64,
            dn as f64 / n as f64,
            rs as f64 / n as f64,
        );
    }
    println!("\nFLAT page reads track the result size; R-Tree node accesses grow faster");
    println!("with density because MBR overlap forces wider traversals (§2 of the paper).");
}
