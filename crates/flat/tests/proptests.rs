//! Property tests: FLAT is an exact range-query index on arbitrary data —
//! including adversarially disconnected data — and always agrees with both
//! brute force and the R-Tree.

use neurospatial_flat::{FlatBuildParams, FlatIndex};
use neurospatial_geom::{Aabb, Vec3};
use neurospatial_rtree::{RTree, RTreeParams};
use proptest::prelude::*;

fn small_box() -> impl Strategy<Value = Aabb> {
    ((-80.0..80.0, -80.0..80.0, -80.0..80.0), 0.1..6.0f64)
        .prop_map(|((x, y, z), r)| Aabb::cube(Vec3::new(x, y, z), r))
}

/// Clustered boxes: several tight clusters with big gaps, the worst case
/// for crawl connectivity.
fn clustered_boxes() -> impl Strategy<Value = Vec<Aabb>> {
    prop::collection::vec(
        (
            (-3i32..3, -3i32..3, -3i32..3), // cluster cell
            prop::collection::vec((0.0..5.0f64, 0.0..5.0f64, 0.0..5.0f64), 1..60),
        ),
        1..6,
    )
    .prop_map(|clusters| {
        let mut out = Vec::new();
        for ((cx, cy, cz), pts) in clusters {
            let base = Vec3::new(cx as f64 * 200.0, cy as f64 * 200.0, cz as f64 * 200.0);
            for (x, y, z) in pts {
                out.push(Aabb::cube(base + Vec3::new(x, y, z), 0.5));
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flat_matches_brute_force(
        objs in prop::collection::vec(small_box(), 0..500),
        queries in prop::collection::vec(small_box(), 1..8),
        cap in 4usize..96,
    ) {
        let idx = FlatIndex::build(objs.clone(), FlatBuildParams::default().with_page_capacity(cap));
        for q in &queries {
            let (hits, stats) = idx.range_query(q);
            let want = objs.iter().filter(|o| o.intersects(q)).count();
            prop_assert_eq!(hits.len(), want, "query {}", q);
            prop_assert_eq!(stats.results as usize, want);
            // A page is read at most once.
            let mut order = stats.crawl_order.clone();
            order.sort_unstable();
            let n = order.len();
            order.dedup();
            prop_assert_eq!(order.len(), n);
        }
    }

    #[test]
    fn flat_exact_on_disconnected_clusters(
        objs in clustered_boxes(),
        q in (
            (-700.0..700.0f64, -700.0..700.0f64, -700.0..700.0f64),
            1.0..800.0f64,
        ).prop_map(|((x, y, z), r)| Aabb::cube(Vec3::new(x, y, z), r)),
    ) {
        let idx = FlatIndex::build(objs.clone(), FlatBuildParams::default().with_page_capacity(8));
        let (hits, _) = idx.range_query(&q);
        let want = objs.iter().filter(|o| o.intersects(&q)).count();
        prop_assert_eq!(hits.len(), want);
    }

    #[test]
    fn flat_and_rtree_agree(
        objs in prop::collection::vec(small_box(), 0..400),
        q in small_box(),
    ) {
        let idx = FlatIndex::build(objs.clone(), FlatBuildParams::default().with_page_capacity(16));
        let tree = RTree::bulk_load(objs, RTreeParams::with_max_entries(16));
        let (f, _) = idx.range_query(&q);
        let (r, _) = tree.range_query(&q);
        prop_assert_eq!(f.len(), r.len());
    }

    #[test]
    fn page_graph_links_have_geometric_support(
        objs in prop::collection::vec(small_box(), 2..300),
        eps in 0.0..10.0f64,
        cap in 4usize..32,
    ) {
        let idx = FlatIndex::build(
            objs,
            FlatBuildParams::default().with_page_capacity(cap).with_neighbor_epsilon(eps),
        );
        for u in 0..idx.page_count() as u32 {
            for &v in idx.neighbors_of(u) {
                prop_assert!(u != v);
                prop_assert!(idx.neighbors_of(v).contains(&u));
                prop_assert!(idx.page_mbr(u).inflate(eps).intersects(&idx.page_mbr(v)));
            }
        }
    }
}
