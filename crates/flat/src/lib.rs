//! # neurospatial-flat
//!
//! FLAT — the range-query execution strategy for dense spatial datasets
//! described in §2 of the demo paper (full algorithm in Tauheed et al.,
//! "Accelerating Range Queries for Brain Simulations", ICDE'12).
//!
//! ## How it works
//!
//! **Indexing phase.** Objects are sorted along the 3-D Hilbert curve and
//! packed into fixed-capacity *pages*. For every page FLAT records its
//! *neighborhood*: the pages whose (ε-inflated) MBR intersects its own.
//! A small STR-packed R-Tree is built over the page MBRs only — orders of
//! magnitude fewer entries than an object-level R-Tree.
//!
//! **Query phase.** A range query `q` is answered in two steps:
//!
//! 1. *Seed*: descend the page R-Tree to find **one** page intersecting
//!    `q` (cost ≈ tree height, independent of data density);
//! 2. *Crawl*: starting from the seed, breadth-first-visit neighborhood
//!    links, reading every reached page whose MBR intersects `q` and
//!    collecting its objects inside `q`. Neighbors outside `q` are not
//!    followed — the crawl cost depends only on the *result size*.
//!
//! Both steps are independent of how dense the dataset is, which is the
//! paper's headline property.
//!
//! ## Exactness
//!
//! The pages intersecting `q` are not guaranteed to form a connected
//! subgraph of the neighborhood graph (sparse datasets can leave gaps),
//! so after the crawl front empties the executor *re-seeds* on any
//! not-yet-visited page intersecting `q`. Re-seeding generalises the seed
//! step and makes FLAT exact on arbitrary data; on the dense datasets
//! FLAT targets it almost never triggers (the statistic is reported per
//! query as [`FlatQueryStats::reseeds`]).
//!
//! ```
//! use neurospatial_flat::{FlatBuildParams, FlatIndex};
//! use neurospatial_geom::{Aabb, Vec3};
//!
//! let objs: Vec<Aabb> = (0..5000)
//!     .map(|i| {
//!         let f = i as f64 * 0.1;
//!         Aabb::cube(Vec3::new(f.sin() * 40.0, f.cos() * 40.0, f * 0.2), 1.0)
//!     })
//!     .collect();
//! let index = FlatIndex::build(objs, FlatBuildParams::default());
//! let (hits, stats) = index.range_query(&Aabb::cube(Vec3::new(0.0, 40.0, 1.0), 5.0));
//! assert!(!hits.is_empty());
//! assert_eq!(stats.results as usize, hits.len());
//! ```

mod build;
pub mod query;
pub mod stats;

pub use build::{FlatBuildParams, PackingStrategy};
pub use query::FlatScratch;
pub use stats::{FlatBuildStats, FlatQueryStats, PageAccess};

use neurospatial_geom::Aabb;
use neurospatial_rtree::{RTree, RTreeObject};

/// Entry of the seed tree: one page's MBR.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PageEntry {
    pub mbr: Aabb,
    pub page: u32,
}

impl RTreeObject for PageEntry {
    fn aabb(&self) -> Aabb {
        self.mbr
    }
}

/// One FLAT data page: a contiguous run of objects in Hilbert order.
#[derive(Debug, Clone)]
pub(crate) struct FlatPage {
    pub mbr: Aabb,
    /// Index range into `FlatIndex::objects`.
    pub start: u32,
    pub end: u32,
}

/// The FLAT index over objects of type `T`.
#[derive(Debug)]
pub struct FlatIndex<T: RTreeObject> {
    pub(crate) objects: Vec<T>,
    pub(crate) pages: Vec<FlatPage>,
    /// Adjacency lists of the page neighborhood graph (CSR layout).
    pub(crate) neighbor_offsets: Vec<u32>,
    pub(crate) neighbor_ids: Vec<u32>,
    pub(crate) seed_tree: RTree<PageEntry>,
    pub(crate) params: FlatBuildParams,
    pub(crate) build_stats: FlatBuildStats,
}

impl<T: RTreeObject> FlatIndex<T> {
    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Number of data pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Bounding box of every indexed object (`Aabb::EMPTY` when empty).
    /// O(1): the seed tree's root MBR is exactly the union of all page
    /// MBRs.
    pub fn bounds(&self) -> Aabb {
        self.seed_tree.root_mbr()
    }

    /// Statistics recorded while building.
    pub fn build_stats(&self) -> &FlatBuildStats {
        &self.build_stats
    }

    /// Build parameters.
    pub fn params(&self) -> &FlatBuildParams {
        &self.params
    }

    /// Total number of directed neighborhood links.
    pub fn neighbor_count(&self) -> u64 {
        self.neighbor_ids.len() as u64
    }

    /// Mean neighborhood size (links per page).
    pub fn mean_neighbors(&self) -> f64 {
        if self.pages.is_empty() {
            return 0.0;
        }
        self.neighbor_ids.len() as f64 / self.pages.len() as f64
    }

    /// The neighborhood graph in its raw CSR form:
    /// `(offsets, ids)` with `neighbors_of(p) == ids[offsets[p]..offsets[p+1]]`.
    ///
    /// This is the serialization-friendly view — the out-of-core writer
    /// persists both arrays verbatim so the paged engine crawls exactly
    /// the same links.
    pub fn neighbor_csr(&self) -> (&[u32], &[u32]) {
        (&self.neighbor_offsets, &self.neighbor_ids)
    }

    /// Neighbor pages of `page`.
    pub fn neighbors_of(&self, page: u32) -> &[u32] {
        let a = self.neighbor_offsets[page as usize] as usize;
        let b = self.neighbor_offsets[page as usize + 1] as usize;
        &self.neighbor_ids[a..b]
    }

    /// MBR of a page.
    pub fn page_mbr(&self, page: u32) -> Aabb {
        self.pages[page as usize].mbr
    }

    /// Objects stored on a page.
    pub fn page_objects(&self, page: u32) -> &[T] {
        let p = &self.pages[page as usize];
        &self.objects[p.start as usize..p.end as usize]
    }

    /// Ids of all pages whose MBR intersects `q`, via the seed tree.
    ///
    /// This is metadata-only (no data-page access) — prefetchers use it to
    /// translate predicted regions into page ids.
    pub fn pages_intersecting(&self, q: &Aabb) -> Vec<u32> {
        let (entries, _) = self.seed_tree.range_query(q);
        entries.into_iter().map(|e| e.page).collect()
    }

    /// Rough memory footprint (bytes): objects + page table + adjacency +
    /// seed tree.
    pub fn memory_bytes(&self) -> usize {
        self.objects.capacity() * std::mem::size_of::<T>()
            + self.pages.capacity() * std::mem::size_of::<FlatPage>()
            + self.neighbor_ids.capacity() * 4
            + self.neighbor_offsets.capacity() * 4
            + self.seed_tree.memory_bytes()
    }

    /// The seed R-Tree height — the seed phase cost bound.
    pub fn seed_tree_height(&self) -> usize {
        self.seed_tree.height()
    }
}
