//! FLAT indexing phase: Hilbert packing + neighborhood computation.

use crate::stats::FlatBuildStats;
use crate::{FlatIndex, FlatPage, PageEntry};
use neurospatial_geom::{morton_encode3, Aabb, GridIndexer, HilbertSorter};
use neurospatial_rtree::{RTree, RTreeObject, RTreeParams};
use std::time::Instant;

/// How objects are linearised before being chunked into pages.
///
/// The ordering determines page MBR tightness (→ crawl size) and page-id
/// locality (→ how sequential the crawl's disk accesses are). The
/// experiment harness ablates all three (`experiments a1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackingStrategy {
    /// 3-D Hilbert curve order: best locality, the FLAT default.
    #[default]
    Hilbert,
    /// Morton (Z-order): cheaper to compute, worse locality at octant
    /// boundaries.
    Morton,
    /// Lexicographic (x, y, z) centre sort: the strawman — long thin
    /// pages with huge MBRs.
    CoordinateSort,
}

/// Parameters of the indexing phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatBuildParams {
    /// Objects per data page. The default matches an 8 KiB page of 64 B
    /// capsules.
    pub page_capacity: usize,
    /// Object linearisation used for page packing.
    pub packing: PackingStrategy,
    /// Neighborhood inflation ε: pages are linked when their MBRs,
    /// inflated by this distance, intersect. `0.0` links only pages whose
    /// MBRs touch; small positive values bridge hairline gaps between
    /// adjacent Hilbert runs and keep the crawl connected.
    pub neighbor_epsilon: f64,
    /// Hilbert curve resolution (bits per axis).
    pub hilbert_bits: u32,
    /// Fan-out of the seed R-Tree.
    pub seed_fanout: usize,
}

impl Default for FlatBuildParams {
    fn default() -> Self {
        FlatBuildParams {
            page_capacity: 128,
            packing: PackingStrategy::default(),
            neighbor_epsilon: 0.0,
            hilbert_bits: 16,
            seed_fanout: 64,
        }
    }
}

impl FlatBuildParams {
    pub fn with_page_capacity(mut self, c: usize) -> Self {
        assert!(c >= 1);
        self.page_capacity = c;
        self
    }

    pub fn with_neighbor_epsilon(mut self, e: f64) -> Self {
        assert!(e >= 0.0);
        self.neighbor_epsilon = e;
        self
    }

    pub fn with_packing(mut self, p: PackingStrategy) -> Self {
        self.packing = p;
        self
    }
}

impl<T: RTreeObject> FlatIndex<T> {
    /// Build the index. `O(n log n)` for the sort, `O(p · k)` for the
    /// neighborhood computation where `p` is the page count and `k` the
    /// mean number of grid candidates per page.
    pub fn build(mut objects: Vec<T>, params: FlatBuildParams) -> Self {
        let t0 = Instant::now();

        // --- 1. Linearise objects ----------------------------------------
        let bounds = objects.iter().fold(Aabb::EMPTY, |a, o| a.union(&o.aabb()));
        if !objects.is_empty() {
            match params.packing {
                PackingStrategy::Hilbert => {
                    let sorter = HilbertSorter::with_bits(bounds, params.hilbert_bits);
                    // Cache keys (sort_by_cached_key) — key computation dominates.
                    objects.sort_by_cached_key(|o| sorter.key(o.aabb().center()));
                }
                PackingStrategy::Morton => {
                    let e = bounds.extent();
                    let side = ((1u64 << params.hilbert_bits) - 1) as f64;
                    let scale = |v: f64, lo: f64, ext: f64| -> u32 {
                        if ext > 0.0 {
                            (((v - lo) / ext * side) as u64).min(side as u64) as u32
                        } else {
                            0
                        }
                    };
                    objects.sort_by_cached_key(|o| {
                        let c = o.aabb().center();
                        morton_encode3(
                            scale(c.x, bounds.lo.x, e.x),
                            scale(c.y, bounds.lo.y, e.y),
                            scale(c.z, bounds.lo.z, e.z),
                        )
                    });
                }
                PackingStrategy::CoordinateSort => {
                    objects.sort_by(|a, b| {
                        let (ca, cb) = (a.aabb().center(), b.aabb().center());
                        ca.x.partial_cmp(&cb.x)
                            .expect("finite")
                            .then(ca.y.partial_cmp(&cb.y).expect("finite"))
                            .then(ca.z.partial_cmp(&cb.z).expect("finite"))
                    });
                }
            }
        }
        let sort_ms = t0.elapsed().as_secs_f64() * 1e3;

        // --- 2. Pack pages ----------------------------------------------
        let t1 = Instant::now();
        let mut pages = Vec::with_capacity(objects.len().div_ceil(params.page_capacity.max(1)));
        let mut start = 0usize;
        while start < objects.len() {
            let end = (start + params.page_capacity).min(objects.len());
            let mbr = objects[start..end].iter().fold(Aabb::EMPTY, |a, o| a.union(&o.aabb()));
            pages.push(FlatPage { mbr, start: start as u32, end: end as u32 });
            start = end;
        }
        let pack_ms = t1.elapsed().as_secs_f64() * 1e3;

        // --- 3. Neighborhood graph --------------------------------------
        let t2 = Instant::now();
        let (neighbor_offsets, neighbor_ids) =
            build_neighborhoods(&pages, bounds, params.neighbor_epsilon);
        let neighbor_ms = t2.elapsed().as_secs_f64() * 1e3;

        // --- 4. Seed tree over page MBRs ---------------------------------
        let t3 = Instant::now();
        let entries: Vec<PageEntry> = pages
            .iter()
            .enumerate()
            .map(|(i, p)| PageEntry { mbr: p.mbr, page: i as u32 })
            .collect();
        let mut seed_tree =
            RTree::bulk_load(entries, RTreeParams::with_max_entries(params.seed_fanout));
        // The seed tree answers every query's seed descent and re-seed
        // check, including the scratch paths: freeze its SoA lanes.
        seed_tree.freeze();
        let seed_ms = t3.elapsed().as_secs_f64() * 1e3;

        let build_stats = FlatBuildStats {
            sort_ms,
            pack_ms,
            neighbor_ms,
            seed_tree_ms: seed_ms,
            total_ms: t0.elapsed().as_secs_f64() * 1e3,
            pages: pages.len() as u64,
            neighbor_links: neighbor_ids.len() as u64,
        };

        FlatIndex { objects, pages, neighbor_offsets, neighbor_ids, seed_tree, params, build_stats }
    }
}

/// Compute the page neighborhood graph in CSR form: page `u` links to `v`
/// iff `u != v` and `inflate(mbr(u), ε)` intersects `mbr(v)`. Symmetric by
/// construction.
///
/// A uniform grid over the page centres prunes the candidate pairs; cell
/// size tracks the mean page extent so each page tests O(1) cells.
fn build_neighborhoods(pages: &[FlatPage], bounds: Aabb, epsilon: f64) -> (Vec<u32>, Vec<u32>) {
    let p = pages.len();
    if p == 0 {
        return (vec![0], Vec::new());
    }
    if p == 1 {
        return (vec![0, 0], Vec::new());
    }

    // Grid resolution: aim for ~1 page per cell, capped to keep memory
    // bounded on degenerate inputs.
    let cells_per_axis = ((p as f64).cbrt().ceil() as usize).clamp(1, 256);
    let grid = GridIndexer::new(bounds, [cells_per_axis; 3]);

    // Grid buckets in flat CSR form (two counting passes) instead of a
    // `Vec<Vec<u32>>` — one allocation for all cells rather than one per
    // occupied cell, and membership runs are contiguous in memory.
    let mut cell_offsets = vec![0u32; grid.len() + 1];
    for page in pages {
        grid.for_each_cell_in(&page.mbr, |c| cell_offsets[c + 1] += 1);
    }
    for c in 0..grid.len() {
        cell_offsets[c + 1] += cell_offsets[c];
    }
    let mut cell_ids = vec![0u32; cell_offsets[grid.len()] as usize];
    let mut cursor = cell_offsets.clone();
    for (i, page) in pages.iter().enumerate() {
        grid.for_each_cell_in(&page.mbr, |c| {
            cell_ids[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        });
    }

    // Discover undirected edges with one candidate buffer hoisted out of
    // the per-page loop. Candidates are sorted + deduped, and each pair
    // is tested once (at the lower id), so no duplicate edges arise.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut cand: Vec<u32> = Vec::new();
    for (i, page) in pages.iter().enumerate() {
        let probe = page.mbr.inflate(epsilon);
        cand.clear();
        grid.for_each_cell_in(&probe, |c| {
            cand.extend_from_slice(
                &cell_ids[cell_offsets[c] as usize..cell_offsets[c + 1] as usize],
            )
        });
        cand.sort_unstable();
        cand.dedup();
        for &j in &cand {
            if j as usize > i && probe.intersects(&pages[j as usize].mbr) {
                edges.push((i as u32, j));
                edges.push((j, i as u32));
            }
        }
    }

    // Counting-sort the edges by source page into the adjacency CSR. The
    // discovery order above pushes each source's targets in ascending
    // order (targets below `s` arrive during their own — earlier —
    // iterations, targets above during `s`'s), and the counting sort is
    // stable, so every adjacency run comes out sorted without per-list
    // sorting.
    let mut offsets = vec![0u32; p + 1];
    for &(s, _) in &edges {
        offsets[s as usize + 1] += 1;
    }
    for s in 0..p {
        offsets[s + 1] += offsets[s];
    }
    let mut ids = vec![0u32; edges.len()];
    let mut cursor = offsets.clone();
    for &(s, t) in &edges {
        ids[cursor[s as usize] as usize] = t;
        cursor[s as usize] += 1;
    }
    (offsets, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::Vec3;

    fn line_boxes(n: usize) -> Vec<Aabb> {
        // Touching unit boxes along a line: every page overlaps its
        // predecessor/successor page at the shared face.
        (0..n)
            .map(|i| Aabb::new(Vec3::new(i as f64, 0.0, 0.0), Vec3::new(i as f64 + 1.0, 1.0, 1.0)))
            .collect()
    }

    #[test]
    fn build_empty_and_single() {
        let idx: FlatIndex<Aabb> = FlatIndex::build(vec![], FlatBuildParams::default());
        assert!(idx.is_empty());
        assert_eq!(idx.page_count(), 0);
        assert_eq!(idx.mean_neighbors(), 0.0);

        let one = FlatIndex::build(vec![Aabb::cube(Vec3::ZERO, 1.0)], FlatBuildParams::default());
        assert_eq!(one.len(), 1);
        assert_eq!(one.page_count(), 1);
        assert!(one.neighbors_of(0).is_empty());
    }

    #[test]
    fn pages_partition_objects() {
        let idx =
            FlatIndex::build(line_boxes(1000), FlatBuildParams::default().with_page_capacity(64));
        assert_eq!(idx.page_count(), 1000usize.div_ceil(64));
        let mut covered = 0usize;
        for p in 0..idx.page_count() as u32 {
            let objs = idx.page_objects(p);
            assert!(!objs.is_empty());
            assert!(objs.len() <= 64);
            // Page MBR covers its objects.
            for o in objs {
                assert!(idx.page_mbr(p).contains(&o.aabb()));
            }
            covered += objs.len();
        }
        assert_eq!(covered, 1000);
    }

    #[test]
    fn neighborhood_is_symmetric_and_irreflexive() {
        let idx =
            FlatIndex::build(line_boxes(2000), FlatBuildParams::default().with_page_capacity(32));
        for u in 0..idx.page_count() as u32 {
            for &v in idx.neighbors_of(u) {
                assert_ne!(u, v, "self-loop at page {u}");
                assert!(idx.neighbors_of(v).contains(&u), "asymmetric link {u} -> {v}");
                assert!(
                    idx.page_mbr(u)
                        .inflate(idx.params().neighbor_epsilon)
                        .intersects(&idx.page_mbr(v)),
                    "link {u} -> {v} without MBR contact"
                );
            }
        }
    }

    #[test]
    fn touching_data_yields_connected_page_graph() {
        // Touching boxes tile space without gaps, so every page MBR
        // touches some other page and the whole neighborhood graph must be
        // a single connected component — the property that lets the crawl
        // reach the entire result without re-seeding.
        let idx =
            FlatIndex::build(line_boxes(320), FlatBuildParams::default().with_page_capacity(32));
        let p = idx.page_count();
        assert!(p > 1);
        let mut seen = vec![false; p];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 0;
        while let Some(u) = stack.pop() {
            count += 1;
            for &v in idx.neighbors_of(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        assert_eq!(count, p, "page graph disconnected: reached {count} of {p}");
    }

    #[test]
    fn epsilon_bridges_gaps() {
        // Two separated clusters: unlinked at ε = 0, linked at ε ≥ gap.
        let mut objs = Vec::new();
        for i in 0..64 {
            objs.push(Aabb::cube(Vec3::new(i as f64 * 0.1, 0.0, 0.0), 0.1));
        }
        for i in 0..64 {
            objs.push(Aabb::cube(Vec3::new(100.0 + i as f64 * 0.1, 0.0, 0.0), 0.1));
        }
        let tight =
            FlatIndex::build(objs.clone(), FlatBuildParams::default().with_page_capacity(64));
        assert_eq!(tight.page_count(), 2);
        assert!(tight.neighbors_of(0).is_empty());

        let bridged = FlatIndex::build(
            objs,
            FlatBuildParams::default().with_page_capacity(64).with_neighbor_epsilon(95.0),
        );
        assert_eq!(bridged.neighbors_of(0), &[1]);
        assert_eq!(bridged.neighbors_of(1), &[0]);
    }

    #[test]
    fn build_stats_populated() {
        let idx =
            FlatIndex::build(line_boxes(500), FlatBuildParams::default().with_page_capacity(32));
        let s = idx.build_stats();
        assert_eq!(s.pages, idx.page_count() as u64);
        assert_eq!(s.neighbor_links, idx.neighbor_count());
        assert!(s.total_ms >= 0.0);
    }

    #[test]
    fn all_packings_index_exactly() {
        let objs = line_boxes(500);
        let q = Aabb::new(Vec3::new(100.0, -1.0, -1.0), Vec3::new(250.0, 2.0, 2.0));
        let want = objs.iter().filter(|o| o.intersects(&q)).count();
        for packing in
            [PackingStrategy::Hilbert, PackingStrategy::Morton, PackingStrategy::CoordinateSort]
        {
            let idx = FlatIndex::build(
                objs.clone(),
                FlatBuildParams::default().with_page_capacity(32).with_packing(packing),
            );
            assert_eq!(idx.len(), 500, "{packing:?}");
            let (hits, _) = idx.range_query(&q);
            assert_eq!(hits.len(), want, "{packing:?}");
        }
    }

    #[test]
    fn hilbert_packing_has_more_compact_pages_than_coordinate_sort() {
        // A 3-D cloud: x-sorted pages become thin elongated slabs;
        // Hilbert runs stay near-cubical. Compactness is measured as
        // total page *surface area* — the quantity that drives how many
        // neighbors each page has and hence the crawl fan-out.
        let objs: Vec<Aabb> = (0..4096)
            .map(|i| {
                let x = (i % 16) as f64;
                let y = ((i / 16) % 16) as f64;
                let z = (i / 256) as f64;
                Aabb::cube(Vec3::new(x, y, z), 0.4)
            })
            .collect();
        let build = |packing| {
            FlatIndex::build(
                objs.clone(),
                FlatBuildParams::default().with_page_capacity(64).with_packing(packing),
            )
        };
        let area = |idx: &FlatIndex<Aabb>| {
            (0..idx.page_count() as u32).map(|p| idx.page_mbr(p).surface_area()).sum::<f64>()
        };
        let h = build(PackingStrategy::Hilbert);
        let c = build(PackingStrategy::CoordinateSort);
        assert!(
            area(&h) < area(&c),
            "hilbert total page surface {} should beat coordinate sort {}",
            area(&h),
            area(&c)
        );
        // Fewer neighbors per page too — the crawl examines fewer links.
        assert!(h.mean_neighbors() <= c.mean_neighbors());
    }

    #[test]
    fn memory_accounting_positive() {
        let idx = FlatIndex::build(line_boxes(500), FlatBuildParams::default());
        assert!(idx.memory_bytes() > 500 * std::mem::size_of::<Aabb>());
        assert!(idx.seed_tree_height() >= 1);
    }
}
