//! FLAT query phase: seed, then crawl the neighborhood graph.

use crate::stats::{FlatQueryStats, PageAccess};
use crate::FlatIndex;
use neurospatial_geom::{Aabb, Flow};
use neurospatial_rtree::{EpochMarks, RTreeObject, TraversalScratch};
use std::collections::VecDeque;

/// Reusable per-query state for FLAT's seed-and-crawl executor: the
/// crawl front, the epoch-stamped visited-page marks (O(1) to reset
/// between queries), and a seed-tree traversal scratch. One per thread,
/// reused across a whole batch — steady-state queries allocate nothing.
#[derive(Debug, Default)]
pub struct FlatScratch {
    /// BFS crawl front.
    pub(crate) queue: VecDeque<u32>,
    /// Visited-page marks (shared epoch-stamping helper from the rtree
    /// crate, so the subtle wrap-around reset lives in one place).
    pub(crate) visited: EpochMarks,
    /// Scratch for the seed tree's descent and re-seed queries.
    pub(crate) seed: TraversalScratch,
}

impl FlatScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a query over `pages` pages: clear the crawl front and reset
    /// the visited marks.
    fn begin(&mut self, pages: usize) {
        self.visited.begin(pages);
        self.queue.clear();
    }
}

impl<T: RTreeObject> FlatIndex<T> {
    /// All objects whose AABB intersects `q`.
    pub fn range_query(&self, q: &Aabb) -> (Vec<&T>, FlatQueryStats) {
        self.range_query_with(q, |_| {})
    }

    /// Range query with a page-access hook (for simulated I/O charging).
    ///
    /// The hook fires once per seed-tree node and once per data page read.
    pub fn range_query_with<F: FnMut(PageAccess)>(
        &self,
        q: &Aabb,
        on_access: F,
    ) -> (Vec<&T>, FlatQueryStats) {
        let mut out = Vec::new();
        let stats = self.range_query_sink(q, on_access, |o| out.push(o));
        (out, stats)
    }

    /// Range query delivering matches straight into `sink` — the
    /// zero-intermediate form the facade's `SpatialIndex` impl uses to
    /// collect owned copies in a single pass.
    pub fn range_query_sink<'a, F: FnMut(PageAccess), S: FnMut(&'a T)>(
        &'a self,
        q: &Aabb,
        mut on_access: F,
        mut sink: S,
    ) -> FlatQueryStats {
        let mut stats = FlatQueryStats::default();
        if self.pages.is_empty() {
            return stats;
        }

        let mut visited = vec![false; self.pages.len()];
        let mut queue: VecDeque<u32> = VecDeque::new();

        // --- Seed ---------------------------------------------------------
        let (seed, seed_stats) = self.seed_tree.first_hit_with(q, |node, level| {
            on_access(PageAccess::SeedNode(node, level));
        });
        stats.seed_nodes_read += seed_stats.nodes_visited();
        let Some(first) = seed else {
            // No page MBR intersects q: empty result, proven by the seed
            // descent alone.
            return stats;
        };
        visited[first.page as usize] = true;
        queue.push_back(first.page);

        // --- Crawl (with exactness-preserving re-seeding) ------------------
        loop {
            while let Some(page) = queue.pop_front() {
                stats.pages_read += 1;
                stats.crawl_order.push(page);
                on_access(PageAccess::Data(page));

                for o in self.page_objects(page) {
                    stats.objects_tested += 1;
                    if o.aabb().intersects(q) {
                        stats.results += 1;
                        sink(o);
                    }
                }
                for &n in self.neighbors_of(page) {
                    if visited[n as usize] {
                        continue;
                    }
                    if self.pages[n as usize].mbr.intersects(q) {
                        visited[n as usize] = true;
                        queue.push_back(n);
                    } else {
                        stats.links_rejected += 1;
                    }
                }
            }

            // Crawl front empty: check for unreached pages intersecting q.
            // This is the exactness fallback — rare on dense data.
            let mut reseeded = false;
            let (candidates, reseed_stats) = self.seed_tree.range_query_with(q, |node, level| {
                on_access(PageAccess::SeedNode(node, level));
            });
            stats.seed_nodes_read += reseed_stats.nodes_visited();
            for entry in candidates {
                if !visited[entry.page as usize] {
                    visited[entry.page as usize] = true;
                    queue.push_back(entry.page);
                    reseeded = true;
                }
            }
            if reseeded {
                stats.reseeds += 1;
            } else {
                break;
            }
        }

        stats
    }

    /// Allocation-free seed-and-crawl: the crawl front, visited marks and
    /// seed-tree traversal state all live in `scratch`, reused across
    /// queries. `on_page` fires once per data page read (the hook the
    /// session simulator charges I/O through); seed-tree node accesses
    /// are *counted* (`seed_nodes_read`) but not hooked, and
    /// `crawl_order` is left empty — use
    /// [`range_query_sink`](Self::range_query_sink) for the fully
    /// instrumented path. Everything else (visit order, page reads,
    /// objects tested, emission order, re-seeds) is identical.
    pub fn range_query_scratch<'a, F: FnMut(u32), S: FnMut(&'a T)>(
        &'a self,
        q: &Aabb,
        scratch: &mut FlatScratch,
        on_page: F,
        mut sink: S,
    ) -> FlatQueryStats {
        self.range_query_stream(q, scratch, on_page, |o| {
            sink(o);
            Flow::Emit
        })
    }

    /// Flow-controlled streaming seed-and-crawl — the traversal behind
    /// [`range_query_scratch`](Self::range_query_scratch), with the sink
    /// deciding per match whether it counts ([`Flow::Emit`]), is filtered
    /// out ([`Flow::Skip`]) or ends the crawl right here ([`Flow::Last`] —
    /// the early exit a pushed-down limit compiles to). With an
    /// always-`Emit` sink the page visits, object tests, results,
    /// emission order and re-seeds are exactly those of
    /// [`range_query`](Self::range_query).
    pub fn range_query_stream<'a, F: FnMut(u32), S: FnMut(&'a T) -> Flow>(
        &'a self,
        q: &Aabb,
        scratch: &mut FlatScratch,
        mut on_page: F,
        mut sink: S,
    ) -> FlatQueryStats {
        let mut stats = FlatQueryStats::default();
        if self.pages.is_empty() {
            return stats;
        }
        scratch.begin(self.pages.len());
        let FlatScratch { queue, visited, seed, .. } = scratch;

        // --- Seed ---------------------------------------------------------
        let (seed_hit, seed_counters) = self.seed_tree.first_hit_scratch(q, seed);
        stats.seed_nodes_read += seed_counters.nodes_visited;
        let Some(first) = seed_hit else {
            return stats;
        };
        visited.mark(first.page as usize);
        queue.push_back(first.page);

        // --- Crawl (with exactness-preserving re-seeding) ------------------
        loop {
            while let Some(page) = queue.pop_front() {
                stats.pages_read += 1;
                on_page(page);

                for o in self.page_objects(page) {
                    stats.objects_tested += 1;
                    if o.aabb().intersects(q) {
                        match sink(o) {
                            Flow::Emit => stats.results += 1,
                            Flow::Skip => {}
                            Flow::Last => {
                                stats.results += 1;
                                return stats;
                            }
                        }
                    }
                }
                for &n in self.neighbors_of(page) {
                    if visited.is_marked(n as usize) {
                        continue;
                    }
                    if self.pages[n as usize].mbr.intersects(q) {
                        visited.mark(n as usize);
                        queue.push_back(n);
                    } else {
                        stats.links_rejected += 1;
                    }
                }
            }

            let mut reseeded = false;
            let reseed_counters = self.seed_tree.range_query_scratch(q, seed, |entry| {
                if visited.mark(entry.page as usize) {
                    queue.push_back(entry.page);
                    reseeded = true;
                }
            });
            stats.seed_nodes_read += reseed_counters.nodes_visited;
            if reseeded {
                stats.reseeds += 1;
            } else {
                break;
            }
        }

        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatBuildParams;
    use neurospatial_geom::Vec3;

    fn dense_cloud(n: usize) -> Vec<Aabb> {
        // Overlapping boxes filling a cube: a dense dataset with a
        // connected page graph.
        (0..n)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = ((i / 20) % 20) as f64;
                let z = (i / 400) as f64;
                Aabb::cube(Vec3::new(x, y, z), 0.8)
            })
            .collect()
    }

    fn brute(objs: &[Aabb], q: &Aabb) -> usize {
        objs.iter().filter(|o| o.intersects(q)).count()
    }

    #[test]
    fn exact_on_dense_data() {
        let objs = dense_cloud(4000);
        let idx = FlatIndex::build(objs.clone(), FlatBuildParams::default().with_page_capacity(64));
        for q in [
            Aabb::cube(Vec3::new(10.0, 10.0, 5.0), 3.0),
            Aabb::cube(Vec3::new(0.0, 0.0, 0.0), 1.0),
            Aabb::cube(Vec3::new(19.0, 19.0, 9.0), 2.5),
            Aabb::new(Vec3::splat(-50.0), Vec3::splat(50.0)),
        ] {
            let (hits, stats) = idx.range_query(&q);
            assert_eq!(hits.len(), brute(&objs, &q), "query {q}");
            assert_eq!(stats.results as usize, hits.len());
            assert_eq!(stats.crawl_order.len() as u64, stats.pages_read);
        }
    }

    #[test]
    fn empty_query_proven_by_seed_alone() {
        let objs = dense_cloud(2000);
        let idx = FlatIndex::build(objs, FlatBuildParams::default());
        let q = Aabb::cube(Vec3::new(500.0, 0.0, 0.0), 2.0);
        let (hits, stats) = idx.range_query(&q);
        assert!(hits.is_empty());
        assert_eq!(stats.pages_read, 0);
        // The root-MBR check proves emptiness without reading any node.
        assert_eq!(stats.seed_nodes_read, 0);
        assert_eq!(stats.reseeds, 0);
    }

    #[test]
    fn reseeding_keeps_disconnected_data_exact() {
        // Two clusters far apart: a query spanning both forces a re-seed
        // because no neighborhood links cross the gap at ε = 0.
        // Cluster sizes are exact multiples of the page capacity so no
        // page straddles the gap (a straddling page would bridge the two
        // components through its oversized MBR).
        let mut objs = Vec::new();
        for i in 0..512 {
            objs.push(Aabb::cube(Vec3::new((i % 10) as f64, ((i / 10) % 10) as f64, 0.0), 0.6));
        }
        for i in 0..512 {
            objs.push(Aabb::cube(
                Vec3::new(1000.0 + (i % 10) as f64, ((i / 10) % 10) as f64, 0.0),
                0.6,
            ));
        }
        let idx = FlatIndex::build(objs.clone(), FlatBuildParams::default().with_page_capacity(32));
        let q = Aabb::new(Vec3::new(-5.0, -5.0, -5.0), Vec3::new(1015.0, 15.0, 5.0));
        let (hits, stats) = idx.range_query(&q);
        assert_eq!(hits.len(), 1024);
        assert!(stats.reseeds >= 1, "gap must trigger a re-seed");
    }

    #[test]
    fn crawl_reads_each_page_at_most_once() {
        let objs = dense_cloud(3000);
        let idx = FlatIndex::build(objs, FlatBuildParams::default().with_page_capacity(32));
        let q = Aabb::cube(Vec3::new(10.0, 10.0, 3.0), 6.0);
        let (_, stats) = idx.range_query(&q);
        let mut order = stats.crawl_order.clone();
        order.sort_unstable();
        let before = order.len();
        order.dedup();
        assert_eq!(order.len(), before, "a page was read twice");
    }

    #[test]
    fn crawl_order_is_contiguous_bfs() {
        // Every page after the first must neighbor *some* earlier page in
        // the crawl (unless a re-seed started a new component).
        let objs = dense_cloud(4000);
        let idx = FlatIndex::build(objs, FlatBuildParams::default().with_page_capacity(64));
        let q = Aabb::cube(Vec3::new(8.0, 8.0, 4.0), 5.0);
        let (_, stats) = idx.range_query(&q);
        assert_eq!(stats.reseeds, 0, "dense data should crawl in one component");
        let order = &stats.crawl_order;
        for (i, &p) in order.iter().enumerate().skip(1) {
            let linked = order[..i].iter().any(|&earlier| idx.neighbors_of(earlier).contains(&p));
            assert!(linked, "page {p} (position {i}) reached without a link");
        }
    }

    #[test]
    fn visitor_sees_all_accesses() {
        let objs = dense_cloud(2000);
        let idx = FlatIndex::build(objs, FlatBuildParams::default());
        let q = Aabb::cube(Vec3::new(10.0, 10.0, 2.0), 4.0);
        let mut data = 0u64;
        let mut seed = 0u64;
        let (_, stats) = idx.range_query_with(&q, |a| match a {
            PageAccess::Data(_) => data += 1,
            PageAccess::SeedNode(..) => seed += 1,
        });
        assert_eq!(data, stats.pages_read);
        assert_eq!(seed, stats.seed_nodes_read);
    }

    #[test]
    fn scratch_queries_match_allocating_queries() {
        let objs = dense_cloud(4000);
        let idx = FlatIndex::build(objs, FlatBuildParams::default().with_page_capacity(64));
        let mut scratch = FlatScratch::default();
        // Reuse one scratch across repeated passes: the epoch-stamped
        // visited marks must stay exact on every query.
        for pass in 0..3 {
            for q in [
                Aabb::cube(Vec3::new(10.0, 10.0, 5.0), 3.0),
                Aabb::new(Vec3::splat(-50.0), Vec3::splat(50.0)),
                Aabb::cube(Vec3::new(500.0, 0.0, 0.0), 2.0), // empty
            ] {
                let (want, stats) = idx.range_query(&q);
                let mut got: Vec<&Aabb> = Vec::new();
                let mut pages = Vec::new();
                let c =
                    idx.range_query_scratch(&q, &mut scratch, |p| pages.push(p), |o| got.push(o));
                assert_eq!(got.len(), want.len(), "pass={pass} at {q}");
                assert!(got.iter().zip(&want).all(|(a, b)| std::ptr::eq(*a, *b)), "order");
                assert_eq!(pages, stats.crawl_order, "page visit order");
                assert_eq!(c.pages_read, stats.pages_read, "pass={pass} at {q}");
                assert_eq!(c.seed_nodes_read, stats.seed_nodes_read);
                assert_eq!(c.objects_tested, stats.objects_tested);
                assert_eq!(c.results, stats.results);
                assert_eq!(c.links_rejected, stats.links_rejected);
                assert_eq!(c.reseeds, stats.reseeds);
                assert!(c.crawl_order.is_empty(), "scratch path skips crawl recording");
            }
        }
    }

    #[test]
    fn scratch_reseeding_still_exact_on_disconnected_data() {
        let mut objs = Vec::new();
        for i in 0..512 {
            objs.push(Aabb::cube(Vec3::new((i % 10) as f64, ((i / 10) % 10) as f64, 0.0), 0.6));
        }
        for i in 0..512 {
            objs.push(Aabb::cube(
                Vec3::new(1000.0 + (i % 10) as f64, ((i / 10) % 10) as f64, 0.0),
                0.6,
            ));
        }
        let idx = FlatIndex::build(objs, FlatBuildParams::default().with_page_capacity(32));
        let q = Aabb::new(Vec3::new(-5.0, -5.0, -5.0), Vec3::new(1015.0, 15.0, 5.0));
        let mut scratch = FlatScratch::default();
        let mut hits = 0usize;
        let c = idx.range_query_scratch(&q, &mut scratch, |_| {}, |_| hits += 1);
        assert_eq!(hits, 1024);
        assert!(c.reseeds >= 1, "gap must trigger a re-seed on the scratch path too");
    }

    #[test]
    fn query_on_empty_index() {
        let idx: FlatIndex<Aabb> = FlatIndex::build(vec![], FlatBuildParams::default());
        let (hits, stats) = idx.range_query(&Aabb::cube(Vec3::ZERO, 1.0));
        assert!(hits.is_empty());
        assert_eq!(stats, FlatQueryStats::default());
    }
}
