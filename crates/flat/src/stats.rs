//! FLAT statistics — the quantities shown live in the demo's Figure 3
//! (pages retrieved, time) and Figure 4 (crawl order).

/// Indexing-phase statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlatBuildStats {
    pub sort_ms: f64,
    pub pack_ms: f64,
    pub neighbor_ms: f64,
    pub seed_tree_ms: f64,
    pub total_ms: f64,
    pub pages: u64,
    /// Total directed neighborhood links (2× the undirected edge count).
    pub neighbor_links: u64,
}

/// What kind of simulated page a query touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageAccess {
    /// A data page, by page number.
    Data(u32),
    /// A node of the seed R-Tree: (node id, level).
    SeedNode(usize, usize),
}

/// Per-query execution statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatQueryStats {
    /// Seed-tree nodes visited across the initial seed and any re-seeds.
    pub seed_nodes_read: u64,
    /// Data pages read (each page at most once per query).
    pub pages_read: u64,
    /// Objects compared against the query box.
    pub objects_tested: u64,
    /// Objects returned.
    pub results: u64,
    /// Times the crawl front emptied and the executor had to re-seed
    /// (0 on well-connected dense data).
    pub reseeds: u64,
    /// Pages the crawl *examined* via links but skipped because their MBR
    /// missed the query (the crawl's only overhead).
    pub links_rejected: u64,
    /// Data pages in visit order — the demo's Figure 4 crawl animation.
    pub crawl_order: Vec<u32>,
}

impl FlatQueryStats {
    /// Total simulated page reads (seed + data).
    pub fn total_reads(&self) -> u64 {
        self.seed_nodes_read + self.pages_read
    }

    /// Selectivity of the object tests: results / tested.
    pub fn test_precision(&self) -> f64 {
        if self.objects_tested == 0 {
            0.0
        } else {
            self.results as f64 / self.objects_tested as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_precision() {
        let s = FlatQueryStats {
            seed_nodes_read: 3,
            pages_read: 7,
            objects_tested: 100,
            results: 25,
            ..Default::default()
        };
        assert_eq!(s.total_reads(), 10);
        assert!((s.test_precision() - 0.25).abs() < 1e-12);
        assert_eq!(FlatQueryStats::default().test_precision(), 0.0);
    }
}
