//! Property tests: all join algorithms compute the same relation, on
//! boxes and on capsule segments, for arbitrary ε.

use neurospatial_geom::{Aabb, Segment, Vec3};
use neurospatial_touch::{
    ClassicTouchJoin, JoinObject, NestedLoopJoin, PbsmJoin, PlaneSweepJoin, S3Join, SpatialJoin,
    TouchJoin,
};
use proptest::prelude::*;

fn boxes(n: usize) -> impl Strategy<Value = Vec<Aabb>> {
    prop::collection::vec(
        ((-30.0..30.0, -30.0..30.0, -30.0..30.0), 0.1..5.0f64)
            .prop_map(|((x, y, z), r)| Aabb::cube(Vec3::new(x, y, z), r)),
        0..n,
    )
}

fn segments(n: usize) -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(
        ((-30.0..30.0, -30.0..30.0, -30.0..30.0), (-8.0..8.0, -8.0..8.0, -8.0..8.0), 0.05..1.5f64)
            .prop_map(|((x, y, z), (dx, dy, dz), r)| {
                let p0 = Vec3::new(x, y, z);
                Segment::new(p0, p0 + Vec3::new(dx, dy, dz), r)
            }),
        0..n,
    )
}

fn check_all_agree<T: JoinObject>(a: &[T], b: &[T], eps: f64) -> Result<(), TestCaseError> {
    let reference = NestedLoopJoin.join(a, b, eps);
    prop_assert!(reference.is_duplicate_free());
    let want = reference.sorted_pairs();
    for (name, got) in [
        ("touch", TouchJoin::default().join(a, b, eps)),
        ("touch-par", TouchJoin::parallel(3).join(a, b, eps)),
        ("touch-sweep", TouchJoin::default().with_sweep_min(2).join(a, b, eps)),
        ("touch-classic", ClassicTouchJoin::default().join(a, b, eps)),
        ("sweep", PlaneSweepJoin.join(a, b, eps)),
        ("pbsm", PbsmJoin { objects_per_cell: 8, max_cells_per_axis: 24 }.join(a, b, eps)),
        ("s3", S3Join { fanout: 5 }.join(a, b, eps)),
    ] {
        prop_assert!(got.is_duplicate_free(), "{name} produced duplicates");
        prop_assert_eq!(got.sorted_pairs(), want.clone(), "{} disagrees", name);
        prop_assert_eq!(got.stats.results as usize, want.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn joins_agree_on_boxes(a in boxes(80), b in boxes(80), eps in 0.0..6.0f64) {
        check_all_agree(&a, &b, eps)?;
    }

    #[test]
    fn joins_agree_on_capsules(a in segments(60), b in segments(60), eps in 0.0..4.0f64) {
        check_all_agree(&a, &b, eps)?;
    }

    #[test]
    fn join_pairs_satisfy_the_predicate(a in segments(60), b in segments(60), eps in 0.0..4.0f64) {
        let r = TouchJoin::default().join(&a, &b, eps);
        // Soundness: every reported pair is within eps.
        for &(i, j) in &r.pairs {
            prop_assert!(a[i as usize].refine(&b[j as usize], eps));
        }
        // Completeness spot-check (first 500 pairs of the cross product).
        let mut checked = 0;
        'outer: for (i, x) in a.iter().enumerate() {
            for (j, y) in b.iter().enumerate() {
                if x.refine(y, eps) {
                    prop_assert!(
                        r.pairs.contains(&(i as u32, j as u32)),
                        "missing pair ({i}, {j})"
                    );
                }
                checked += 1;
                if checked > 500 {
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn join_is_symmetric_in_result_count(a in boxes(50), b in boxes(50), eps in 0.0..4.0f64) {
        // |A ⋈ B| == |B ⋈ A| (pairs transpose).
        let ab = TouchJoin::default().join(&a, &b, eps);
        let ba = TouchJoin::default().join(&b, &a, eps);
        prop_assert_eq!(ab.pairs.len(), ba.pairs.len());
        let mut transposed: Vec<(u32, u32)> = ba.pairs.iter().map(|&(i, j)| (j, i)).collect();
        transposed.sort_unstable();
        prop_assert_eq!(ab.sorted_pairs(), transposed);
    }

    #[test]
    fn epsilon_monotonicity(a in segments(40), b in segments(40), e1 in 0.0..2.0f64, e2 in 0.0..2.0f64) {
        // A larger epsilon can only add pairs.
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let small = TouchJoin::default().join(&a, &b, lo);
        let large = TouchJoin::default().join(&a, &b, hi);
        let large_set: std::collections::HashSet<(u32, u32)> =
            large.pairs.iter().copied().collect();
        for p in &small.pairs {
            prop_assert!(large_set.contains(p), "pair {p:?} lost when eps grew");
        }
    }

    #[test]
    fn assignment_report_is_complete(a in boxes(60), b in boxes(60), eps in 0.0..3.0f64) {
        if a.is_empty() || b.is_empty() {
            return Ok(());
        }
        let (_, report) = TouchJoin::default().join_with_report(&a, &b, eps);
        let assigned: u64 = report.histogram.iter().sum();
        prop_assert_eq!(assigned + report.filtered_out, b.len() as u64);
    }
}
