//! Nested-loop join — the O(n·m) baseline the neuroscientists started
//! with ([Mishra & Eich '92] in the paper's related work).

use crate::stats::{JoinResult, JoinStats, PhaseTimer};
use crate::{JoinObject, SpatialJoin};

/// Compare every pair. No auxiliary memory at all; the baseline every
/// other algorithm's comparison count is measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NestedLoopJoin;

impl SpatialJoin for NestedLoopJoin {
    fn name(&self) -> &'static str {
        "nested-loop"
    }

    fn join<T: JoinObject>(&self, a: &[T], b: &[T], eps: f64) -> JoinResult {
        let mut timer = PhaseTimer::start();
        let mut stats = JoinStats::default();
        let mut pairs = Vec::new();
        for (i, x) in a.iter().enumerate() {
            let fx = x.aabb().inflate(eps);
            for (j, y) in b.iter().enumerate() {
                stats.filter_comparisons += 1;
                if fx.intersects(&y.aabb()) {
                    stats.refine_comparisons += 1;
                    if x.refine(y, eps) {
                        pairs.push((i as u32, j as u32));
                    }
                }
            }
        }
        stats.results = pairs.len() as u64;
        stats.probe_ms = timer.lap();
        stats.join_ms = stats.probe_ms;
        timer.finish(&mut stats);
        JoinResult { pairs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::{Aabb, Vec3};

    #[test]
    fn finds_touching_pairs() {
        let a = vec![Aabb::cube(Vec3::ZERO, 1.0), Aabb::cube(Vec3::new(10.0, 0.0, 0.0), 1.0)];
        let b = vec![Aabb::cube(Vec3::new(1.5, 0.0, 0.0), 1.0)];
        // gap between a[0] and b[0] surfaces: 1.5 - 2 = -0.5 → overlap
        let r = NestedLoopJoin.join(&a, &b, 0.0);
        assert_eq!(r.sorted_pairs(), vec![(0, 0)]);
        assert_eq!(r.stats.filter_comparisons, 2);
        assert_eq!(r.stats.results, 1);
    }

    #[test]
    fn epsilon_widens_matches() {
        let a = vec![Aabb::cube(Vec3::ZERO, 1.0)];
        let b = vec![Aabb::cube(Vec3::new(4.0, 0.0, 0.0), 1.0)]; // gap = 2
        assert!(NestedLoopJoin.join(&a, &b, 1.9).pairs.is_empty());
        assert_eq!(NestedLoopJoin.join(&a, &b, 2.0).pairs.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Aabb> = vec![];
        let one = vec![Aabb::cube(Vec3::ZERO, 1.0)];
        assert!(NestedLoopJoin.join(&e, &one, 1.0).pairs.is_empty());
        assert!(NestedLoopJoin.join(&one, &e, 1.0).pairs.is_empty());
        assert!(NestedLoopJoin.join(&e, &e, 1.0).pairs.is_empty());
    }
}
