//! Plane-sweep join (after Edelsbrunner's sweep-line and the "Scalable
//! Sweep-based Spatial Join"): sort both inputs along x and sweep,
//! keeping active lists of intervals that overlap the sweep position.
//!
//! The paper's critique (§4): "the sweep line approach can become
//! inefficient if too many elements are on the sweep line (likely in case
//! of dense data/detailed models)" — E5 shows exactly that behaviour on
//! elongated neuron segments.

use crate::stats::{JoinResult, JoinStats};
use crate::{JoinObject, SpatialJoin};
use neurospatial_geom::Aabb;
use std::time::Instant;

/// Sweep along x; A-boxes are pre-inflated by ε so the filter semantics
/// match the other algorithms.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlaneSweepJoin;

impl SpatialJoin for PlaneSweepJoin {
    fn name(&self) -> &'static str {
        "plane-sweep"
    }

    fn join<T: JoinObject>(&self, a: &[T], b: &[T], eps: f64) -> JoinResult {
        let t0 = Instant::now();
        let mut stats = JoinStats::default();

        // Sorted copies of (filter box, original index).
        let mut sa: Vec<(Aabb, u32)> =
            a.iter().enumerate().map(|(i, o)| (o.aabb().inflate(eps), i as u32)).collect();
        let mut sb: Vec<(Aabb, u32)> =
            b.iter().enumerate().map(|(i, o)| (o.aabb(), i as u32)).collect();
        sa.sort_by(|x, y| x.0.lo.x.partial_cmp(&y.0.lo.x).expect("finite"));
        sb.sort_by(|x, y| x.0.lo.x.partial_cmp(&y.0.lo.x).expect("finite"));
        stats.aux_memory_bytes =
            ((sa.capacity() + sb.capacity()) * std::mem::size_of::<(Aabb, u32)>()) as u64;
        stats.build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let mut pairs = Vec::new();
        let (mut ia, mut ib) = (0usize, 0usize);
        // Active lists: boxes whose x-interval contains the sweep position.
        let mut active_a: Vec<(Aabb, u32)> = Vec::new();
        let mut active_b: Vec<(Aabb, u32)> = Vec::new();

        while ia < sa.len() || ib < sb.len() {
            let next_a = sa.get(ia).map(|e| e.0.lo.x).unwrap_or(f64::INFINITY);
            let next_b = sb.get(ib).map(|e| e.0.lo.x).unwrap_or(f64::INFINITY);
            if next_a <= next_b {
                let (fa, i) = sa[ia];
                ia += 1;
                // Expire B-boxes that end before this A-box starts.
                active_b.retain(|(fb, _)| fb.hi.x >= fa.lo.x);
                for &(fb, j) in &active_b {
                    stats.filter_comparisons += 1;
                    if boxes_overlap_yz(&fa, &fb) {
                        stats.refine_comparisons += 1;
                        if a[i as usize].refine(&b[j as usize], eps) {
                            pairs.push((i, j));
                        }
                    }
                }
                active_a.push((fa, i));
            } else {
                let (fb, j) = sb[ib];
                ib += 1;
                active_a.retain(|(fa, _)| fa.hi.x >= fb.lo.x);
                for &(fa, i) in &active_a {
                    stats.filter_comparisons += 1;
                    if boxes_overlap_yz(&fa, &fb) {
                        stats.refine_comparisons += 1;
                        if a[i as usize].refine(&b[j as usize], eps) {
                            pairs.push((i, j));
                        }
                    }
                }
                active_b.push((fb, j));
            }
        }

        stats.results = pairs.len() as u64;
        stats.probe_ms = t1.elapsed().as_secs_f64() * 1e3;
        stats.total_ms = t0.elapsed().as_secs_f64() * 1e3;
        JoinResult { pairs, stats }
    }
}

/// The sweep already guarantees x-overlap; test the remaining two axes.
#[inline]
fn boxes_overlap_yz(a: &Aabb, b: &Aabb) -> bool {
    a.lo.y <= b.hi.y && b.lo.y <= a.hi.y && a.lo.z <= b.hi.z && b.lo.z <= a.hi.z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;
    use neurospatial_geom::Vec3;

    fn grid_boxes(n: usize, offset: f64) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 1.5 + offset;
                let y = ((i / 10) % 10) as f64 * 1.5;
                let z = (i / 100) as f64 * 1.5 + offset * 0.5;
                Aabb::cube(Vec3::new(x, y, z), 0.5)
            })
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let a = grid_boxes(300, 0.0);
        let b = grid_boxes(300, 0.7);
        for eps in [0.0, 0.2, 1.0] {
            let s = PlaneSweepJoin.join(&a, &b, eps);
            let n = NestedLoopJoin.join(&a, &b, eps);
            assert_eq!(s.sorted_pairs(), n.sorted_pairs(), "eps={eps}");
            assert!(s.is_duplicate_free());
        }
    }

    #[test]
    fn fewer_comparisons_than_nested_on_spread_data() {
        // Data spread along x: the sweep should test far fewer pairs.
        let a: Vec<Aabb> =
            (0..500).map(|i| Aabb::cube(Vec3::new(i as f64 * 3.0, 0.0, 0.0), 0.5)).collect();
        let b: Vec<Aabb> =
            (0..500).map(|i| Aabb::cube(Vec3::new(i as f64 * 3.0 + 0.8, 0.0, 0.0), 0.5)).collect();
        let s = PlaneSweepJoin.join(&a, &b, 0.0);
        let n = NestedLoopJoin.join(&a, &b, 0.0);
        assert_eq!(s.sorted_pairs(), n.sorted_pairs());
        assert!(
            s.stats.filter_comparisons * 20 < n.stats.filter_comparisons,
            "sweep {} vs nested {}",
            s.stats.filter_comparisons,
            n.stats.filter_comparisons
        );
    }

    #[test]
    fn degenerate_same_x_still_correct() {
        // Everything on one sweep position — the paper's worst case.
        let a: Vec<Aabb> =
            (0..100).map(|i| Aabb::cube(Vec3::new(0.0, i as f64 * 1.2, 0.0), 0.5)).collect();
        let b: Vec<Aabb> =
            (0..100).map(|i| Aabb::cube(Vec3::new(0.0, i as f64 * 1.2 + 0.6, 0.0), 0.5)).collect();
        let s = PlaneSweepJoin.join(&a, &b, 0.0);
        let n = NestedLoopJoin.join(&a, &b, 0.0);
        assert_eq!(s.sorted_pairs(), n.sorted_pairs());
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Aabb> = vec![];
        let one = vec![Aabb::cube(Vec3::ZERO, 1.0)];
        assert!(PlaneSweepJoin.join(&e, &one, 1.0).pairs.is_empty());
        assert!(PlaneSweepJoin.join(&one, &e, 1.0).pairs.is_empty());
    }
}
