//! Plane-sweep join (after Edelsbrunner's sweep-line and the "Scalable
//! Sweep-based Spatial Join"): sort both inputs along x and sweep,
//! keeping active lists of intervals that overlap the sweep position.
//!
//! The paper's critique (§4): "the sweep line approach can become
//! inefficient if too many elements are on the sweep line (likely in case
//! of dense data/detailed models)" — E5 shows exactly that behaviour on
//! elongated neuron segments.

use crate::stats::{JoinResult, JoinStats, PhaseTimer};
use crate::{JoinObject, SpatialJoin};
use neurospatial_geom::Aabb;

/// Sweep along x; A-boxes are pre-inflated by ε so the filter semantics
/// match the other algorithms.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlaneSweepJoin;

/// One fused pass over an active list: evict expired intervals with
/// `swap_remove` (O(1) per eviction, order is irrelevant in a set of
/// active intervals) while testing the survivors against the incoming
/// box — instead of a separate `retain` compaction (which shifts every
/// survivor left) followed by a second full traversal. On elongated
/// inputs where intervals stay active across many events, the old
/// two-pass shape traversed the (large) active list twice per event.
#[inline]
#[allow(clippy::too_many_arguments)]
fn scan_active<T: JoinObject>(
    active: &mut Vec<(Aabb, u32)>,
    incoming: &Aabb,
    emit_a_first: bool,
    incoming_idx: u32,
    a: &[T],
    b: &[T],
    eps: f64,
    stats: &mut JoinStats,
    pairs: &mut Vec<(u32, u32)>,
) {
    let mut k = 0;
    while k < active.len() {
        let (fx, other) = active[k];
        if fx.hi.x < incoming.lo.x {
            active.swap_remove(k);
            continue; // re-examine the swapped-in element at slot k
        }
        stats.filter_comparisons += 1;
        if boxes_overlap_yz(&fx, incoming) {
            stats.refine_comparisons += 1;
            let (i, j) = if emit_a_first { (incoming_idx, other) } else { (other, incoming_idx) };
            if a[i as usize].refine(&b[j as usize], eps) {
                pairs.push((i, j));
            }
        }
        k += 1;
    }
}

impl SpatialJoin for PlaneSweepJoin {
    fn name(&self) -> &'static str {
        "plane-sweep"
    }

    fn join<T: JoinObject>(&self, a: &[T], b: &[T], eps: f64) -> JoinResult {
        let mut timer = PhaseTimer::start();
        let mut stats = JoinStats::default();

        // Sorted copies of (filter box, original index).
        let mut sa: Vec<(Aabb, u32)> =
            a.iter().enumerate().map(|(i, o)| (o.aabb().inflate(eps), i as u32)).collect();
        let mut sb: Vec<(Aabb, u32)> =
            b.iter().enumerate().map(|(i, o)| (o.aabb(), i as u32)).collect();
        sa.sort_by(|x, y| x.0.lo.x.partial_cmp(&y.0.lo.x).expect("finite"));
        sb.sort_by(|x, y| x.0.lo.x.partial_cmp(&y.0.lo.x).expect("finite"));
        stats.aux_memory_bytes =
            ((sa.capacity() + sb.capacity()) * std::mem::size_of::<(Aabb, u32)>()) as u64;
        stats.build_ms = timer.lap();

        let mut pairs = Vec::new();
        let (mut ia, mut ib) = (0usize, 0usize);
        // Active lists: boxes whose x-interval contains the sweep position.
        let mut active_a: Vec<(Aabb, u32)> = Vec::new();
        let mut active_b: Vec<(Aabb, u32)> = Vec::new();

        while ia < sa.len() || ib < sb.len() {
            let next_a = sa.get(ia).map(|e| e.0.lo.x).unwrap_or(f64::INFINITY);
            let next_b = sb.get(ib).map(|e| e.0.lo.x).unwrap_or(f64::INFINITY);
            if next_a <= next_b {
                let (fa, i) = sa[ia];
                ia += 1;
                scan_active(&mut active_b, &fa, true, i, a, b, eps, &mut stats, &mut pairs);
                active_a.push((fa, i));
            } else {
                let (fb, j) = sb[ib];
                ib += 1;
                scan_active(&mut active_a, &fb, false, j, a, b, eps, &mut stats, &mut pairs);
                active_b.push((fb, j));
            }
        }

        stats.results = pairs.len() as u64;
        stats.probe_ms = timer.lap();
        stats.join_ms = stats.probe_ms;
        timer.finish(&mut stats);
        JoinResult { pairs, stats }
    }
}

/// The sweep already guarantees x-overlap; test the remaining two axes.
#[inline]
fn boxes_overlap_yz(a: &Aabb, b: &Aabb) -> bool {
    a.lo.y <= b.hi.y && b.lo.y <= a.hi.y && a.lo.z <= b.hi.z && b.lo.z <= a.hi.z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;
    use neurospatial_geom::{Segment, Vec3};

    fn grid_boxes(n: usize, offset: f64) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 1.5 + offset;
                let y = ((i / 10) % 10) as f64 * 1.5;
                let z = (i / 100) as f64 * 1.5 + offset * 0.5;
                Aabb::cube(Vec3::new(x, y, z), 0.5)
            })
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let a = grid_boxes(300, 0.0);
        let b = grid_boxes(300, 0.7);
        for eps in [0.0, 0.2, 1.0] {
            let s = PlaneSweepJoin.join(&a, &b, eps);
            let n = NestedLoopJoin.join(&a, &b, eps);
            assert_eq!(s.sorted_pairs(), n.sorted_pairs(), "eps={eps}");
            assert!(s.is_duplicate_free());
        }
    }

    #[test]
    fn fewer_comparisons_than_nested_on_spread_data() {
        // Data spread along x: the sweep should test far fewer pairs.
        let a: Vec<Aabb> =
            (0..500).map(|i| Aabb::cube(Vec3::new(i as f64 * 3.0, 0.0, 0.0), 0.5)).collect();
        let b: Vec<Aabb> =
            (0..500).map(|i| Aabb::cube(Vec3::new(i as f64 * 3.0 + 0.8, 0.0, 0.0), 0.5)).collect();
        let s = PlaneSweepJoin.join(&a, &b, 0.0);
        let n = NestedLoopJoin.join(&a, &b, 0.0);
        assert_eq!(s.sorted_pairs(), n.sorted_pairs());
        assert!(
            s.stats.filter_comparisons * 20 < n.stats.filter_comparisons,
            "sweep {} vs nested {}",
            s.stats.filter_comparisons,
            n.stats.filter_comparisons
        );
    }

    #[test]
    fn degenerate_same_x_still_correct() {
        // Everything on one sweep position — the paper's worst case.
        let a: Vec<Aabb> =
            (0..100).map(|i| Aabb::cube(Vec3::new(0.0, i as f64 * 1.2, 0.0), 0.5)).collect();
        let b: Vec<Aabb> =
            (0..100).map(|i| Aabb::cube(Vec3::new(0.0, i as f64 * 1.2 + 0.6, 0.0), 0.5)).collect();
        let s = PlaneSweepJoin.join(&a, &b, 0.0);
        let n = NestedLoopJoin.join(&a, &b, 0.0);
        assert_eq!(s.sorted_pairs(), n.sorted_pairs());
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Aabb> = vec![];
        let one = vec![Aabb::cube(Vec3::ZERO, 1.0)];
        assert!(PlaneSweepJoin.join(&e, &one, 1.0).pairs.is_empty());
        assert!(PlaneSweepJoin.join(&one, &e, 1.0).pairs.is_empty());
    }

    #[test]
    fn elongated_segments_regression() {
        // The E5 degenerate case: long, thin x-aligned segments whose
        // intervals stay on the sweep line across many events, so the
        // active lists grow large and evictions interleave with tests —
        // the regime the swap_remove eviction pass exists for. Staggered
        // starts and varying lengths force evictions at many distinct
        // scan positions (including mid-list, which swap_remove reorders).
        let a: Vec<Segment> = (0..120)
            .map(|i| {
                let y = (i % 12) as f64 * 1.1;
                let x0 = (i / 12) as f64 * 3.7;
                Segment::new(
                    Vec3::new(x0, y, 0.0),
                    Vec3::new(x0 + 40.0 + (i % 7) as f64 * 11.0, y, 0.0),
                    0.3,
                )
            })
            .collect();
        let b: Vec<Segment> = (0..120)
            .map(|i| {
                let y = (i % 12) as f64 * 1.1 + 0.55;
                let x0 = (i / 12) as f64 * 5.3 + 1.0;
                Segment::new(
                    Vec3::new(x0, y, 0.2),
                    Vec3::new(x0 + 25.0 + (i % 5) as f64 * 17.0, y, 0.2),
                    0.3,
                )
            })
            .collect();
        for eps in [0.0, 0.4, 1.2] {
            let s = PlaneSweepJoin.join(&a, &b, eps);
            let n = NestedLoopJoin.join(&a, &b, eps);
            assert_eq!(s.sorted_pairs(), n.sorted_pairs(), "eps={eps}");
            assert!(s.is_duplicate_free(), "eps={eps}");
        }
    }
}
