//! The pre-CSR TOUCH implementation: pointer-walking, streaming, fused
//! assign+join. Kept as a first-class algorithm (`touch-classic`) so the
//! bench harness can race the cache-conscious engine in
//! [`crate::touch`] against the exact code it replaced, and so the
//! equivalence suite can prove both produce the identical relation.
//!
//! Each B-object descends the pointer arena from the root; once its
//! assignment node is found the join continues downward from that node.
//! Per-node buckets are never materialised, the A-tree is never frozen,
//! and every MBR test dereferences the arena — the layout the CSR/SoA
//! rebuild exists to beat.

use crate::stats::{JoinResult, JoinStats, PhaseTimer};
use crate::touch::AssignmentReport;
use crate::{JoinObject, SpatialJoin};
use neurospatial_geom::{Aabb, Executor};
use neurospatial_rtree::{NodeId, RTree, RTreeObject, RTreeParams};

/// The streaming pointer-walk TOUCH join (pre-rebuild behaviour).
#[derive(Debug, Clone, Copy)]
pub struct ClassicTouchJoin {
    /// Fan-out of the tree over dataset A.
    pub fanout: usize,
    /// Worker threads for the assign+join phase (1 = sequential).
    pub threads: usize,
}

impl Default for ClassicTouchJoin {
    fn default() -> Self {
        ClassicTouchJoin { fanout: 16, threads: 1 }
    }
}

impl ClassicTouchJoin {
    /// Parallel variant with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        ClassicTouchJoin { fanout: 16, threads: threads.max(1) }
    }

    /// Like [`SpatialJoin::join`] but also returns the assignment-depth
    /// report.
    pub fn join_with_report<T: JoinObject>(
        &self,
        a: &[T],
        b: &[T],
        eps: f64,
    ) -> (JoinResult, AssignmentReport) {
        self.join_impl(a, b, eps)
    }
}

#[derive(Clone)]
struct Indexed<T> {
    obj: T,
    idx: u32,
}

impl<T: JoinObject> RTreeObject for Indexed<T> {
    fn aabb(&self) -> Aabb {
        self.obj.aabb()
    }
}

impl SpatialJoin for ClassicTouchJoin {
    fn name(&self) -> &'static str {
        "touch-classic"
    }

    fn join<T: JoinObject>(&self, a: &[T], b: &[T], eps: f64) -> JoinResult {
        self.join_impl(a, b, eps).0
    }
}

impl ClassicTouchJoin {
    fn join_impl<T: JoinObject>(
        &self,
        a: &[T],
        b: &[T],
        eps: f64,
    ) -> (JoinResult, AssignmentReport) {
        let mut timer = PhaseTimer::start();
        let mut stats = JoinStats::default();
        if a.is_empty() || b.is_empty() {
            return (JoinResult::default(), AssignmentReport::default());
        }

        // --- Build: data-oriented partitioning of A ----------------------
        let wrapped: Vec<Indexed<T>> =
            a.iter().enumerate().map(|(i, o)| Indexed { obj: o.clone(), idx: i as u32 }).collect();
        let tree = RTree::bulk_load(wrapped, RTreeParams::with_max_entries(self.fanout));
        stats.build_ms = timer.lap();

        // --- Assign + Join (fused, streaming) ----------------------------
        // Each B-object probes independently, so the work fans out over
        // the shared chunked executor. Partials come back in chunk order,
        // keeping pair order deterministic.
        let partials = Executor::new(self.threads)
            .map_chunks(b.len(), |range| probe_range(&tree, b, range, eps));
        let mut pairs = Vec::new();
        let mut probe_stats = ProbeStats::default();
        for (p, s) in partials {
            pairs.extend(p);
            probe_stats.merge(&s);
        }

        stats.filter_comparisons = probe_stats.filter;
        stats.refine_comparisons = probe_stats.refine;
        stats.filtered_out = probe_stats.filtered_out;
        // Memory: the tree on A plus one bucket slot per surviving B
        // object — no replication. (This streaming implementation never
        // materialises buckets, so we charge the logical bucket array:
        // 4 bytes per B object.)
        stats.aux_memory_bytes = tree.memory_bytes() as u64 + b.len() as u64 * 4;
        stats.results = pairs.len() as u64;
        stats.probe_ms = timer.lap();
        stats.join_ms = stats.probe_ms; // fused: no separable assign phase
        timer.finish(&mut stats);
        (JoinResult { pairs, stats }, probe_stats.assignment)
    }
}

#[derive(Default, Clone)]
struct ProbeStats {
    filter: u64,
    refine: u64,
    filtered_out: u64,
    assignment: AssignmentReport,
}

impl ProbeStats {
    fn merge(&mut self, o: &ProbeStats) {
        self.filter += o.filter;
        self.refine += o.refine;
        self.filtered_out += o.filtered_out;
        self.assignment.merge(&o.assignment);
    }
}

/// Assign-and-join for a contiguous range of B. Assignment and the join
/// of one object are fused: once `b`'s assignment node is found, the join
/// continues downward from that node.
fn probe_range<T: JoinObject>(
    tree: &RTree<Indexed<T>>,
    b: &[T],
    range: std::ops::Range<usize>,
    eps: f64,
) -> (Vec<(u32, u32)>, ProbeStats) {
    let mut stats = ProbeStats::default();
    let mut pairs = Vec::new();
    let mut scratch: Vec<NodeId> = Vec::new();
    // Join-descent stack, hoisted out of the per-object loop.
    let mut stack: Vec<NodeId> = Vec::new();

    for j in range {
        let fb = b[j].aabb().inflate(eps);

        // --- Assignment descent -------------------------------------
        let mut node = tree.root_id();
        let mut depth = 0usize;
        stats.filter += 1;
        if !tree.node_mbr(node).intersects(&fb) {
            stats.filtered_out += 1;
            stats.assignment.filtered_out += 1;
            continue;
        }
        let assignment = loop {
            match tree.node_children(node) {
                None => break Some(node), // reached a leaf
                Some(children) => {
                    scratch.clear();
                    for &c in children {
                        stats.filter += 1;
                        if tree.node_mbr(c).intersects(&fb) {
                            scratch.push(c);
                        }
                    }
                    match scratch.len() {
                        0 => break None, // empty space: filtered out
                        1 => {
                            node = scratch[0];
                            depth += 1;
                        }
                        _ => break Some(node), // ambiguous: assign here
                    }
                }
            }
        };
        let Some(start) = assignment else {
            stats.filtered_out += 1;
            stats.assignment.filtered_out += 1;
            continue;
        };
        stats.assignment.record(depth);

        // --- Join within the assigned subtree ------------------------
        stack.clear();
        stack.push(start);
        while let Some(n) = stack.pop() {
            match tree.node_children(n) {
                Some(children) => {
                    for &c in children {
                        stats.filter += 1;
                        if tree.node_mbr(c).intersects(&fb) {
                            stack.push(c);
                        }
                    }
                }
                None => {
                    for x in tree.leaf_objects(n) {
                        stats.filter += 1;
                        if x.obj.aabb().inflate(eps).intersects(&b[j].aabb()) {
                            stats.refine += 1;
                            if x.obj.refine(&b[j], eps) {
                                pairs.push((x.idx, j as u32));
                            }
                        }
                    }
                }
            }
        }
    }
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NestedLoopJoin, TouchJoin};
    use neurospatial_geom::Vec3;

    fn grid_boxes(n: usize, offset: f64) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 1.5 + offset;
                let y = ((i / 10) % 10) as f64 * 1.5;
                let z = (i / 100) as f64 * 1.5;
                Aabb::cube(Vec3::new(x, y, z), 0.5)
            })
            .collect()
    }

    #[test]
    fn matches_nested_loop_and_the_rebuilt_engine() {
        let a = grid_boxes(350, 0.0);
        let b = grid_boxes(350, 0.8);
        for eps in [0.0, 0.4, 1.5] {
            let c = ClassicTouchJoin::default().join(&a, &b, eps);
            let n = NestedLoopJoin.join(&a, &b, eps);
            let t = TouchJoin::default().join(&a, &b, eps);
            assert_eq!(c.sorted_pairs(), n.sorted_pairs(), "eps={eps}");
            assert_eq!(c.sorted_pairs(), t.sorted_pairs(), "eps={eps}");
            assert!(c.is_duplicate_free());
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let a = grid_boxes(400, 0.0);
        let b = grid_boxes(400, 0.6);
        let seq = ClassicTouchJoin::default().join(&a, &b, 0.3);
        let par = ClassicTouchJoin::parallel(4).join(&a, &b, 0.3);
        assert_eq!(seq.sorted_pairs(), par.sorted_pairs());
        assert_eq!(seq.stats.filter_comparisons, par.stats.filter_comparisons);
    }

    #[test]
    fn report_accounts_for_every_b_object() {
        let a = grid_boxes(500, 0.0);
        let b = grid_boxes(500, 0.8);
        let (r, report) = ClassicTouchJoin::default().join_with_report(&a, &b, 0.3);
        let assigned: u64 = report.histogram.iter().sum();
        assert_eq!(assigned + report.filtered_out, b.len() as u64);
        assert_eq!(report.filtered_out, r.stats.filtered_out);
    }
}
