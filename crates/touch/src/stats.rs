//! Join execution statistics — the demo's runtime charts: "time spent on
//! the join, memory footprint as well as the number of pairwise
//! comparisons" (§4.2).

/// Statistics of one join execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JoinStats {
    /// AABB filter tests performed.
    pub filter_comparisons: u64,
    /// Exact geometry tests performed (survivors of the filter).
    pub refine_comparisons: u64,
    /// Qualifying pairs.
    pub results: u64,
    /// Time building auxiliary structures (trees, grids, sorted copies).
    pub build_ms: f64,
    /// Time in the probe/sweep/traversal phase.
    pub probe_ms: f64,
    /// Total wall time.
    pub total_ms: f64,
    /// Estimated peak *auxiliary* memory (bytes): everything allocated on
    /// top of the two input slices and the output vector, which all
    /// algorithms share. Replication-based algorithms (PBSM) pay here.
    pub aux_memory_bytes: u64,
    /// Objects discarded by TOUCH's empty-space filtering (0 for others).
    pub filtered_out: u64,
}

impl JoinStats {
    /// All pairwise comparisons (filter + refine) — the demo's headline
    /// comparison counter.
    pub fn total_comparisons(&self) -> u64 {
        self.filter_comparisons + self.refine_comparisons
    }
}

/// Result of a join: qualifying index pairs plus statistics.
#[derive(Debug, Clone, Default)]
pub struct JoinResult {
    /// Pairs `(index into A, index into B)`.
    pub pairs: Vec<(u32, u32)>,
    pub stats: JoinStats,
}

impl JoinResult {
    /// Pairs sorted lexicographically — for comparing algorithms in tests.
    pub fn sorted_pairs(&self) -> Vec<(u32, u32)> {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        p
    }

    /// True if no pair appears twice (duplicate-freedom invariant).
    pub fn is_duplicate_free(&self) -> bool {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        let n = p.len();
        p.dedup();
        p.len() == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = JoinStats { filter_comparisons: 10, refine_comparisons: 4, ..Default::default() };
        assert_eq!(s.total_comparisons(), 14);
    }

    #[test]
    fn duplicate_detection() {
        let ok = JoinResult { pairs: vec![(0, 1), (1, 0), (0, 2)], ..Default::default() };
        assert!(ok.is_duplicate_free());
        let bad = JoinResult { pairs: vec![(0, 1), (0, 1)], ..Default::default() };
        assert!(!bad.is_duplicate_free());
        assert_eq!(ok.sorted_pairs(), vec![(0, 1), (0, 2), (1, 0)]);
    }
}
