//! Join execution statistics — the demo's runtime charts: "time spent on
//! the join, memory footprint as well as the number of pairwise
//! comparisons" (§4.2) — plus the shared per-phase [`PhaseTimer`] and the
//! process-wide allocation probe behind the `allocations` column.

use std::sync::OnceLock;
use std::time::Instant;

/// Statistics of one join execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JoinStats {
    /// AABB filter tests performed.
    pub filter_comparisons: u64,
    /// Exact geometry tests performed (survivors of the filter).
    pub refine_comparisons: u64,
    /// Qualifying pairs.
    pub results: u64,
    /// Time building auxiliary structures (trees, grids, sorted copies).
    pub build_ms: f64,
    /// Time assigning/partitioning objects into buckets or cells (0 for
    /// algorithms without a distinct assignment phase).
    pub assign_ms: f64,
    /// Time in the per-bucket/leaf join phase proper.
    pub join_ms: f64,
    /// Time in the probe/sweep/traversal phase (assign + join for
    /// bucket-based algorithms; kept alongside the finer breakdown so
    /// existing consumers stay meaningful).
    pub probe_ms: f64,
    /// Total wall time.
    pub total_ms: f64,
    /// Estimated peak *auxiliary* memory (bytes): everything allocated on
    /// top of the two input slices and the output vector, which all
    /// algorithms share. Replication-based algorithms (PBSM) pay here.
    pub aux_memory_bytes: u64,
    /// Objects discarded by TOUCH's empty-space filtering (0 for others).
    pub filtered_out: u64,
    /// Heap allocations performed during the join, as reported by the
    /// registered [`allocation probe`](register_allocation_probe);
    /// 0 when no probe is installed.
    pub allocations: u64,
}

impl JoinStats {
    /// All pairwise comparisons (filter + refine) — the demo's headline
    /// comparison counter.
    pub fn total_comparisons(&self) -> u64 {
        self.filter_comparisons + self.refine_comparisons
    }
}

/// Process-wide allocation counter hook. A binary owning a counting
/// global allocator (the `experiments` harness) registers its reader
/// here once; every join algorithm then snapshots it around execution
/// and reports the delta in [`JoinStats::allocations`]. Without a
/// registered probe the snapshots read 0 and the delta stays 0.
static ALLOCATION_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Register the process's allocation counter. Idempotent: the first
/// registration wins (later calls are ignored, matching `OnceLock`).
pub fn register_allocation_probe(probe: fn() -> u64) {
    let _ = ALLOCATION_PROBE.set(probe);
}

/// Current allocation count (0 without a registered probe).
pub fn allocation_count() -> u64 {
    ALLOCATION_PROBE.get().map_or(0, |probe| probe())
}

/// Wall-clock phase timer shared by every join algorithm: one `start`,
/// one `lap` per phase boundary, one `total_ms` at the end — instead of
/// each algorithm juggling its own ad-hoc `Instant` pairs. Also
/// snapshots the allocation probe so `finish` can fill
/// [`JoinStats::allocations`].
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer {
    t0: Instant,
    last: Instant,
    allocs0: u64,
}

impl PhaseTimer {
    /// Start timing (and snapshot the allocation counter).
    pub fn start() -> Self {
        let now = Instant::now();
        PhaseTimer { t0: now, last: now, allocs0: allocation_count() }
    }

    /// Milliseconds since the previous `lap` (or `start`), advancing the
    /// phase boundary.
    pub fn lap(&mut self) -> f64 {
        let now = Instant::now();
        let ms = now.duration_since(self.last).as_secs_f64() * 1e3;
        self.last = now;
        ms
    }

    /// Milliseconds since `start` (does not advance the boundary).
    pub fn total_ms(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e3
    }

    /// Write the totals into `stats`: `total_ms` and the allocation delta
    /// since `start`.
    pub fn finish(&self, stats: &mut JoinStats) {
        stats.total_ms = self.total_ms();
        stats.allocations = allocation_count().saturating_sub(self.allocs0);
    }
}

/// Result of a join: qualifying index pairs plus statistics.
#[derive(Debug, Clone, Default)]
pub struct JoinResult {
    /// Pairs `(index into A, index into B)`.
    pub pairs: Vec<(u32, u32)>,
    pub stats: JoinStats,
}

impl JoinResult {
    /// Pairs sorted lexicographically — for comparing algorithms in tests.
    pub fn sorted_pairs(&self) -> Vec<(u32, u32)> {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        p
    }

    /// True if no pair appears twice (duplicate-freedom invariant).
    pub fn is_duplicate_free(&self) -> bool {
        let mut p = self.pairs.clone();
        p.sort_unstable();
        let n = p.len();
        p.dedup();
        p.len() == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = JoinStats { filter_comparisons: 10, refine_comparisons: 4, ..Default::default() };
        assert_eq!(s.total_comparisons(), 14);
    }

    #[test]
    fn phase_timer_laps_partition_the_total() {
        let mut t = PhaseTimer::start();
        let a = t.lap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = t.lap();
        let mut s = JoinStats::default();
        t.finish(&mut s);
        assert!(a >= 0.0 && b >= 2.0 * 0.9, "lap b measured the sleep: {b}");
        assert!(s.total_ms >= a + b - 1e-6);
        // No probe registered in unit tests: allocation delta reads 0.
        assert_eq!(s.allocations, 0);
    }

    #[test]
    fn duplicate_detection() {
        let ok = JoinResult { pairs: vec![(0, 1), (1, 0), (0, 2)], ..Default::default() };
        assert!(ok.is_duplicate_free());
        let bad = JoinResult { pairs: vec![(0, 1), (0, 1)], ..Default::default() };
        assert!(!bad.is_duplicate_free());
        assert_eq!(ok.sorted_pairs(), vec![(0, 1), (0, 2), (1, 0)]);
    }
}
