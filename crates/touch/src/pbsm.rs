//! PBSM — Partition Based Spatial-Merge join (Patel & DeWitt '96),
//! adapted to main memory: a uniform grid partitions *space*, every
//! object is replicated into all cells its filter box overlaps, cells are
//! joined independently, and the reference-point method suppresses
//! duplicate pairs.
//!
//! This is the strongest space-oriented baseline in the paper; TOUCH's
//! claim is ~1 order of magnitude faster, with PBSM paying extra memory
//! for replication (§4: replication "increases the memory footprint" and
//! "requires multiple comparisons").

use crate::stats::{JoinResult, JoinStats, PhaseTimer};
use crate::{JoinObject, SpatialJoin};
use neurospatial_geom::{Aabb, GridIndexer, Vec3};

/// PBSM with a configurable grid resolution.
#[derive(Debug, Clone, Copy)]
pub struct PbsmJoin {
    /// Target average number of A-objects per cell; the grid resolution
    /// is derived from it.
    pub objects_per_cell: usize,
    /// Hard cap on cells per axis (memory guard for degenerate inputs).
    pub max_cells_per_axis: usize,
}

impl Default for PbsmJoin {
    fn default() -> Self {
        PbsmJoin { objects_per_cell: 32, max_cells_per_axis: 128 }
    }
}

impl SpatialJoin for PbsmJoin {
    fn name(&self) -> &'static str {
        "pbsm"
    }

    fn join<T: JoinObject>(&self, a: &[T], b: &[T], eps: f64) -> JoinResult {
        let mut timer = PhaseTimer::start();
        let mut stats = JoinStats::default();
        if a.is_empty() || b.is_empty() {
            return JoinResult::default();
        }

        // Grid over the union of both datasets' filter boxes.
        let mut bounds = Aabb::EMPTY;
        for o in a {
            bounds = bounds.union(&o.aabb().inflate(eps));
        }
        for o in b {
            bounds = bounds.union(&o.aabb());
        }
        let cells_per_axis = (((a.len() / self.objects_per_cell.max(1)) as f64).cbrt().ceil()
            as usize)
            .clamp(1, self.max_cells_per_axis);
        let grid = GridIndexer::new(bounds, [cells_per_axis; 3]);
        stats.build_ms = timer.lap();

        // Replicate object indices into cells (the PBSM partition phase)
        // — PBSM's analogue of TOUCH's assignment.
        let mut cells_a: Vec<Vec<u32>> = vec![Vec::new(); grid.len()];
        let mut cells_b: Vec<Vec<u32>> = vec![Vec::new(); grid.len()];
        let mut replicas = 0u64;
        for (i, o) in a.iter().enumerate() {
            grid.for_each_cell_in(&o.aabb().inflate(eps), |c| {
                cells_a[c].push(i as u32);
                replicas += 1;
            });
        }
        for (j, o) in b.iter().enumerate() {
            grid.for_each_cell_in(&o.aabb(), |c| {
                cells_b[c].push(j as u32);
                replicas += 1;
            });
        }
        stats.aux_memory_bytes =
            replicas * 4 + (grid.len() * 2 * std::mem::size_of::<Vec<u32>>()) as u64;
        stats.assign_ms = timer.lap();

        // Join each cell, de-duplicating by reference point.
        let mut pairs = Vec::new();
        for ci in 0..grid.len() {
            let (la, lb) = (&cells_a[ci], &cells_b[ci]);
            if la.is_empty() || lb.is_empty() {
                continue;
            }
            let cell_coords = grid.delinear(ci);
            for &i in la {
                let fa = a[i as usize].aabb().inflate(eps);
                for &j in lb {
                    stats.filter_comparisons += 1;
                    let fb = b[j as usize].aabb();
                    if !fa.intersects(&fb) {
                        continue;
                    }
                    // Reference point: the low corner of the filter-box
                    // intersection. The pair is reported only by the cell
                    // containing that point, so replication produces no
                    // duplicates.
                    let rp =
                        Vec3::new(fa.lo.x.max(fb.lo.x), fa.lo.y.max(fb.lo.y), fa.lo.z.max(fb.lo.z));
                    if grid.cell_of(rp) != cell_coords {
                        continue;
                    }
                    stats.refine_comparisons += 1;
                    if a[i as usize].refine(&b[j as usize], eps) {
                        pairs.push((i, j));
                    }
                }
            }
        }

        stats.results = pairs.len() as u64;
        stats.join_ms = timer.lap();
        stats.probe_ms = stats.assign_ms + stats.join_ms;
        timer.finish(&mut stats);
        JoinResult { pairs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;

    fn grid_boxes(n: usize, offset: f64) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 1.5 + offset;
                let y = ((i / 10) % 10) as f64 * 1.5;
                let z = (i / 100) as f64 * 1.5;
                Aabb::cube(Vec3::new(x, y, z), 0.5)
            })
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let a = grid_boxes(400, 0.0);
        let b = grid_boxes(400, 0.8);
        for eps in [0.0, 0.3, 2.0] {
            let p = PbsmJoin::default().join(&a, &b, eps);
            let n = NestedLoopJoin.join(&a, &b, eps);
            assert_eq!(p.sorted_pairs(), n.sorted_pairs(), "eps={eps}");
            assert!(p.is_duplicate_free(), "eps={eps}");
        }
    }

    #[test]
    fn no_duplicates_despite_replication() {
        // Large boxes spanning many cells are the replication stress case.
        let a: Vec<Aabb> =
            (0..40).map(|i| Aabb::cube(Vec3::new(i as f64, 0.0, 0.0), 5.0)).collect();
        let b: Vec<Aabb> =
            (0..40).map(|i| Aabb::cube(Vec3::new(i as f64, 2.0, 0.0), 5.0)).collect();
        let p = PbsmJoin { objects_per_cell: 2, max_cells_per_axis: 16 }.join(&a, &b, 0.5);
        assert!(p.is_duplicate_free());
        let n = NestedLoopJoin.join(&a, &b, 0.5);
        assert_eq!(p.sorted_pairs(), n.sorted_pairs());
    }

    #[test]
    fn replication_costs_memory() {
        let a = grid_boxes(500, 0.0);
        let b = grid_boxes(500, 0.5);
        let p = PbsmJoin { objects_per_cell: 4, max_cells_per_axis: 64 }.join(&a, &b, 1.0);
        // With ε-inflation every object overlaps multiple cells.
        assert!(p.stats.aux_memory_bytes > (a.len() + b.len()) as u64 * 4);
    }

    #[test]
    fn single_cell_degenerates_to_nested_loop() {
        let a = grid_boxes(50, 0.0);
        let b = grid_boxes(50, 0.4);
        let p = PbsmJoin { objects_per_cell: usize::MAX, max_cells_per_axis: 1 }.join(&a, &b, 0.1);
        let n = NestedLoopJoin.join(&a, &b, 0.1);
        assert_eq!(p.sorted_pairs(), n.sorted_pairs());
        assert_eq!(p.stats.filter_comparisons, n.stats.filter_comparisons);
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Aabb> = vec![];
        let one = vec![Aabb::cube(Vec3::ZERO, 1.0)];
        assert!(PbsmJoin::default().join(&e, &one, 1.0).pairs.is_empty());
        assert!(PbsmJoin::default().join(&one, &e, 1.0).pairs.is_empty());
    }
}
