//! TOUCH — hierarchical data-oriented partitioning join (Nobari et al.,
//! SIGMOD'13), as described in §4.1 of the demo paper:
//!
//! 1. **Build**: index dataset A with a packed (STR) tree. Because the
//!    partitioning is *data*-oriented, packing "opens up empty space
//!    between partitions" and no element is ever replicated.
//! 2. **Assign**: each object `b ∈ B` descends from the root; at every
//!    inner node the children whose ε-inflated MBR intersects `b` are
//!    counted. Zero children → `b` falls into empty space and is
//!    **filtered** out (it cannot join anything). Exactly one child →
//!    descend. Several children → `b` is assigned to the current node's
//!    bucket.
//! 3. **Join**: for every node bucket, each assigned `b` is compared
//!    against the A-objects in that node's subtree, descending only into
//!    children whose ε-inflated MBR intersects `b`.
//!
//! The combination avoids both replication (PBSM's cost) and the double
//! index build (S3's cost). An optional thread-parallel assign+join path
//! exploits that each `b` is processed independently.

use crate::stats::{JoinResult, JoinStats};
use crate::{JoinObject, SpatialJoin};
use neurospatial_geom::{Aabb, Executor};
use neurospatial_rtree::{NodeId, RTree, RTreeObject, RTreeParams};
use std::time::Instant;

/// The TOUCH join.
#[derive(Debug, Clone, Copy)]
pub struct TouchJoin {
    /// Fan-out of the tree over dataset A.
    pub fanout: usize,
    /// Worker threads for the assign+join phase (1 = sequential).
    pub threads: usize,
}

impl Default for TouchJoin {
    fn default() -> Self {
        TouchJoin { fanout: 16, threads: 1 }
    }
}

impl TouchJoin {
    /// Parallel variant with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        TouchJoin { fanout: 16, threads: threads.max(1) }
    }
}

#[derive(Clone)]
struct Indexed<T> {
    obj: T,
    idx: u32,
}

impl<T: JoinObject> RTreeObject for Indexed<T> {
    fn aabb(&self) -> Aabb {
        self.obj.aabb()
    }
}

impl TouchJoin {
    /// Like [`SpatialJoin::join`] but also returns the assignment-depth
    /// report (used by the `experiments a2` ablation).
    pub fn join_with_report<T: JoinObject>(
        &self,
        a: &[T],
        b: &[T],
        eps: f64,
    ) -> (JoinResult, AssignmentReport) {
        self.join_impl(a, b, eps)
    }
}

impl SpatialJoin for TouchJoin {
    fn name(&self) -> &'static str {
        "touch"
    }

    fn join<T: JoinObject>(&self, a: &[T], b: &[T], eps: f64) -> JoinResult {
        self.join_impl(a, b, eps).0
    }
}

impl TouchJoin {
    fn join_impl<T: JoinObject>(
        &self,
        a: &[T],
        b: &[T],
        eps: f64,
    ) -> (JoinResult, AssignmentReport) {
        let t0 = Instant::now();
        let mut stats = JoinStats::default();
        if a.is_empty() || b.is_empty() {
            return (JoinResult::default(), AssignmentReport::default());
        }

        // --- Build: data-oriented partitioning of A ----------------------
        let wrapped: Vec<Indexed<T>> =
            a.iter().enumerate().map(|(i, o)| Indexed { obj: o.clone(), idx: i as u32 }).collect();
        let tree = RTree::bulk_load(wrapped, RTreeParams::with_max_entries(self.fanout));
        stats.build_ms = t0.elapsed().as_secs_f64() * 1e3;

        // --- Assign + Join ------------------------------------------------
        // Each B-object probes independently, so the work fans out over
        // the shared chunked executor (which also owns the `threads`
        // clamping and chunk-sizing semantics). Partials come back in
        // chunk order, keeping pair order deterministic.
        let t1 = Instant::now();
        let partials = Executor::new(self.threads)
            .map_chunks(b.len(), |range| probe_range(&tree, b, range, eps));
        let mut pairs = Vec::new();
        let mut probe_stats = ProbeStats::default();
        for (p, s) in partials {
            pairs.extend(p);
            probe_stats.merge(&s);
        }

        stats.filter_comparisons = probe_stats.filter;
        stats.refine_comparisons = probe_stats.refine;
        stats.filtered_out = probe_stats.filtered_out;
        // Memory: the tree on A plus one bucket slot per surviving B
        // object — no replication. (The streaming implementation below
        // never materialises buckets, so we charge the logical bucket
        // array: 4 bytes per B object, the paper's "equally small
        // footprint".)
        stats.aux_memory_bytes = tree.memory_bytes() as u64 + b.len() as u64 * 4;
        stats.results = pairs.len() as u64;
        stats.probe_ms = t1.elapsed().as_secs_f64() * 1e3;
        stats.total_ms = t0.elapsed().as_secs_f64() * 1e3;
        (JoinResult { pairs, stats }, probe_stats.assignment)
    }
}

/// Where B-objects were assigned in the tree of A — the paper's
/// data-oriented partitioning at work: most objects land deep (tight
/// subtrees), ambiguous ones stick near the root, hopeless ones are
/// filtered before any leaf comparison.
#[derive(Debug, Default, Clone)]
pub struct AssignmentReport {
    /// `histogram[d]` = number of B-objects assigned at depth `d`
    /// (0 = root).
    pub histogram: Vec<u64>,
    /// B-objects discarded by empty-space filtering.
    pub filtered_out: u64,
}

impl AssignmentReport {
    /// Mean assignment depth over non-filtered objects.
    pub fn mean_depth(&self) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self.histogram.iter().enumerate().map(|(d, &c)| d as u64 * c).sum();
        weighted as f64 / total as f64
    }

    fn record(&mut self, depth: usize) {
        if self.histogram.len() <= depth {
            self.histogram.resize(depth + 1, 0);
        }
        self.histogram[depth] += 1;
    }

    fn merge(&mut self, o: &AssignmentReport) {
        if self.histogram.len() < o.histogram.len() {
            self.histogram.resize(o.histogram.len(), 0);
        }
        for (d, c) in o.histogram.iter().enumerate() {
            self.histogram[d] += c;
        }
        self.filtered_out += o.filtered_out;
    }
}

#[derive(Default, Clone)]
struct ProbeStats {
    filter: u64,
    refine: u64,
    filtered_out: u64,
    assignment: AssignmentReport,
}

impl ProbeStats {
    fn merge(&mut self, o: &ProbeStats) {
        self.filter += o.filter;
        self.refine += o.refine;
        self.filtered_out += o.filtered_out;
        self.assignment.merge(&o.assignment);
    }
}

/// Assign-and-join for a contiguous range of B. Assignment and the join
/// of one object are fused: once `b`'s assignment node is found, the join
/// continues downward from that node — materialising per-node buckets and
/// walking them later would visit exactly the same nodes.
fn probe_range<T: JoinObject>(
    tree: &RTree<Indexed<T>>,
    b: &[T],
    range: std::ops::Range<usize>,
    eps: f64,
) -> (Vec<(u32, u32)>, ProbeStats) {
    let mut stats = ProbeStats::default();
    let mut pairs = Vec::new();
    let mut scratch: Vec<NodeId> = Vec::new();
    // Join-descent stack, hoisted out of the per-object loop: allocating
    // it afresh for every B-object made the probe phase's allocation
    // count scale with |B|.
    let mut stack: Vec<NodeId> = Vec::new();

    for j in range {
        let fb = b[j].aabb().inflate(eps);

        // --- Assignment descent -------------------------------------
        let mut node = tree.root_id();
        let mut depth = 0usize;
        stats.filter += 1;
        if !tree.node_mbr(node).intersects(&fb) {
            stats.filtered_out += 1;
            stats.assignment.filtered_out += 1;
            continue;
        }
        let assignment = loop {
            match tree.node_children(node) {
                None => break Some(node), // reached a leaf
                Some(children) => {
                    scratch.clear();
                    for &c in children {
                        stats.filter += 1;
                        if tree.node_mbr(c).intersects(&fb) {
                            scratch.push(c);
                        }
                    }
                    match scratch.len() {
                        0 => break None, // empty space: filtered out
                        1 => {
                            node = scratch[0];
                            depth += 1;
                        }
                        _ => break Some(node), // ambiguous: assign here
                    }
                }
            }
        };
        let Some(start) = assignment else {
            stats.filtered_out += 1;
            stats.assignment.filtered_out += 1;
            continue;
        };
        stats.assignment.record(depth);

        // --- Join within the assigned subtree ------------------------
        stack.clear();
        stack.push(start);
        while let Some(n) = stack.pop() {
            match tree.node_children(n) {
                Some(children) => {
                    for &c in children {
                        stats.filter += 1;
                        if tree.node_mbr(c).intersects(&fb) {
                            stack.push(c);
                        }
                    }
                }
                None => {
                    for x in tree.leaf_objects(n) {
                        stats.filter += 1;
                        if x.obj.aabb().inflate(eps).intersects(&b[j].aabb()) {
                            stats.refine += 1;
                            if x.obj.refine(&b[j], eps) {
                                pairs.push((x.idx, j as u32));
                            }
                        }
                    }
                }
            }
        }
    }
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NestedLoopJoin, PbsmJoin, PlaneSweepJoin, S3Join};
    use neurospatial_geom::Vec3;

    fn grid_boxes(n: usize, offset: f64) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 1.5 + offset;
                let y = ((i / 10) % 10) as f64 * 1.5;
                let z = (i / 100) as f64 * 1.5;
                Aabb::cube(Vec3::new(x, y, z), 0.5)
            })
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let a = grid_boxes(350, 0.0);
        let b = grid_boxes(350, 0.8);
        for eps in [0.0, 0.4, 1.5] {
            let t = TouchJoin::default().join(&a, &b, eps);
            let n = NestedLoopJoin.join(&a, &b, eps);
            assert_eq!(t.sorted_pairs(), n.sorted_pairs(), "eps={eps}");
            assert!(t.is_duplicate_free());
        }
    }

    #[test]
    fn all_five_algorithms_agree() {
        let a = grid_boxes(250, 0.0);
        let b = grid_boxes(250, 0.7);
        let eps = 0.25;
        let reference = NestedLoopJoin.join(&a, &b, eps).sorted_pairs();
        assert_eq!(TouchJoin::default().join(&a, &b, eps).sorted_pairs(), reference);
        assert_eq!(PlaneSweepJoin.join(&a, &b, eps).sorted_pairs(), reference);
        assert_eq!(PbsmJoin::default().join(&a, &b, eps).sorted_pairs(), reference);
        assert_eq!(S3Join::default().join(&a, &b, eps).sorted_pairs(), reference);
    }

    #[test]
    fn parallel_equals_sequential() {
        let a = grid_boxes(400, 0.0);
        let b = grid_boxes(400, 0.6);
        let seq = TouchJoin::default().join(&a, &b, 0.3);
        let par = TouchJoin::parallel(4).join(&a, &b, 0.3);
        assert_eq!(seq.sorted_pairs(), par.sorted_pairs());
        assert_eq!(seq.stats.results, par.stats.results);
        // Comparison counts are identical regardless of threading.
        assert_eq!(seq.stats.filter_comparisons, par.stats.filter_comparisons);
        assert_eq!(seq.stats.refine_comparisons, par.stats.refine_comparisons);
    }

    #[test]
    fn empty_space_filtering_kicks_in() {
        // B objects far from any A object must be filtered without any
        // leaf-level comparisons.
        let a = grid_boxes(200, 0.0);
        let b: Vec<Aabb> =
            (0..100).map(|i| Aabb::cube(Vec3::new(10_000.0 + i as f64, 0.0, 0.0), 0.5)).collect();
        let t = TouchJoin::default().join(&a, &b, 0.5);
        assert!(t.pairs.is_empty());
        assert_eq!(t.stats.filtered_out, 100);
        assert_eq!(t.stats.refine_comparisons, 0);
    }

    #[test]
    fn fewer_comparisons_than_nested_loop() {
        let a = grid_boxes(800, 0.0);
        let b = grid_boxes(800, 0.8);
        let t = TouchJoin::default().join(&a, &b, 0.2);
        let n = NestedLoopJoin.join(&a, &b, 0.2);
        assert!(
            t.stats.total_comparisons() * 5 < n.stats.total_comparisons(),
            "touch {} vs nested {}",
            t.stats.total_comparisons(),
            n.stats.total_comparisons()
        );
    }

    #[test]
    fn no_replication_memory_footprint() {
        let a = grid_boxes(600, 0.0);
        let b = grid_boxes(600, 0.5);
        let t = TouchJoin::default().join(&a, &b, 1.0);
        let p = PbsmJoin { objects_per_cell: 4, max_cells_per_axis: 64 }.join(&a, &b, 1.0);
        assert_eq!(t.sorted_pairs(), p.sorted_pairs());
        // TOUCH's auxiliary memory must not explode with ε the way
        // replication does; this dataset at ε=1 replicates heavily.
        assert!(t.stats.filtered_out < 600);
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Aabb> = vec![];
        let one = vec![Aabb::cube(Vec3::ZERO, 1.0)];
        assert!(TouchJoin::default().join(&e, &one, 1.0).pairs.is_empty());
        assert!(TouchJoin::default().join(&one, &e, 1.0).pairs.is_empty());
    }

    #[test]
    fn assignment_report_accounts_for_every_b_object() {
        let a = grid_boxes(500, 0.0);
        let b = grid_boxes(500, 0.8);
        let (r, report) = TouchJoin::default().join_with_report(&a, &b, 0.3);
        let assigned: u64 = report.histogram.iter().sum();
        assert_eq!(assigned + report.filtered_out, b.len() as u64);
        assert_eq!(report.filtered_out, r.stats.filtered_out);
        assert!(report.mean_depth() >= 0.0);
        // Small boxes on a grid descend below the root on average.
        assert!(report.mean_depth() > 0.5, "mean depth {}", report.mean_depth());
    }

    #[test]
    fn big_probes_assign_near_root() {
        // A B-object overlapping everything is ambiguous at the root.
        let a = grid_boxes(500, 0.0);
        let b = vec![Aabb::cube(Vec3::new(7.0, 7.0, 3.0), 100.0)];
        let (_, report) = TouchJoin::default().join_with_report(&a, &b, 0.0);
        assert_eq!(report.histogram.first().copied().unwrap_or(0), 1, "assigned at depth 0");
    }
}
