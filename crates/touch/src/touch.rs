//! TOUCH — hierarchical data-oriented partitioning join (Nobari et al.,
//! SIGMOD'13), as described in §4.1 of the demo paper:
//!
//! 1. **Build**: index dataset A with a packed (STR) tree. Because the
//!    partitioning is *data*-oriented, packing "opens up empty space
//!    between partitions" and no element is ever replicated.
//! 2. **Assign**: each object `b ∈ B` descends from the root; at every
//!    inner node the children whose ε-inflated MBR intersects `b` are
//!    counted. Zero children → `b` falls into empty space and is
//!    **filtered** out (it cannot join anything). Exactly one child →
//!    descend. Several children → `b` is assigned to the current node's
//!    bucket.
//! 3. **Join**: for every node bucket, each assigned `b` is compared
//!    against the A-objects in that node's subtree, descending only into
//!    children whose ε-inflated MBR intersects `b`.
//!
//! This module is the *cache-conscious* engine for that pipeline (the
//! pre-rebuild pointer-walking implementation survives as
//! [`crate::ClassicTouchJoin`]):
//!
//! * the A-tree is **frozen** after the STR build, so both the assignment
//!   descent and the per-bucket join scan the BFS-ordered
//!   structure-of-arrays lanes of [`neurospatial_rtree::soa`] instead of
//!   chasing arena pointers — and A-object AABBs are read from the lanes
//!   rather than recomputed per comparison;
//! * per-node buckets are materialised in a **counting-sorted CSR
//!   layout** (one pass to count, one prefix sum, one pass to place) with
//!   every bucket's B-object filter boxes stored in six contiguous `f64`
//!   lanes, so the join phase streams sequential memory;
//! * all transient state lives in a reusable [`JoinScratch`] (descent
//!   stacks, epoch marks, CSR arrays, pair buffers) — steady-state joins
//!   through a prebuilt [`TouchEngine`] perform **zero** heap
//!   allocations at one thread;
//! * both the assign and join phases fan out over
//!   [`neurospatial_geom::Executor`] workers, one scratch per worker,
//!   with a deterministic chunk-ordered merge;
//! * per bucket the engine picks a **hybrid strategy**: nested-loop lane
//!   scans for small buckets, a bucket-local sort+sweep along x above
//!   [`TouchJoin::sweep_min`]. The paper's critique of the *global*
//!   plane sweep (dense data crowds the sweep line) does not apply
//!   inside a bucket, where both sides are already spatially tight.

use crate::stats::{JoinResult, JoinStats, PhaseTimer};
use crate::{JoinObject, SpatialJoin};
use neurospatial_geom::{Aabb, Executor};
use neurospatial_rtree::{EpochMarks, FrozenView, RTree, RTreeObject, RTreeParams};
use std::ops::Range;

/// The TOUCH join (cache-conscious engine).
#[derive(Debug, Clone, Copy)]
pub struct TouchJoin {
    /// Fan-out of the tree over dataset A.
    pub fanout: usize,
    /// Worker threads for the assign+join phases (1 = sequential).
    pub threads: usize,
    /// Leaf buckets with at least this many B-objects switch from the
    /// nested lane scan to a bucket-local sort+sweep along x.
    pub sweep_min: usize,
}

impl Default for TouchJoin {
    fn default() -> Self {
        TouchJoin { fanout: 16, threads: 1, sweep_min: 32 }
    }
}

impl TouchJoin {
    /// Parallel variant with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        TouchJoin { threads: threads.max(1), ..TouchJoin::default() }
    }

    /// Replace the A-tree fan-out.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout.max(2);
        self
    }

    /// Replace the bucket sort+sweep threshold.
    pub fn with_sweep_min(mut self, sweep_min: usize) -> Self {
        self.sweep_min = sweep_min.max(2);
        self
    }

    /// Like [`SpatialJoin::join`] but also returns the assignment-depth
    /// report (used by the `experiments a2` ablation).
    pub fn join_with_report<T: JoinObject>(
        &self,
        a: &[T],
        b: &[T],
        eps: f64,
    ) -> (JoinResult, AssignmentReport) {
        let timer = PhaseTimer::start();
        if a.is_empty() || b.is_empty() {
            return (JoinResult::default(), AssignmentReport::default());
        }
        let engine = TouchEngine::build(a, self.fanout);
        let mut scratch = JoinScratch::new();
        let mut pairs = Vec::new();
        let mut stats =
            engine.join_into(b, eps, self.threads, self.sweep_min, &mut scratch, &mut pairs);
        stats.build_ms = engine.build_ms();
        timer.finish(&mut stats);
        (JoinResult { pairs, stats }, scratch.report.clone())
    }
}

impl SpatialJoin for TouchJoin {
    fn name(&self) -> &'static str {
        "touch"
    }

    fn join<T: JoinObject>(&self, a: &[T], b: &[T], eps: f64) -> JoinResult {
        self.join_with_report(a, b, eps).0
    }
}

#[derive(Clone)]
struct Indexed<T> {
    obj: T,
    idx: u32,
}

impl<T: JoinObject> RTreeObject for Indexed<T> {
    fn aabb(&self) -> Aabb {
        self.obj.aabb()
    }
}

/// A prebuilt TOUCH join engine over dataset A: the frozen STR tree plus
/// its build cost. Build once, then run [`join_into`](Self::join_into)
/// against any number of B datasets — with a warm [`JoinScratch`] and a
/// warm output buffer, steady-state single-threaded joins allocate
/// nothing.
pub struct TouchEngine<T: JoinObject> {
    tree: RTree<Indexed<T>>,
    build_ms: f64,
}

impl<T: JoinObject> TouchEngine<T> {
    /// STR-pack dataset A with the given fan-out and freeze the tree into
    /// its structure-of-arrays traversal layout.
    pub fn build(a: &[T], fanout: usize) -> Self {
        let timer = PhaseTimer::start();
        let wrapped: Vec<Indexed<T>> =
            a.iter().enumerate().map(|(i, o)| Indexed { obj: o.clone(), idx: i as u32 }).collect();
        let mut tree = RTree::bulk_load(wrapped, RTreeParams::with_max_entries(fanout.max(2)));
        tree.freeze();
        TouchEngine { build_ms: timer.total_ms(), tree }
    }

    /// Milliseconds spent building and freezing the A-tree.
    pub fn build_ms(&self) -> f64 {
        self.build_ms
    }

    /// Number of A-objects indexed.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Execute the assign+join phases against `b`, writing qualifying
    /// `(a_index, b_index)` pairs into `out` (cleared first). `threads`
    /// fans both phases out over [`Executor`] workers; `sweep_min` is the
    /// hybrid bucket threshold. The returned stats cover only this call:
    /// `build_ms` is 0 (the build is amortised across joins) and
    /// `allocations` counts this call's heap traffic — 0 in steady state
    /// at one thread.
    pub fn join_into(
        &self,
        b: &[T],
        eps: f64,
        threads: usize,
        sweep_min: usize,
        scratch: &mut JoinScratch,
        out: &mut Vec<(u32, u32)>,
    ) -> JoinStats {
        let mut timer = PhaseTimer::start();
        let mut stats = JoinStats::default();
        out.clear();
        scratch.reset_report();
        let Some(view) = self.tree.frozen() else {
            timer.finish(&mut stats);
            return stats; // empty A
        };
        if b.is_empty() {
            timer.finish(&mut stats);
            return stats;
        }

        let exec = Executor::new(threads);
        let (assign_workers, _) = exec.chunking(b.len());
        if scratch.workers.len() < assign_workers {
            scratch.workers.resize_with(assign_workers, WorkerScratch::default);
        }
        let JoinScratch {
            workers,
            counts,
            starts,
            cursor,
            items,
            lanes,
            lanes_fb,
            active,
            marks,
            report,
        } = scratch;
        for ws in workers[..assign_workers].iter_mut() {
            ws.reset();
        }

        // --- Assign: every B-object descends the SoA lanes --------------
        let root_mbr = self.tree.root_mbr();
        let tree = &self.tree;
        exec.for_each_chunk(b.len(), &mut workers[..assign_workers], |range, ws| {
            assign_range(view, &root_mbr, b, range, eps, ws);
        });

        // --- CSR buckets: count, prefix-sum, place -----------------------
        // `counts` is kept all-zero between joins (re-zeroed via `active`
        // below), so only touched nodes pay; `marks` makes first-touch
        // detection O(1) per item and the `active` list is sorted into
        // BFS id order so the join phase walks the arena sequentially.
        let n_nodes = view.node_count();
        if counts.len() < n_nodes {
            counts.resize(n_nodes, 0);
        }
        starts.resize(n_nodes + 1, 0);
        active.clear();
        marks.begin(n_nodes);
        let mut survivors = 0usize;
        for ws in workers[..assign_workers].iter() {
            survivors += ws.assigned.len();
            for &(node, _) in &ws.assigned {
                counts[node as usize] += 1;
                if marks.mark(node as usize) {
                    active.push(node);
                }
            }
        }
        active.sort_unstable();
        let mut acc = 0u32;
        starts[0] = 0;
        for n in 0..n_nodes {
            acc += counts[n];
            starts[n + 1] = acc;
        }
        items.resize(survivors, 0);
        lanes.resize(survivors);
        lanes_fb.resize(survivors);
        cursor.clear();
        cursor.extend_from_slice(&starts[..n_nodes]);
        for ws in workers[..assign_workers].iter() {
            for (&(node, j), bb) in ws.assigned.iter().zip(&ws.boxes) {
                let pos = cursor[node as usize] as usize;
                cursor[node as usize] += 1;
                items[pos] = j;
                lanes.set(pos, bb);
                lanes_fb.set(pos, &bb.inflate(eps));
            }
        }
        for &n in active.iter() {
            counts[n as usize] = 0; // restore the all-zero invariant
        }
        stats.assign_ms = timer.lap();

        // --- Join: one bucket at a time, hybrid per-bucket strategy ------
        // The join fan-out reuses the assign phase's worker scratches:
        // `chunking` caps workers at the item count and
        // `active.len() <= b.len()`, so the join never needs more
        // workers than the assign phase had (and `for_each_chunk`
        // asserts that invariant loudly if the chunking policy ever
        // changes). Merging below therefore covers every worker that
        // ran either phase.
        let buckets = BucketView { items, starts, lanes, lanes_fb };
        let active_r: &[u32] = active;
        exec.for_each_chunk(active_r.len(), &mut workers[..assign_workers], |range, ws| {
            join_buckets(view, tree, b, &buckets, &active_r[range], eps, sweep_min, ws);
        });

        // --- Deterministic merge, in worker (= chunk) order --------------
        for ws in workers[..assign_workers].iter_mut() {
            stats.filter_comparisons += ws.filter;
            stats.refine_comparisons += ws.refine;
            stats.filtered_out += ws.filtered_out;
            report.merge_worker(ws);
            out.extend_from_slice(&ws.pairs);
        }
        stats.join_ms = timer.lap();
        stats.probe_ms = stats.assign_ms + stats.join_ms;
        stats.results = out.len() as u64;
        // Memory: the frozen tree on A plus the CSR bucket arrays — one
        // slot and one six-lane box per surviving B object, no
        // replication.
        stats.aux_memory_bytes = self.tree.memory_bytes() as u64
            + (items.len() * 4 + survivors * 48) as u64
            + ((counts.len() + starts.len() + cursor.len() + active.len()) * 4) as u64;
        timer.finish(&mut stats);
        stats
    }
}

/// Reusable transient state for [`TouchEngine::join_into`]: per-worker
/// scratches (descent stacks, sort buffers, pair buffers, counters), the
/// CSR bucket arrays with their six filter-box lanes, epoch marks for
/// first-touch bucket detection, and the assignment report. Create one
/// (per thread pool) and reuse it across joins; after the first join has
/// grown every buffer, subsequent single-threaded joins allocate nothing.
#[derive(Debug, Default)]
pub struct JoinScratch {
    workers: Vec<WorkerScratch>,
    /// Per-SoA-node bucket sizes; all-zero between joins.
    counts: Vec<u32>,
    /// CSR prefix: node `n`'s bucket is `items[starts[n]..starts[n+1]]`.
    starts: Vec<u32>,
    /// Placement cursors (copy of `starts`, advanced during the place pass).
    cursor: Vec<u32>,
    /// Bucketed B indices, CSR order.
    items: Vec<u32>,
    /// The bucketed B objects' raw AABBs in six contiguous f64 lanes,
    /// parallel to `items` (the leaf-test side).
    lanes: BoxLanes,
    /// The same boxes ε-inflated (the node-pruning side): storing both
    /// keeps every filter comparison bit-identical to the classic path
    /// without re-inflating inside the hot scans.
    lanes_fb: BoxLanes,
    /// SoA ids with non-empty buckets, sorted ascending (BFS order).
    active: Vec<u32>,
    /// First-touch marks over SoA nodes (O(1) reset between joins).
    marks: EpochMarks,
    report: AssignmentReport,
}

impl JoinScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// The assignment-depth report of the most recent join.
    pub fn report(&self) -> &AssignmentReport {
        &self.report
    }

    fn reset_report(&mut self) {
        self.report.filtered_out = 0;
        self.report.histogram.iter_mut().for_each(|c| *c = 0);
    }
}

/// Six structure-of-arrays `f64` lanes holding AABBs — the B-side mirror
/// of the frozen tree's entry lanes.
#[derive(Debug, Default)]
struct BoxLanes {
    lo_x: Vec<f64>,
    lo_y: Vec<f64>,
    lo_z: Vec<f64>,
    hi_x: Vec<f64>,
    hi_y: Vec<f64>,
    hi_z: Vec<f64>,
}

impl BoxLanes {
    fn resize(&mut self, n: usize) {
        self.lo_x.resize(n, 0.0);
        self.lo_y.resize(n, 0.0);
        self.lo_z.resize(n, 0.0);
        self.hi_x.resize(n, 0.0);
        self.hi_y.resize(n, 0.0);
        self.hi_z.resize(n, 0.0);
    }

    #[inline]
    fn set(&mut self, i: usize, bb: &Aabb) {
        self.lo_x[i] = bb.lo.x;
        self.lo_y[i] = bb.lo.y;
        self.lo_z[i] = bb.lo.z;
        self.hi_x[i] = bb.hi.x;
        self.hi_y[i] = bb.hi.y;
        self.hi_z[i] = bb.hi.z;
    }

    #[inline]
    fn aabb(&self, i: usize) -> Aabb {
        Aabb::new(
            neurospatial_geom::Vec3::new(self.lo_x[i], self.lo_y[i], self.lo_z[i]),
            neurospatial_geom::Vec3::new(self.hi_x[i], self.hi_y[i], self.hi_z[i]),
        )
    }

    #[inline]
    fn lo_x(&self, i: usize) -> f64 {
        self.lo_x[i]
    }

    /// Closed-interval intersection of slot `i` against `q` — the exact
    /// comparison sequence [`Aabb::intersects`] performs.
    #[inline]
    fn intersects(&self, i: usize, q: &Aabb) -> bool {
        self.lo_x[i] <= q.hi.x
            && q.lo.x <= self.hi_x[i]
            && self.lo_y[i] <= q.hi.y
            && q.lo.y <= self.hi_y[i]
            && self.lo_z[i] <= q.hi.z
            && q.lo.z <= self.hi_z[i]
    }

    /// y/z-axis overlap of slot `i` against `q` (x handled by the sweep).
    #[inline]
    fn overlaps_yz(&self, i: usize, q: &Aabb) -> bool {
        self.lo_y[i] <= q.hi.y
            && q.lo.y <= self.hi_y[i]
            && self.lo_z[i] <= q.hi.z
            && q.lo.z <= self.hi_z[i]
    }
}

/// One worker's reusable state: assignment output, join descent stack,
/// bucket sort-order buffers, emitted pairs and statistics counters.
#[derive(Debug, Default)]
struct WorkerScratch {
    /// `(soa node, b index)` assignments produced by this worker's chunk.
    assigned: Vec<(u32, u32)>,
    /// Raw (un-inflated) B AABBs, parallel to `assigned`.
    boxes: Vec<Aabb>,
    /// Radix-descent working set: CSR slot lists, one contiguous run per
    /// (node, sub-bucket) reached.
    slots: Vec<u32>,
    /// Radix-descent frontier: `(soa node, lo, hi)` ranges into `slots`.
    frontier: Vec<(u32, u32, u32)>,
    /// A-entry lane indices sorted by lo_x (bucket sweep).
    sort_a: Vec<u32>,
    /// ε-inflated A boxes in `sort_a` order (bucket sweep).
    fa_cache: Vec<Aabb>,
    /// CSR slots sorted by lo_x (bucket sweep).
    sort_b: Vec<u32>,
    /// Emitted pairs, merged in worker order by the coordinator.
    pairs: Vec<(u32, u32)>,
    filter: u64,
    refine: u64,
    filtered_out: u64,
    /// Assignment-depth histogram.
    hist: Vec<u64>,
}

impl WorkerScratch {
    fn reset(&mut self) {
        self.assigned.clear();
        self.boxes.clear();
        self.pairs.clear();
        self.filter = 0;
        self.refine = 0;
        self.filtered_out = 0;
        self.hist.iter_mut().for_each(|c| *c = 0);
    }

    #[inline]
    fn record_depth(&mut self, depth: usize) {
        if self.hist.len() <= depth {
            self.hist.resize(depth + 1, 0);
        }
        self.hist[depth] += 1;
    }
}

/// Assignment descent for a contiguous range of B, over the SoA lanes.
/// The descent stops early once a second intersecting child is seen —
/// the object is ambiguous at this node no matter how many more children
/// match.
fn assign_range<T: JoinObject>(
    view: FrozenView<'_>,
    root_mbr: &Aabb,
    b: &[T],
    range: Range<usize>,
    eps: f64,
    ws: &mut WorkerScratch,
) {
    for j in range {
        let raw = b[j].aabb();
        let fb = raw.inflate(eps);
        ws.filter += 1;
        if !root_mbr.intersects(&fb) {
            ws.filtered_out += 1;
            continue;
        }
        let mut node = view.root();
        let mut depth = 0usize;
        let assignment = loop {
            if view.is_leaf(node) {
                break Some(node);
            }
            let (s, e) = view.entries(node);
            let mut hits = 0u32;
            let mut only = 0u32;
            for i in s..e {
                ws.filter += 1;
                if view.entry_intersects(i, &fb) {
                    hits += 1;
                    if hits == 1 {
                        only = view.entry_ref(i);
                    } else {
                        break; // ambiguous: no need to count further
                    }
                }
            }
            match hits {
                0 => break None, // empty space: filtered out
                1 => {
                    node = only;
                    depth += 1;
                }
                _ => break Some(node),
            }
        };
        match assignment {
            None => ws.filtered_out += 1,
            Some(n) => {
                ws.record_depth(depth);
                ws.assigned.push((n, j as u32));
                ws.boxes.push(raw);
            }
        }
    }
}

/// The CSR bucket arrays, bundled for the join workers: node `n`'s
/// bucket occupies CSR slots `starts[n]..starts[n+1]`; `lanes` holds the
/// raw B boxes, `lanes_fb` their ε-inflated filter boxes.
struct BucketView<'s> {
    items: &'s [u32],
    starts: &'s [u32],
    lanes: &'s BoxLanes,
    lanes_fb: &'s BoxLanes,
}

/// Join a contiguous run of active buckets. Every bucket descends the
/// assignment node's subtree as a whole ("radix" descent): at each inner
/// node the sub-bucket is scanned once per child against that child's
/// hoisted MBR — the exact (b, child) tests the classic per-object
/// descent performs, but each tree node is visited once per bucket
/// instead of once per object, and the scan streams the inflated-box
/// lanes. Sub-buckets reaching a leaf join against the leaf's entry
/// lanes: nested A-entry-major scans below `sweep_min`, a bucket-local
/// sort+sweep at or above it.
#[allow(clippy::too_many_arguments)]
fn join_buckets<T: JoinObject>(
    view: FrozenView<'_>,
    tree: &RTree<Indexed<T>>,
    b: &[T],
    buckets: &BucketView<'_>,
    active: &[u32],
    eps: f64,
    sweep_min: usize,
    ws: &mut WorkerScratch,
) {
    for &node in active {
        let bs = buckets.starts[node as usize];
        let be = buckets.starts[node as usize + 1];
        ws.slots.clear();
        ws.slots.extend(bs..be);
        ws.frontier.clear();
        ws.frontier.push((node, 0, be - bs));
        while let Some((n, lo, hi)) = ws.frontier.pop() {
            if view.is_leaf(n) {
                join_leaf(view, tree, b, buckets, n, lo as usize..hi as usize, eps, sweep_min, ws);
                continue;
            }
            let (s, e) = view.entries(n);
            for i in s..e {
                let child_mbr = view.entry_aabb(i);
                let child = view.entry_ref(i);
                let start = ws.slots.len() as u32;
                for k in lo..hi {
                    let t = ws.slots[k as usize] as usize;
                    ws.filter += 1;
                    if buckets.lanes_fb.intersects(t, &child_mbr) {
                        ws.slots.push(t as u32);
                    }
                }
                if ws.slots.len() as u32 > start {
                    ws.frontier.push((child, start, ws.slots.len() as u32));
                }
            }
        }
    }
}

/// Join the sub-bucket `ws.slots[range]` against leaf `n`'s entries.
#[allow(clippy::too_many_arguments)]
fn join_leaf<T: JoinObject>(
    view: FrozenView<'_>,
    tree: &RTree<Indexed<T>>,
    b: &[T],
    buckets: &BucketView<'_>,
    n: u32,
    range: Range<usize>,
    eps: f64,
    sweep_min: usize,
    ws: &mut WorkerScratch,
) {
    let (es, ee) = view.entries(n);
    let leaf = tree.leaf_objects(view.orig(n));
    if range.len() >= sweep_min && ee - es >= 2 {
        sweep_leaf(view, leaf, b, buckets, range, es..ee, eps, ws);
        return;
    }
    // Nested lane scan, A-entry major: the ε-inflation is hoisted per
    // entry (matching the classic leaf test bit for bit) and the
    // sub-bucket's slots gather from the six raw lanes.
    for i in es..ee {
        let fa = view.entry_aabb(i).inflate(eps);
        let x = &leaf[view.entry_ref(i) as usize];
        for k in range.clone() {
            let t = ws.slots[k] as usize;
            ws.filter += 1;
            if buckets.lanes.intersects(t, &fa) {
                ws.refine += 1;
                let j = buckets.items[t];
                if x.obj.refine(&b[j as usize], eps) {
                    ws.pairs.push((x.idx, j));
                }
            }
        }
    }
}

/// Bucket-local sort+sweep along x between a leaf's A entries (ε-inflated
/// side) and a sub-bucket's raw B boxes. Both sides are sorted by their
/// x lower bound; the two-pointer merge tests each x-overlapping pair
/// exactly once, with only the y/z axes left to check. Pair decisions are
/// bit-identical to the nested scan: the x comparisons are exactly
/// `fa.lo.x <= b.hi.x && b.lo.x <= fa.hi.x` with `fa` the A-side
/// inflated box.
#[allow(clippy::too_many_arguments)]
fn sweep_leaf<T: JoinObject>(
    view: FrozenView<'_>,
    leaf: &[Indexed<T>],
    b: &[T],
    buckets: &BucketView<'_>,
    range: Range<usize>,
    entries: Range<usize>,
    eps: f64,
    ws: &mut WorkerScratch,
) {
    let lanes = buckets.lanes;
    ws.sort_a.clear();
    ws.sort_a.extend(entries.clone().map(|i| i as u32));
    // Sorting by the raw lane lo_x sorts the inflated keys too:
    // subtracting the same ε is monotone (rounding included).
    ws.sort_a.sort_unstable_by(|&p, &q| {
        view.entry_lo_x(p as usize).total_cmp(&view.entry_lo_x(q as usize))
    });
    // ε-inflated A boxes in sweep order, computed once per entry: both
    // merge branches read them per comparison.
    ws.fa_cache.clear();
    ws.fa_cache.extend(ws.sort_a.iter().map(|&i| view.entry_aabb(i as usize).inflate(eps)));
    ws.sort_b.clear();
    for k in range {
        ws.sort_b.push(ws.slots[k]);
    }
    ws.sort_b.sort_unstable_by(|&p, &q| lanes.lo_x(p as usize).total_cmp(&lanes.lo_x(q as usize)));

    let (na, nb) = (ws.sort_a.len(), ws.sort_b.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < na && ib < nb {
        let ea = ws.sort_a[ia] as usize;
        let fa = ws.fa_cache[ia];
        let tb = ws.sort_b[ib] as usize;
        if fa.lo.x <= lanes.lo_x(tb) {
            // A-entry starts first: pair it with every bucket box whose
            // x interval starts inside [fa.lo.x, fa.hi.x].
            let x = &leaf[view.entry_ref(ea) as usize];
            for k in ib..nb {
                let t = ws.sort_b[k] as usize;
                if lanes.lo_x(t) > fa.hi.x {
                    break;
                }
                ws.filter += 1;
                if lanes.overlaps_yz(t, &fa) {
                    ws.refine += 1;
                    let j = buckets.items[t];
                    if x.obj.refine(&b[j as usize], eps) {
                        ws.pairs.push((x.idx, j));
                    }
                }
            }
            ia += 1;
        } else {
            let raw = lanes.aabb(tb);
            let j = buckets.items[tb];
            for k in ia..na {
                let fa2 = ws.fa_cache[k];
                if fa2.lo.x > raw.hi.x {
                    break;
                }
                ws.filter += 1;
                if fa2.lo.y <= raw.hi.y
                    && raw.lo.y <= fa2.hi.y
                    && fa2.lo.z <= raw.hi.z
                    && raw.lo.z <= fa2.hi.z
                {
                    ws.refine += 1;
                    let x = &leaf[view.entry_ref(ws.sort_a[k] as usize) as usize];
                    if x.obj.refine(&b[j as usize], eps) {
                        ws.pairs.push((x.idx, j));
                    }
                }
            }
            ib += 1;
        }
    }
}

/// Where B-objects were assigned in the tree of A — the paper's
/// data-oriented partitioning at work: most objects land deep (tight
/// subtrees), ambiguous ones stick near the root, hopeless ones are
/// filtered before any leaf comparison.
#[derive(Debug, Default, Clone)]
pub struct AssignmentReport {
    /// `histogram[d]` = number of B-objects assigned at depth `d`
    /// (0 = root).
    pub histogram: Vec<u64>,
    /// B-objects discarded by empty-space filtering.
    pub filtered_out: u64,
}

impl AssignmentReport {
    /// Mean assignment depth over non-filtered objects.
    pub fn mean_depth(&self) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self.histogram.iter().enumerate().map(|(d, &c)| d as u64 * c).sum();
        weighted as f64 / total as f64
    }

    pub(crate) fn record(&mut self, depth: usize) {
        if self.histogram.len() <= depth {
            self.histogram.resize(depth + 1, 0);
        }
        self.histogram[depth] += 1;
    }

    pub(crate) fn merge(&mut self, o: &AssignmentReport) {
        if self.histogram.len() < o.histogram.len() {
            self.histogram.resize(o.histogram.len(), 0);
        }
        for (d, c) in o.histogram.iter().enumerate() {
            self.histogram[d] += c;
        }
        self.filtered_out += o.filtered_out;
    }

    fn merge_worker(&mut self, ws: &WorkerScratch) {
        if self.histogram.len() < ws.hist.len() {
            self.histogram.resize(ws.hist.len(), 0);
        }
        for (d, c) in ws.hist.iter().enumerate() {
            self.histogram[d] += c;
        }
        self.filtered_out += ws.filtered_out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassicTouchJoin, NestedLoopJoin, PbsmJoin, PlaneSweepJoin, S3Join};
    use neurospatial_geom::Vec3;

    fn grid_boxes(n: usize, offset: f64) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 1.5 + offset;
                let y = ((i / 10) % 10) as f64 * 1.5;
                let z = (i / 100) as f64 * 1.5;
                Aabb::cube(Vec3::new(x, y, z), 0.5)
            })
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let a = grid_boxes(350, 0.0);
        let b = grid_boxes(350, 0.8);
        for eps in [0.0, 0.4, 1.5] {
            let t = TouchJoin::default().join(&a, &b, eps);
            let n = NestedLoopJoin.join(&a, &b, eps);
            assert_eq!(t.sorted_pairs(), n.sorted_pairs(), "eps={eps}");
            assert!(t.is_duplicate_free());
        }
    }

    #[test]
    fn all_six_algorithms_agree() {
        let a = grid_boxes(250, 0.0);
        let b = grid_boxes(250, 0.7);
        let eps = 0.25;
        let reference = NestedLoopJoin.join(&a, &b, eps).sorted_pairs();
        assert_eq!(TouchJoin::default().join(&a, &b, eps).sorted_pairs(), reference);
        assert_eq!(ClassicTouchJoin::default().join(&a, &b, eps).sorted_pairs(), reference);
        assert_eq!(PlaneSweepJoin.join(&a, &b, eps).sorted_pairs(), reference);
        assert_eq!(PbsmJoin::default().join(&a, &b, eps).sorted_pairs(), reference);
        assert_eq!(S3Join::default().join(&a, &b, eps).sorted_pairs(), reference);
    }

    #[test]
    fn parallel_equals_sequential() {
        let a = grid_boxes(400, 0.0);
        let b = grid_boxes(400, 0.6);
        let seq = TouchJoin::default().join(&a, &b, 0.3);
        let par = TouchJoin::parallel(4).join(&a, &b, 0.3);
        assert_eq!(seq.sorted_pairs(), par.sorted_pairs());
        assert_eq!(seq.stats.results, par.stats.results);
        // Comparison counts are identical regardless of threading.
        assert_eq!(seq.stats.filter_comparisons, par.stats.filter_comparisons);
        assert_eq!(seq.stats.refine_comparisons, par.stats.refine_comparisons);
    }

    #[test]
    fn hybrid_sweep_agrees_with_nested_scan() {
        // Dense overlapping clouds produce big leaf buckets; force the
        // sweep on (threshold 2) and off (usize::MAX) and compare.
        let a = grid_boxes(600, 0.0);
        let b = grid_boxes(600, 0.4);
        for eps in [0.0, 0.7, 2.5] {
            let swept = TouchJoin::default().with_sweep_min(2).join(&a, &b, eps);
            let nested =
                TouchJoin { sweep_min: usize::MAX, ..TouchJoin::default() }.join(&a, &b, eps);
            assert_eq!(swept.sorted_pairs(), nested.sorted_pairs(), "eps={eps}");
            assert_eq!(swept.stats.results, nested.stats.results);
            // The sweep exists to do *fewer* comparisons on big buckets.
            assert!(
                swept.stats.total_comparisons() <= nested.stats.total_comparisons(),
                "sweep {} vs nested {}",
                swept.stats.total_comparisons(),
                nested.stats.total_comparisons()
            );
        }
    }

    #[test]
    fn engine_scratch_reuse_is_stable() {
        // One engine, one scratch, many joins (varying B and ε): every
        // run must reproduce the from-scratch result exactly.
        let a = grid_boxes(500, 0.0);
        let engine = TouchEngine::build(&a, 16);
        let mut scratch = JoinScratch::new();
        let mut out = Vec::new();
        for round in 0..4 {
            let b = grid_boxes(300 + round * 50, 0.3 + round as f64 * 0.2);
            let eps = round as f64 * 0.4;
            let stats = engine.join_into(&b, eps, 1, 32, &mut scratch, &mut out);
            let reference = TouchJoin::default().join(&a, &b, eps);
            let mut got = out.clone();
            got.sort_unstable();
            assert_eq!(got, reference.sorted_pairs(), "round {round}");
            assert_eq!(stats.results, reference.stats.results);
            let assigned: u64 = scratch.report().histogram.iter().sum();
            assert_eq!(assigned + scratch.report().filtered_out, b.len() as u64);
        }
    }

    #[test]
    fn engine_threads_agree_with_sequential() {
        let a = grid_boxes(500, 0.0);
        let b = grid_boxes(450, 0.5);
        let engine = TouchEngine::build(&a, 16);
        let mut scratch = JoinScratch::new();
        let mut out = Vec::new();
        let seq = engine.join_into(&b, 0.6, 1, 32, &mut scratch, &mut out);
        let mut want = out.clone();
        want.sort_unstable();
        for threads in [2, 3, 8] {
            let stats = engine.join_into(&b, 0.6, threads, 32, &mut scratch, &mut out);
            let mut got = out.clone();
            got.sort_unstable();
            assert_eq!(got, want, "threads={threads}");
            assert_eq!(stats.filter_comparisons, seq.filter_comparisons);
            assert_eq!(stats.refine_comparisons, seq.refine_comparisons);
        }
    }

    #[test]
    fn empty_space_filtering_kicks_in() {
        // B objects far from any A object must be filtered without any
        // leaf-level comparisons.
        let a = grid_boxes(200, 0.0);
        let b: Vec<Aabb> =
            (0..100).map(|i| Aabb::cube(Vec3::new(10_000.0 + i as f64, 0.0, 0.0), 0.5)).collect();
        let t = TouchJoin::default().join(&a, &b, 0.5);
        assert!(t.pairs.is_empty());
        assert_eq!(t.stats.filtered_out, 100);
        assert_eq!(t.stats.refine_comparisons, 0);
    }

    #[test]
    fn fewer_comparisons_than_nested_loop() {
        let a = grid_boxes(800, 0.0);
        let b = grid_boxes(800, 0.8);
        let t = TouchJoin::default().join(&a, &b, 0.2);
        let n = NestedLoopJoin.join(&a, &b, 0.2);
        assert!(
            t.stats.total_comparisons() * 5 < n.stats.total_comparisons(),
            "touch {} vs nested {}",
            t.stats.total_comparisons(),
            n.stats.total_comparisons()
        );
    }

    #[test]
    fn no_replication_memory_footprint() {
        let a = grid_boxes(600, 0.0);
        let b = grid_boxes(600, 0.5);
        let t = TouchJoin::default().join(&a, &b, 1.0);
        let p = PbsmJoin { objects_per_cell: 4, max_cells_per_axis: 64 }.join(&a, &b, 1.0);
        assert_eq!(t.sorted_pairs(), p.sorted_pairs());
        // TOUCH's auxiliary memory must not explode with ε the way
        // replication does; this dataset at ε=1 replicates heavily.
        assert!(t.stats.filtered_out < 600);
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Aabb> = vec![];
        let one = vec![Aabb::cube(Vec3::ZERO, 1.0)];
        assert!(TouchJoin::default().join(&e, &one, 1.0).pairs.is_empty());
        assert!(TouchJoin::default().join(&one, &e, 1.0).pairs.is_empty());
        let engine = TouchEngine::build(&e, 16);
        let mut out = vec![(1u32, 1u32)];
        let stats = engine.join_into(&one, 1.0, 2, 32, &mut JoinScratch::new(), &mut out);
        assert!(out.is_empty(), "join_into clears the output buffer");
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn assignment_report_accounts_for_every_b_object() {
        let a = grid_boxes(500, 0.0);
        let b = grid_boxes(500, 0.8);
        let (r, report) = TouchJoin::default().join_with_report(&a, &b, 0.3);
        let assigned: u64 = report.histogram.iter().sum();
        assert_eq!(assigned + report.filtered_out, b.len() as u64);
        assert_eq!(report.filtered_out, r.stats.filtered_out);
        assert!(report.mean_depth() >= 0.0);
        // Small boxes on a grid descend below the root on average.
        assert!(report.mean_depth() > 0.5, "mean depth {}", report.mean_depth());
    }

    #[test]
    fn big_probes_assign_near_root() {
        // A B-object overlapping everything is ambiguous at the root.
        let a = grid_boxes(500, 0.0);
        let b = vec![Aabb::cube(Vec3::new(7.0, 7.0, 3.0), 100.0)];
        let (_, report) = TouchJoin::default().join_with_report(&a, &b, 0.0);
        assert_eq!(report.histogram.first().copied().unwrap_or(0), 1, "assigned at depth 0");
    }

    #[test]
    fn phase_times_partition_the_probe() {
        let a = grid_boxes(400, 0.0);
        let b = grid_boxes(400, 0.6);
        let r = TouchJoin::default().join(&a, &b, 0.5);
        assert!(r.stats.assign_ms >= 0.0 && r.stats.join_ms >= 0.0);
        assert!((r.stats.probe_ms - (r.stats.assign_ms + r.stats.join_ms)).abs() < 1e-9);
        assert!(r.stats.total_ms >= r.stats.probe_ms);
    }

    #[test]
    fn matches_classic_exactly() {
        // The rebuilt engine and the pointer-walking classic must agree
        // bit for bit on the pair relation, at every fanout.
        let a = grid_boxes(700, 0.0);
        let b = grid_boxes(650, 0.9);
        for fanout in [4usize, 16, 64] {
            for eps in [0.0, 0.8] {
                let new = TouchJoin::default().with_fanout(fanout).join(&a, &b, eps);
                let old = ClassicTouchJoin { fanout, threads: 1 }.join(&a, &b, eps);
                assert_eq!(new.sorted_pairs(), old.sorted_pairs(), "fanout={fanout} eps={eps}");
            }
        }
    }
}
