//! # neurospatial-touch
//!
//! In-memory spatial *distance* joins for synapse placement (§4 of the
//! demo paper; full algorithm in Nobari et al., "TOUCH: In-Memory Spatial
//! Join by Hierarchical Data-Oriented Partitioning", SIGMOD'13).
//!
//! Placing synapses in a brain model means finding all pairs of neuron
//! branches from two populations within distance ε of each other — a
//! distance join over two *unindexed* in-memory datasets. This crate
//! provides TOUCH and every baseline the demo lets the audience race it
//! against:
//!
//! | Algorithm | Strategy | Demo claim |
//! |-----------|----------|------------|
//! | [`NestedLoopJoin`] | all pairs | O(n²), the naive in-memory approach |
//! | [`PlaneSweepJoin`] | sort + sweep on x | degrades when many elements sit on the sweep line |
//! | [`PbsmJoin`] | uniform grid, *space*-oriented, replicates | TOUCH is ~1 order of magnitude faster |
//! | [`S3Join`] | synchronized R-Tree traversal, indexes both sides | TOUCH is ~2 orders faster at equal memory |
//! | [`ClassicTouchJoin`] | TOUCH over the pointer arena, fused streaming probe | the pre-rebuild engine, kept for racing |
//! | [`TouchJoin`] | hierarchical *data*-oriented partitioning, no replication; CSR buckets + SoA lanes + hybrid bucket sweep | — |
//!
//! For repeated joins against a fixed dataset A, build a [`TouchEngine`]
//! once and drive it with a reusable [`JoinScratch`] — steady-state
//! single-threaded joins allocate nothing.
//!
//! All algorithms share the same filter/refine contract and therefore
//! return identical pair sets (property-tested): the *filter* is an
//! ε-inflated AABB intersection test, the *refine* step is the exact
//! geometric predicate of [`JoinObject::refine`].
//!
//! ```
//! use neurospatial_touch::{JoinObject, NestedLoopJoin, SpatialJoin, TouchJoin};
//! use neurospatial_geom::{Aabb, Vec3};
//!
//! let a: Vec<Aabb> = (0..50).map(|i| Aabb::cube(Vec3::new(i as f64, 0.0, 0.0), 0.4)).collect();
//! let b: Vec<Aabb> = (0..50).map(|i| Aabb::cube(Vec3::new(i as f64, 0.7, 0.0), 0.4)).collect();
//! let fast = TouchJoin::default().join(&a, &b, 0.1);
//! let slow = NestedLoopJoin.join(&a, &b, 0.1);
//! assert_eq!(fast.sorted_pairs(), slow.sorted_pairs());
//! assert!(fast.stats.refine_comparisons <= slow.stats.refine_comparisons);
//! ```

pub mod classic;
pub mod nested;
pub mod pbsm;
pub mod stats;
pub mod sweep;
pub mod touch;
pub mod tree2;

pub use classic::ClassicTouchJoin;
pub use nested::NestedLoopJoin;
pub use pbsm::PbsmJoin;
pub use stats::{register_allocation_probe, JoinResult, JoinStats, PhaseTimer};
pub use sweep::PlaneSweepJoin;
pub use touch::{AssignmentReport, JoinScratch, TouchEngine, TouchJoin};
pub use tree2::S3Join;

use neurospatial_geom::{Aabb, Segment};
use neurospatial_model::NeuronSegment;

/// An object joinable by the algorithms in this crate.
///
/// `refine` must be symmetric and must imply the AABB filter: if
/// `a.refine(b, eps)` then `a.aabb().inflate(eps)` intersects `b.aabb()`.
pub trait JoinObject: Clone + Send + Sync {
    fn aabb(&self) -> Aabb;

    /// Exact predicate: are the two geometries within distance `eps`?
    fn refine(&self, other: &Self, eps: f64) -> bool;
}

impl JoinObject for Aabb {
    fn aabb(&self) -> Aabb {
        *self
    }

    fn refine(&self, other: &Self, eps: f64) -> bool {
        self.min_distance_sq(other) <= eps * eps
    }
}

impl JoinObject for Segment {
    fn aabb(&self) -> Aabb {
        Segment::aabb(self)
    }

    fn refine(&self, other: &Self, eps: f64) -> bool {
        self.within_distance(other, eps)
    }
}

impl JoinObject for NeuronSegment {
    fn aabb(&self) -> Aabb {
        NeuronSegment::aabb(self)
    }

    /// The synapse-candidate predicate: capsule surfaces within `eps`.
    fn refine(&self, other: &Self, eps: f64) -> bool {
        self.geom.within_distance(&other.geom, eps)
    }
}

/// A two-way spatial distance join: all pairs `(i, j)` with
/// `a[i].refine(b[j], eps)`.
pub trait SpatialJoin {
    /// Human-readable algorithm name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Execute the join.
    fn join<T: JoinObject>(&self, a: &[T], b: &[T], eps: f64) -> JoinResult;
}
