//! S3 — synchronized R-Tree traversal (after Brinkhoff et al.'s R-Tree
//! join): bulk-load an STR tree on *each* input, then recursively join
//! node pairs whose MBRs (A-side ε-inflated) intersect.
//!
//! The paper's positioning: approaches that "first need to index the
//! dataset in a costly step before the spatial join can be performed"
//! (§4) — S3 pays two full index builds before any result is produced,
//! which is exactly what E5's build/probe breakdown shows.

use crate::stats::{JoinResult, JoinStats, PhaseTimer};
use crate::{JoinObject, SpatialJoin};
use neurospatial_geom::Aabb;
use neurospatial_rtree::{RTree, RTreeObject, RTreeParams};

/// Synchronized traversal of two STR-packed R-Trees.
#[derive(Debug, Clone, Copy)]
pub struct S3Join {
    /// Fan-out of both trees.
    pub fanout: usize,
}

impl Default for S3Join {
    fn default() -> Self {
        S3Join { fanout: 16 }
    }
}

/// Indexed wrapper so leaves carry original positions.
#[derive(Clone)]
struct Indexed<T> {
    obj: T,
    idx: u32,
}

impl<T: JoinObject> RTreeObject for Indexed<T> {
    fn aabb(&self) -> Aabb {
        self.obj.aabb()
    }
}

impl SpatialJoin for S3Join {
    fn name(&self) -> &'static str {
        "s3"
    }

    fn join<T: JoinObject>(&self, a: &[T], b: &[T], eps: f64) -> JoinResult {
        let mut timer = PhaseTimer::start();
        let mut stats = JoinStats::default();
        if a.is_empty() || b.is_empty() {
            return JoinResult::default();
        }

        let wrap = |s: &[T]| -> Vec<Indexed<T>> {
            s.iter().enumerate().map(|(i, o)| Indexed { obj: o.clone(), idx: i as u32 }).collect()
        };
        let ta = RTree::bulk_load(wrap(a), RTreeParams::with_max_entries(self.fanout));
        let tb = RTree::bulk_load(wrap(b), RTreeParams::with_max_entries(self.fanout));
        stats.aux_memory_bytes = (ta.memory_bytes() + tb.memory_bytes()) as u64;
        stats.build_ms = timer.lap();

        let mut pairs = Vec::new();
        // Explicit stack of node-id pairs.
        let mut stack = vec![(ta.root_id(), tb.root_id())];
        while let Some((na, nb)) = stack.pop() {
            stats.filter_comparisons += 1;
            if !ta.node_mbr(na).inflate(eps).intersects(&tb.node_mbr(nb)) {
                continue;
            }
            match (ta.node_children(na), tb.node_children(nb)) {
                (None, None) => {
                    // Leaf × leaf: all-pairs with filter + refine.
                    for x in ta.leaf_objects(na) {
                        let fx = x.obj.aabb().inflate(eps);
                        for y in tb.leaf_objects(nb) {
                            stats.filter_comparisons += 1;
                            if fx.intersects(&y.obj.aabb()) {
                                stats.refine_comparisons += 1;
                                if x.obj.refine(&y.obj, eps) {
                                    pairs.push((x.idx, y.idx));
                                }
                            }
                        }
                    }
                }
                (Some(ca), None) => {
                    for &c in ca {
                        stack.push((c, nb));
                    }
                }
                (None, Some(cb)) => {
                    for &c in cb {
                        stack.push((na, c));
                    }
                }
                (Some(ca), Some(cb)) => {
                    // Descend both: pairwise child combination.
                    for &x in ca {
                        for &y in cb {
                            stack.push((x, y));
                        }
                    }
                }
            }
        }

        stats.results = pairs.len() as u64;
        stats.probe_ms = timer.lap();
        stats.join_ms = stats.probe_ms; // synchronized traversal: join only
        timer.finish(&mut stats);
        JoinResult { pairs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;
    use neurospatial_geom::Vec3;

    fn grid_boxes(n: usize, offset: f64) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 1.5 + offset;
                let y = ((i / 10) % 10) as f64 * 1.5;
                let z = (i / 100) as f64 * 1.5;
                Aabb::cube(Vec3::new(x, y, z), 0.5)
            })
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let a = grid_boxes(350, 0.0);
        let b = grid_boxes(350, 0.8);
        for eps in [0.0, 0.4, 1.5] {
            let s = S3Join::default().join(&a, &b, eps);
            let n = NestedLoopJoin.join(&a, &b, eps);
            assert_eq!(s.sorted_pairs(), n.sorted_pairs(), "eps={eps}");
            assert!(s.is_duplicate_free());
        }
    }

    #[test]
    fn builds_cost_memory() {
        let a = grid_boxes(500, 0.0);
        let b = grid_boxes(500, 0.5);
        let s = S3Join::default().join(&a, &b, 0.2);
        assert!(s.stats.aux_memory_bytes > 0);
        assert!(s.stats.build_ms >= 0.0);
    }

    #[test]
    fn prunes_disjoint_regions() {
        // Two far-apart datasets: traversal should stop at the roots.
        let a = grid_boxes(200, 0.0);
        let b = grid_boxes(200, 100_000.0);
        let s = S3Join::default().join(&a, &b, 1.0);
        assert!(s.pairs.is_empty());
        assert_eq!(s.stats.filter_comparisons, 1, "root pair only");
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Aabb> = vec![];
        let one = vec![Aabb::cube(Vec3::ZERO, 1.0)];
        assert!(S3Join::default().join(&e, &one, 1.0).pairs.is_empty());
        assert!(S3Join::default().join(&one, &e, 1.0).pairs.is_empty());
    }
}
