//! Property tests for SCOUT's reconstruction and tracking invariants.

use neurospatial_geom::{Aabb, Segment, Vec3};
use neurospatial_model::NeuronSegment;
use neurospatial_scout::{CandidateTracker, Skeleton, SkeletonParams};
use proptest::prelude::*;

/// Random chains of connected segments plus isolated segments.
fn segment_soup() -> impl Strategy<Value = Vec<NeuronSegment>> {
    (prop::collection::vec(
        // (start, steps) per chain
        (
            (-40.0..40.0, -40.0..40.0, -40.0..40.0),
            prop::collection::vec((-4.0..4.0, -4.0..4.0, -4.0..4.0), 1..12),
        ),
        1..6,
    ),)
        .prop_map(|(chains,)| {
            let mut out = Vec::new();
            let mut id = 0u64;
            for (ci, ((x, y, z), steps)) in chains.into_iter().enumerate() {
                let mut cur = Vec3::new(x, y, z);
                for (si, (dx, dy, dz)) in steps.into_iter().enumerate() {
                    let step = Vec3::new(dx, dy, dz);
                    // Skip vanishing steps to keep segments non-degenerate.
                    let next =
                        cur + if step.norm() < 0.5 { Vec3::new(1.0, 0.0, 0.0) } else { step };
                    out.push(NeuronSegment {
                        id,
                        neuron: ci as u32,
                        section: 0,
                        index_on_section: si as u32,
                        geom: Segment::new(cur, next, 0.2),
                    });
                    id += 1;
                    cur = next;
                }
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn skeleton_is_a_partition(soup in segment_soup(), half in 5.0..60.0f64) {
        let q = Aabb::cube(Vec3::ZERO, half);
        let result: Vec<&NeuronSegment> =
            soup.iter().filter(|s| s.aabb().intersects(&q)).collect();
        let sk = Skeleton::reconstruct(&result, &q, SkeletonParams::default());
        // Every result segment appears in exactly one structure.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for s in &sk.structures {
            for &i in &s.segment_ids {
                prop_assert!(seen.insert(i), "segment {i} in two structures");
                total += 1;
            }
        }
        prop_assert_eq!(total, result.len());
        // Every claimed member really was in the result.
        let result_ids: std::collections::HashSet<u64> = result.iter().map(|s| s.id).collect();
        prop_assert!(seen.is_subset(&result_ids));
    }

    #[test]
    fn chains_never_split(soup in segment_soup()) {
        // A query covering everything: consecutive segments of one chain
        // share an endpoint exactly, so they must be in one structure.
        let bounds = soup.iter().fold(Aabb::EMPTY, |a, s| a.union(&s.aabb()));
        if bounds.is_empty() {
            return Ok(());
        }
        let q = bounds.inflate(1.0);
        let result: Vec<&NeuronSegment> = soup.iter().collect();
        let sk = Skeleton::reconstruct(&result, &q, SkeletonParams::default());
        let mut owner = std::collections::HashMap::new();
        for (si, s) in sk.structures.iter().enumerate() {
            for &i in &s.segment_ids {
                owner.insert(i, si);
            }
        }
        for w in soup.windows(2) {
            if w[0].neuron == w[1].neuron && w[0].index_on_section + 1 == w[1].index_on_section {
                prop_assert_eq!(owner[&w[0].id], owner[&w[1].id], "chain split");
            }
        }
    }

    #[test]
    fn exit_edges_point_outward(soup in segment_soup(), half in 2.0..30.0f64) {
        let q = Aabb::cube(Vec3::ZERO, half);
        let result: Vec<&NeuronSegment> =
            soup.iter().filter(|s| s.aabb().intersects(&q)).collect();
        let sk = Skeleton::reconstruct(&result, &q, SkeletonParams::default());
        for s in &sk.structures {
            for e in &s.exits {
                // The exit point is outside (or on the boundary of) q.
                prop_assert!(
                    !q.contains_point(e.exit_point - e.direction * 1e-9)
                        || !q.contains_point(e.exit_point),
                    "exit point {} not at the boundary", e.exit_point
                );
                // Direction is unit length.
                prop_assert!((e.direction.norm() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn candidate_counts_bounded_by_exiting_structures(
        soup in segment_soup(),
        halves in prop::collection::vec(5.0..40.0f64, 1..6),
    ) {
        let mut tracker = CandidateTracker::new();
        for (i, half) in halves.iter().enumerate() {
            // A sliding window sequence of varying sizes.
            let q = Aabb::cube(Vec3::new(i as f64 * 2.0, 0.0, 0.0), *half);
            let result: Vec<&NeuronSegment> =
                soup.iter().filter(|s| s.aabb().intersects(&q)).collect();
            let sk = Skeleton::reconstruct(&result, &q, SkeletonParams::default());
            let exiting = sk.exiting().count();
            let survivors = tracker.advance(&sk);
            prop_assert!(survivors.len() <= exiting);
            for &s in &survivors {
                prop_assert!(!sk.structures[s].exits.is_empty());
            }
        }
        prop_assert_eq!(tracker.history().len(), halves.len());
    }
}
