//! Candidate-structure tracking (the paper's Figure 5).
//!
//! "To identify the structure the scientist follows, SCOUT exploits that
//! all queries in the spatial range query sequence must contain the
//! structure followed. It thus only considers the intersection between
//! the structures leaving the (n − 1)th query and the set of structures
//! entering the nth (the most recent) query." (§3.1)

use crate::skeleton::Skeleton;

/// Tracks which structures may be the one the user follows.
///
/// Structures have no global identity (each query reconstructs its own
/// skeleton), so continuity is established through shared segment ids:
/// consecutive queries overlap spatially, and the followed structure
/// contributes at least one common segment to both results.
#[derive(Debug, Default)]
pub struct CandidateTracker {
    /// Union of segment ids of the current candidate structures; empty
    /// before the first update (every structure is a candidate).
    pool: Vec<u64>,
    /// Candidate count after each update (the Figure 5 series).
    history: Vec<usize>,
}

impl CandidateTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Update with the skeleton of the latest query result. Returns the
    /// indices (into `skeleton.structures`) of the surviving candidates.
    pub fn advance(&mut self, skeleton: &Skeleton) -> Vec<usize> {
        let exiting: Vec<usize> = skeleton
            .structures
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.exits.is_empty())
            .map(|(i, _)| i)
            .collect();

        let survivors: Vec<usize> = if self.pool.is_empty() {
            // First query of the sequence: every exiting structure is a
            // candidate.
            exiting
        } else {
            let prev = &self.pool;
            let matched: Vec<usize> = exiting
                .iter()
                .copied()
                .filter(|&i| skeleton.structures[i].shares_segments_with(prev))
                .collect();
            if matched.is_empty() {
                // Track lost (user jumped, or the structure ended): reset
                // to all exiting structures rather than predicting nothing.
                exiting
            } else {
                matched
            }
        };

        // New pool: union of survivor segment ids.
        let mut pool = Vec::new();
        for &i in &survivors {
            pool.extend_from_slice(&skeleton.structures[i].segment_ids);
        }
        pool.sort_unstable();
        pool.dedup();
        self.pool = pool;
        self.history.push(survivors.len());
        survivors
    }

    /// Candidate counts after each query — non-increasing while the track
    /// holds (the pruning the demo visualizes).
    pub fn history(&self) -> &[usize] {
        &self.history
    }

    /// Forget everything (start of a new walkthrough).
    pub fn reset(&mut self) {
        self.pool.clear();
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::{SkeletonParams, Structure};
    use neurospatial_geom::{Aabb, Segment, Vec3};
    use neurospatial_model::NeuronSegment;

    fn seg(id: u64, a: (f64, f64, f64), b: (f64, f64, f64)) -> NeuronSegment {
        NeuronSegment {
            id,
            neuron: 0,
            section: 0,
            index_on_section: 0,
            geom: Segment::new(Vec3::new(a.0, a.1, a.2), Vec3::new(b.0, b.1, b.2), 0.1),
        }
    }

    fn skeleton_of(segs: &[NeuronSegment], q: &Aabb) -> Skeleton {
        let refs: Vec<&NeuronSegment> = segs.iter().collect();
        Skeleton::reconstruct(&refs, q, SkeletonParams::default())
    }

    #[test]
    fn pruning_converges_to_followed_structure() {
        // Two parallel chains; the walkthrough follows chain A (ids 0..10).
        // Chain B (ids 100..) leaves the moving window after a few steps.
        let chain = |base: u64, y: f64| -> Vec<NeuronSegment> {
            (0..20).map(|i| seg(base + i, (i as f64, y, 0.0), (i as f64 + 1.0, y, 0.0))).collect()
        };
        let a = chain(0, 0.0);
        let b = chain(100, 3.0);

        let mut tracker = CandidateTracker::new();

        // Query 1 around x≈2 sees both chains (box covers y 0 and 3).
        let q1 = Aabb::new(Vec3::new(0.0, -1.0, -1.0), Vec3::new(4.0, 4.0, 1.0));
        let mut both: Vec<NeuronSegment> = Vec::new();
        both.extend(a.iter().filter(|s| s.aabb().intersects(&q1)));
        both.extend(b.iter().filter(|s| s.aabb().intersects(&q1)));
        let s1 = skeleton_of(&both, &q1);
        let c1 = tracker.advance(&s1);
        assert_eq!(c1.len(), 2, "both chains exit the first box");

        // Query 2 moves along chain A and drops chain B.
        let q2 = Aabb::new(Vec3::new(3.0, -1.0, -1.0), Vec3::new(8.0, 1.0, 1.0));
        let only_a: Vec<NeuronSegment> =
            a.iter().filter(|s| s.aabb().intersects(&q2)).cloned().collect();
        let s2 = skeleton_of(&only_a, &q2);
        let c2 = tracker.advance(&s2);
        assert_eq!(c2.len(), 1, "only the followed chain survives");
        assert_eq!(tracker.history(), &[2, 1]);
    }

    #[test]
    fn lost_track_resets_to_all_exiting() {
        let mut tracker = CandidateTracker::new();
        let a: Vec<NeuronSegment> =
            (0..5).map(|i| seg(i, (i as f64, 0.0, 0.0), (i as f64 + 1.0, 0.0, 0.0))).collect();
        let q1 = Aabb::new(Vec3::new(0.0, -1.0, -1.0), Vec3::new(3.0, 1.0, 1.0));
        let r1: Vec<NeuronSegment> =
            a.iter().filter(|s| s.aabb().intersects(&q1)).cloned().collect();
        tracker.advance(&skeleton_of(&r1, &q1));

        // Jump to a completely different chain: no shared segments.
        let b: Vec<NeuronSegment> = (100..105)
            .map(|i| seg(i, (i as f64, 50.0, 0.0), (i as f64 + 1.0, 50.0, 0.0)))
            .collect();
        let q2 = Aabb::new(Vec3::new(100.0, 49.0, -1.0), Vec3::new(103.0, 51.0, 1.0));
        let r2: Vec<NeuronSegment> =
            b.iter().filter(|s| s.aabb().intersects(&q2)).cloned().collect();
        let c = tracker.advance(&skeleton_of(&r2, &q2));
        assert!(!c.is_empty(), "reset should recover candidates");
    }

    #[test]
    fn reset_clears_state() {
        let mut tracker = CandidateTracker::new();
        let sk = Skeleton { structures: vec![Structure { segment_ids: vec![1], exits: vec![] }] };
        tracker.advance(&sk);
        assert_eq!(tracker.history().len(), 1);
        tracker.reset();
        assert!(tracker.history().is_empty());
    }

    #[test]
    fn no_exits_yields_no_candidates() {
        // Structure fully inside the box: nothing to follow outward.
        let mut tracker = CandidateTracker::new();
        let segs = [seg(0, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0))];
        let q = Aabb::cube(Vec3::ZERO, 100.0);
        let c = tracker.advance(&skeleton_of(&segs, &q));
        assert!(c.is_empty());
    }
}
