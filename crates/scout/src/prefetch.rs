//! The prefetcher interface and the four policies of the demo (§3.2):
//! none, Hilbert, extrapolation, SCOUT.

use crate::candidate::CandidateTracker;
use crate::predict::{extrapolate_exits, PredictParams};
use crate::skeleton::{Skeleton, SkeletonParams, Structure};
use neurospatial_geom::{Aabb, Vec3};
use neurospatial_model::NeuronSegment;

/// Everything a prefetcher may inspect after a query completes.
///
/// Location-only policies use `history`; content-aware policies (SCOUT)
/// use `result`; storage-order policies (Hilbert) use `pages_read`.
#[derive(Debug)]
pub struct PrefetchContext<'a> {
    /// The query just executed.
    pub query: &'a Aabb,
    /// Its result set.
    pub result: &'a [&'a NeuronSegment],
    /// Centres of all queries so far, including the current one.
    pub history: &'a [Vec3],
    /// FLAT data pages the current query read.
    pub pages_read: &'a [u32],
}

/// What to prefetch before the user's next query.
#[derive(Debug, Clone, Default)]
pub struct PrefetchPlan {
    /// Predicted spatial regions (translated to pages by the session).
    pub regions: Vec<Aabb>,
    /// Explicit page ids (used by storage-order policies).
    pub pages: Vec<u32>,
}

impl PrefetchPlan {
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty() && self.pages.is_empty()
    }
}

/// A prefetching policy.
pub trait Prefetcher {
    fn name(&self) -> &'static str;

    /// Called after each query; returns what to fetch during think time.
    fn plan(&mut self, ctx: &PrefetchContext<'_>) -> PrefetchPlan;

    /// Forget per-walkthrough state.
    fn reset(&mut self);
}

/// The no-prefetching baseline: every page is fetched on demand.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoPrefetch;

impl Prefetcher for NoPrefetch {
    fn name(&self) -> &'static str {
        "none"
    }

    fn plan(&mut self, _ctx: &PrefetchContext<'_>) -> PrefetchPlan {
        PrefetchPlan::default()
    }

    fn reset(&mut self) {}
}

/// Hilbert prefetching (after Park & Kim's curve-order policies for web
/// GIS \[13\]): prefetch the pages adjacent *in storage (Hilbert) order* to
/// the pages the query just read. Spatial locality of the curve makes
/// this a reasonable but content-blind guess.
#[derive(Debug, Clone, Copy)]
pub struct HilbertPrefetcher {
    /// How many successor/predecessor pages to fetch around each read
    /// page.
    pub window: u32,
}

impl Default for HilbertPrefetcher {
    fn default() -> Self {
        HilbertPrefetcher { window: 2 }
    }
}

impl Prefetcher for HilbertPrefetcher {
    fn name(&self) -> &'static str {
        "hilbert"
    }

    fn plan(&mut self, ctx: &PrefetchContext<'_>) -> PrefetchPlan {
        let mut pages = Vec::new();
        for &p in ctx.pages_read {
            for d in 1..=self.window {
                pages.push(p.saturating_add(d));
                if p >= d {
                    pages.push(p - d);
                }
            }
        }
        pages.sort_unstable();
        pages.dedup();
        // Pages just read are resident anyway; keep the plan tight.
        pages.retain(|p| !ctx.pages_read.contains(p));
        PrefetchPlan { regions: Vec::new(), pages }
    }

    fn reset(&mut self) {}
}

/// Extrapolation prefetching: predict the next query centre from the last
/// two centres ("only use the current location or the last few positions
/// to predict the next query location", §3) and prefetch a box there.
/// Fails on jagged branches — the direction of the *camera* is not the
/// direction of the *structure*.
#[derive(Debug, Clone, Copy)]
pub struct ExtrapolationPrefetcher {
    /// Number of steps ahead to predict (each its own box).
    pub steps_ahead: u32,
}

impl Default for ExtrapolationPrefetcher {
    fn default() -> Self {
        ExtrapolationPrefetcher { steps_ahead: 2 }
    }
}

impl Prefetcher for ExtrapolationPrefetcher {
    fn name(&self) -> &'static str {
        "extrapolation"
    }

    fn plan(&mut self, ctx: &PrefetchContext<'_>) -> PrefetchPlan {
        let n = ctx.history.len();
        if n < 2 {
            return PrefetchPlan::default();
        }
        let step = ctx.history[n - 1] - ctx.history[n - 2];
        let half = ctx.query.extent() * 0.5;
        let radius = half.x.max(half.y).max(half.z);
        let mut regions = Vec::new();
        for k in 1..=self.steps_ahead {
            let c = ctx.history[n - 1] + step * k as f64;
            regions.push(Aabb::cube(c, radius));
        }
        PrefetchPlan { regions, pages: Vec::new() }
    }

    fn reset(&mut self) {}
}

/// SCOUT: skeleton reconstruction + candidate pruning + exit-edge
/// extrapolation.
#[derive(Debug)]
pub struct ScoutPrefetcher {
    pub skeleton_params: SkeletonParams,
    pub predict_params: PredictParams,
    tracker: CandidateTracker,
}

impl Default for ScoutPrefetcher {
    fn default() -> Self {
        ScoutPrefetcher {
            skeleton_params: SkeletonParams::default(),
            predict_params: PredictParams::default(),
            tracker: CandidateTracker::new(),
        }
    }
}

impl ScoutPrefetcher {
    pub fn new(skeleton_params: SkeletonParams, predict_params: PredictParams) -> Self {
        ScoutPrefetcher { skeleton_params, predict_params, tracker: CandidateTracker::new() }
    }

    /// Candidate-count series (Figure 5 of the paper).
    pub fn candidate_history(&self) -> &[usize] {
        self.tracker.history()
    }
}

impl Prefetcher for ScoutPrefetcher {
    fn name(&self) -> &'static str {
        "scout"
    }

    fn plan(&mut self, ctx: &PrefetchContext<'_>) -> PrefetchPlan {
        let skeleton = Skeleton::reconstruct(ctx.result, ctx.query, self.skeleton_params);
        let survivors = self.tracker.advance(&skeleton);

        // Adapt the lookahead to the observed step length when available.
        let mut params = self.predict_params;
        let n = ctx.history.len();
        let motion = (n >= 2).then(|| ctx.history[n - 1] - ctx.history[n - 2]);
        if let Some(m) = motion {
            let step = m.norm();
            if step > 0.0 {
                params.lookahead = step;
            }
        }
        // Prefetch boxes slightly larger than the view box absorb the
        // residual error of linear extrapolation on curved branches.
        let half = ctx.query.extent() * 0.5;
        params.prefetch_radius = half.x.max(half.y).max(half.z) * 1.25;

        // Keep only exits consistent with the direction of travel: the
        // user follows the structure onward, and the region behind the
        // current box was just visited (resident in the pool anyway).
        let forward: Vec<Structure> = survivors
            .iter()
            .map(|&i| &skeleton.structures[i])
            .map(|s| Structure {
                segment_ids: s.segment_ids.clone(),
                exits: s
                    .exits
                    .iter()
                    .filter(|e| match motion {
                        Some(m) => e.direction.dot(m) >= 0.0,
                        None => true,
                    })
                    .copied()
                    .collect(),
            })
            .collect();
        let regions = extrapolate_exits(forward.iter(), params);
        PrefetchPlan { regions, pages: Vec::new() }
    }

    fn reset(&mut self) {
        self.tracker.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::Segment;

    fn seg(id: u64, a: (f64, f64, f64), b: (f64, f64, f64)) -> NeuronSegment {
        NeuronSegment {
            id,
            neuron: 0,
            section: 0,
            index_on_section: 0,
            geom: Segment::new(Vec3::new(a.0, a.1, a.2), Vec3::new(b.0, b.1, b.2), 0.1),
        }
    }

    #[test]
    fn none_plans_nothing() {
        let q = Aabb::cube(Vec3::ZERO, 1.0);
        let ctx =
            PrefetchContext { query: &q, result: &[], history: &[Vec3::ZERO], pages_read: &[] };
        assert!(NoPrefetch.plan(&ctx).is_empty());
    }

    #[test]
    fn hilbert_plans_adjacent_pages() {
        let q = Aabb::cube(Vec3::ZERO, 1.0);
        let ctx =
            PrefetchContext { query: &q, result: &[], history: &[Vec3::ZERO], pages_read: &[5, 6] };
        let plan = HilbertPrefetcher { window: 1 }.plan(&ctx);
        assert_eq!(plan.pages, vec![4, 7]); // 5,6 excluded as already read
        let wide = HilbertPrefetcher { window: 2 }.plan(&ctx);
        assert_eq!(wide.pages, vec![3, 4, 7, 8]);
    }

    #[test]
    fn hilbert_handles_page_zero() {
        let q = Aabb::cube(Vec3::ZERO, 1.0);
        let ctx =
            PrefetchContext { query: &q, result: &[], history: &[Vec3::ZERO], pages_read: &[0] };
        let plan = HilbertPrefetcher { window: 2 }.plan(&ctx);
        assert_eq!(plan.pages, vec![1, 2]); // no underflow below page 0
    }

    #[test]
    fn extrapolation_follows_camera_motion() {
        let q = Aabb::cube(Vec3::new(10.0, 0.0, 0.0), 2.0);
        let hist = vec![Vec3::new(5.0, 0.0, 0.0), Vec3::new(10.0, 0.0, 0.0)];
        let plan = ExtrapolationPrefetcher { steps_ahead: 2 }.plan(&PrefetchContext {
            query: &q,
            result: &[],
            history: &hist,
            pages_read: &[],
        });
        assert_eq!(plan.regions.len(), 2);
        assert_eq!(plan.regions[0].center(), Vec3::new(15.0, 0.0, 0.0));
        assert_eq!(plan.regions[1].center(), Vec3::new(20.0, 0.0, 0.0));
    }

    #[test]
    fn extrapolation_needs_two_points() {
        let q = Aabb::cube(Vec3::ZERO, 1.0);
        let hist = vec![Vec3::ZERO];
        let plan = ExtrapolationPrefetcher::default().plan(&PrefetchContext {
            query: &q,
            result: &[],
            history: &hist,
            pages_read: &[],
        });
        assert!(plan.is_empty());
    }

    #[test]
    fn scout_predicts_along_structure_not_camera() {
        // A chain that turns 90°: the camera moved +x, but the structure
        // exits the box towards +y. SCOUT must predict +y.
        let chain = [
            seg(0, (0.0, 0.0, 0.0), (2.0, 0.0, 0.0)),
            seg(1, (2.0, 0.0, 0.0), (4.0, 0.0, 0.0)),
            seg(2, (4.0, 0.0, 0.0), (4.0, 2.0, 0.0)),
            seg(3, (4.0, 2.0, 0.0), (4.0, 6.0, 0.0)), // exits upward
        ];
        let q = Aabb::new(Vec3::new(1.0, -1.0, -1.0), Vec3::new(5.0, 3.0, 1.0));
        let result: Vec<&NeuronSegment> =
            chain.iter().filter(|s| s.aabb().intersects(&q)).collect();
        let hist = vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(3.0, 1.0, 0.0)];
        let mut scout = ScoutPrefetcher::default();
        let plan = scout.plan(&PrefetchContext {
            query: &q,
            result: &result,
            history: &hist,
            pages_read: &[],
        });
        assert!(!plan.regions.is_empty());
        // The predicted centre lies above the box (structure direction),
        // not to the right of it (camera direction).
        let c = plan.regions[0].center();
        assert!(c.y > 3.0, "predicted centre {c} should be above the query box");
    }

    #[test]
    fn scout_reset_clears_candidates() {
        let mut scout = ScoutPrefetcher::default();
        let chain = [seg(0, (0.0, 0.0, 0.0), (5.0, 0.0, 0.0))];
        let q = Aabb::cube(Vec3::ZERO, 2.0);
        let result: Vec<&NeuronSegment> = chain.iter().collect();
        scout.plan(&PrefetchContext {
            query: &q,
            result: &result,
            history: &[Vec3::ZERO],
            pages_read: &[],
        });
        assert_eq!(scout.candidate_history().len(), 1);
        scout.reset();
        assert!(scout.candidate_history().is_empty());
    }
}
