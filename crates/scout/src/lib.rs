//! # neurospatial-scout
//!
//! SCOUT — content-aware prefetching for *structure-following* spatial
//! query sequences (§3 of the demo paper; full algorithm in Tauheed et
//! al., "SCOUT: Prefetching for Latent Structure Following Queries",
//! VLDB'12).
//!
//! Scientists exploring a model issue *moving range queries*: a sequence
//! of overlapping boxes following a neuron branch (or an artery, a lung
//! airway, …). Between two queries the user inspects the visualisation —
//! think time a prefetcher can hide I/O in. Location-only predictors fail
//! on neural geometry because branches are jagged; SCOUT instead looks at
//! the *content* of each result:
//!
//! 1. reconstruct the **topological skeleton** of the result (connected
//!    structures of segments, [`skeleton`]);
//! 2. identify the structures **exiting** the query box and intersect
//!    them with the candidates carried over from the previous query — the
//!    structure the user follows must survive every intersection
//!    ([`candidate`], the paper's Figure 5);
//! 3. **extrapolate** the exit edges of the surviving candidates and
//!    prefetch range queries at the predicted positions ([`predict`]).
//!
//! The crate also implements the two baselines the demo compares against
//! (Hilbert-order prefetching and query-centre extrapolation) and a
//! deterministic [`session::ExplorationSession`] simulator that replays a
//! walkthrough against the FLAT index, a simulated disk and an LRU buffer
//! pool, reporting the demo's Figure 6 statistics (data prefetched,
//! correctly prefetched, fetched on demand, stall time, speedup).

pub mod candidate;
pub mod markov;
pub mod ooc;
pub mod paged;
pub mod predict;
pub mod prefetch;
pub mod session;
pub mod skeleton;

pub use candidate::CandidateTracker;
pub use markov::MarkovPrefetcher;
pub use ooc::{
    write_flat_index, OocConfig, OocCursor, OocFlatIndex, OocIoTrace, OocQueryStats, OocScratch,
};
pub use paged::PagedIndex;
pub use predict::{extrapolate_exits, PredictParams};
pub use prefetch::{
    ExtrapolationPrefetcher, HilbertPrefetcher, NoPrefetch, PrefetchContext, PrefetchPlan,
    Prefetcher, ScoutPrefetcher,
};
pub use session::{ExplorationSession, QueryTrace, SessionConfig, SessionCursor, SessionStats};
pub use skeleton::{Skeleton, SkeletonParams, Structure};
