//! Exit-edge extrapolation: "At the exit locations, the edges exiting are
//! extrapolated linearly to predict the next query locations. Range
//! queries are then executed at the predicted locations to prefetch data
//! into memory." (§3.1)

use crate::skeleton::Structure;
use neurospatial_geom::Aabb;

/// Extrapolation parameters.
#[derive(Debug, Clone, Copy)]
pub struct PredictParams {
    /// How far beyond the exit point to centre the prefetch box — should
    /// match the user's step length; the session simulator passes the
    /// walkthrough step.
    pub lookahead: f64,
    /// Half-extent of each prefetch box (normally the view radius).
    pub prefetch_radius: f64,
    /// Upper bound on boxes generated per query (bandwidth guard).
    pub max_predictions: usize,
}

impl Default for PredictParams {
    fn default() -> Self {
        PredictParams { lookahead: 10.0, prefetch_radius: 15.0, max_predictions: 8 }
    }
}

/// Predict the next query regions from the exit edges of the candidate
/// structures.
pub fn extrapolate_exits<'a, I>(candidates: I, params: PredictParams) -> Vec<Aabb>
where
    I: IntoIterator<Item = &'a Structure>,
{
    let mut out = Vec::new();
    for s in candidates {
        for e in &s.exits {
            if out.len() >= params.max_predictions {
                return out;
            }
            let centre = e.exit_point + e.direction * params.lookahead;
            out.push(Aabb::cube(centre, params.prefetch_radius));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::ExitEdge;
    use neurospatial_geom::Vec3;

    fn structure_with_exits(exits: Vec<ExitEdge>) -> Structure {
        Structure { segment_ids: vec![0], exits }
    }

    #[test]
    fn boxes_centred_ahead_of_exit() {
        let s = structure_with_exits(vec![ExitEdge {
            segment_id: 0,
            exit_point: Vec3::new(10.0, 0.0, 0.0),
            direction: Vec3::new(1.0, 0.0, 0.0),
        }]);
        let boxes = extrapolate_exits(
            [&s],
            PredictParams { lookahead: 5.0, prefetch_radius: 2.0, max_predictions: 8 },
        );
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0].center(), Vec3::new(15.0, 0.0, 0.0));
        assert_eq!(boxes[0].extent(), Vec3::splat(4.0));
    }

    #[test]
    fn cap_respected() {
        let exits: Vec<ExitEdge> = (0..20)
            .map(|i| ExitEdge {
                segment_id: i,
                exit_point: Vec3::new(i as f64, 0.0, 0.0),
                direction: Vec3::new(0.0, 1.0, 0.0),
            })
            .collect();
        let s = structure_with_exits(exits);
        let boxes = extrapolate_exits(
            [&s],
            PredictParams { lookahead: 1.0, prefetch_radius: 1.0, max_predictions: 4 },
        );
        assert_eq!(boxes.len(), 4);
    }

    #[test]
    fn multiple_candidates_all_extrapolated() {
        let a = structure_with_exits(vec![ExitEdge {
            segment_id: 0,
            exit_point: Vec3::ZERO,
            direction: Vec3::new(1.0, 0.0, 0.0),
        }]);
        let b = structure_with_exits(vec![ExitEdge {
            segment_id: 1,
            exit_point: Vec3::ZERO,
            direction: Vec3::new(0.0, 1.0, 0.0),
        }]);
        let boxes = extrapolate_exits([&a, &b], PredictParams::default());
        assert_eq!(boxes.len(), 2);
        assert_ne!(boxes[0].center(), boxes[1].center());
    }

    #[test]
    fn no_exits_no_predictions() {
        let s = structure_with_exits(vec![]);
        assert!(extrapolate_exits([&s], PredictParams::default()).is_empty());
    }
}
