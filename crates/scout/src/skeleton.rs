//! Topological skeleton reconstruction.
//!
//! "While the result of query q in the sequence is loaded, SCOUT already
//! starts to reconstruct the dominating structures/the topological
//! skeleton in q and approximates them with a graph" (§3.1).
//!
//! The reconstruction uses geometry only — segment endpoints that
//! (nearly) coincide are fused into skeleton vertices via a union-find
//! over a quantised spatial hash. The ground-truth neuron/section ids on
//! [`NeuronSegment`] are deliberately ignored; tests use them to measure
//! reconstruction quality.

use neurospatial_geom::{Aabb, Vec3};
use neurospatial_model::NeuronSegment;
use std::collections::HashMap;

/// Skeleton reconstruction parameters.
#[derive(Debug, Clone, Copy)]
pub struct SkeletonParams {
    /// Endpoints closer than this are considered the same skeleton vertex.
    pub connect_tolerance: f64,
}

impl Default for SkeletonParams {
    /// 0.25 µm: far below inter-neuron spacing, above float noise.
    fn default() -> Self {
        SkeletonParams { connect_tolerance: 0.25 }
    }
}

/// One reconstructed structure: a connected set of segments.
#[derive(Debug, Clone)]
pub struct Structure {
    /// Object ids of member segments, sorted.
    pub segment_ids: Vec<u64>,
    /// Exit edges: segments that cross the query boundary, with the exit
    /// point (endpoint outside or on the boundary) and outward direction.
    pub exits: Vec<ExitEdge>,
}

impl Structure {
    /// True if any member segment id also appears in `other_ids`
    /// (`other_ids` must be sorted).
    pub fn shares_segments_with(&self, other_ids: &[u64]) -> bool {
        // Both sorted: linear merge.
        let (mut i, mut j) = (0, 0);
        while i < self.segment_ids.len() && j < other_ids.len() {
            match self.segment_ids[i].cmp(&other_ids[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }
}

/// A place where a structure leaves the query box.
#[derive(Debug, Clone, Copy)]
pub struct ExitEdge {
    /// Id of the crossing segment.
    pub segment_id: u64,
    /// The endpoint lying outside the query box.
    pub exit_point: Vec3,
    /// Unit direction pointing out of the box (from the inside endpoint
    /// towards the outside endpoint).
    pub direction: Vec3,
}

/// The reconstructed skeleton of one query result.
#[derive(Debug, Clone)]
pub struct Skeleton {
    pub structures: Vec<Structure>,
}

impl Skeleton {
    /// Reconstruct from a query result.
    ///
    /// `result` are the segments returned for `query`; connectivity is
    /// inferred from endpoint proximity per `params`.
    pub fn reconstruct(result: &[&NeuronSegment], query: &Aabb, params: SkeletonParams) -> Self {
        let n = result.len();
        let mut uf = UnionFind::new(n);

        // Spatial hash of quantised endpoints → segment indices.
        let tol = params.connect_tolerance.max(1e-9);
        let quant = |p: Vec3| -> (i64, i64, i64) {
            ((p.x / tol).round() as i64, (p.y / tol).round() as i64, (p.z / tol).round() as i64)
        };
        let mut buckets: HashMap<(i64, i64, i64), Vec<u32>> = HashMap::new();
        for (i, s) in result.iter().enumerate() {
            for p in [s.geom.p0, s.geom.p1] {
                let c = quant(p);
                // Register in the containing cell and the 26 neighbours to
                // catch pairs straddling a cell boundary.
                for dx in -1..=1i64 {
                    for dy in -1..=1i64 {
                        for dz in -1..=1i64 {
                            buckets
                                .entry((c.0 + dx, c.1 + dy, c.2 + dz))
                                .or_default()
                                .push(i as u32);
                        }
                    }
                }
            }
        }
        for (i, s) in result.iter().enumerate() {
            for p in [s.geom.p0, s.geom.p1] {
                if let Some(cands) = buckets.get(&quant(p)) {
                    for &j in cands {
                        let j = j as usize;
                        if j == i {
                            continue;
                        }
                        let o = result[j];
                        if p.distance(o.geom.p0) <= tol || p.distance(o.geom.p1) <= tol {
                            uf.union(i, j);
                        }
                    }
                }
            }
        }

        // Group segments by union-find root.
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            groups.entry(uf.find(i)).or_default().push(i);
        }

        let mut structures: Vec<Structure> = groups
            .into_values()
            .map(|members| {
                let mut segment_ids: Vec<u64> = members.iter().map(|&i| result[i].id).collect();
                segment_ids.sort_unstable();
                let mut exits = Vec::new();
                for &i in &members {
                    if let Some(e) = exit_edge(result[i], query) {
                        exits.push(e);
                    }
                }
                Structure { segment_ids, exits }
            })
            .collect();
        // Deterministic order: by smallest member id.
        structures.sort_by_key(|s| s.segment_ids[0]);
        Skeleton { structures }
    }

    /// Structures that leave the query box.
    pub fn exiting(&self) -> impl Iterator<Item = &Structure> {
        self.structures.iter().filter(|s| !s.exits.is_empty())
    }
}

/// Detect whether `seg` crosses the boundary of `q` and build the exit
/// edge if it does.
fn exit_edge(seg: &NeuronSegment, q: &Aabb) -> Option<ExitEdge> {
    let in0 = q.contains_point(seg.geom.p0);
    let in1 = q.contains_point(seg.geom.p1);
    let (inside, outside) = match (in0, in1) {
        (true, false) => (seg.geom.p0, seg.geom.p1),
        (false, true) => (seg.geom.p1, seg.geom.p0),
        _ => return None, // fully inside or fully outside (clipped corner)
    };
    let direction = (outside - inside).normalized()?;
    Some(ExitEdge { segment_id: seg.id, exit_point: outside, direction })
}

/// Plain union-find with path halving + union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::Segment;

    fn seg(id: u64, a: (f64, f64, f64), b: (f64, f64, f64)) -> NeuronSegment {
        NeuronSegment {
            id,
            neuron: 0,
            section: 0,
            index_on_section: 0,
            geom: Segment::new(Vec3::new(a.0, a.1, a.2), Vec3::new(b.0, b.1, b.2), 0.1),
        }
    }

    #[test]
    fn chains_fuse_into_one_structure() {
        let segs = [
            seg(0, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0)),
            seg(1, (1.0, 0.0, 0.0), (2.0, 0.0, 0.0)),
            seg(2, (2.0, 0.0, 0.0), (3.0, 0.0, 0.0)),
            // Disconnected second chain.
            seg(3, (0.0, 5.0, 0.0), (1.0, 5.0, 0.0)),
            seg(4, (1.0, 5.0, 0.0), (2.0, 5.0, 0.0)),
        ];
        let refs: Vec<&NeuronSegment> = segs.iter().collect();
        let q = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(10.0, 10.0, 1.0));
        let sk = Skeleton::reconstruct(&refs, &q, SkeletonParams::default());
        assert_eq!(sk.structures.len(), 2);
        assert_eq!(sk.structures[0].segment_ids, vec![0, 1, 2]);
        assert_eq!(sk.structures[1].segment_ids, vec![3, 4]);
    }

    #[test]
    fn branching_structures_stay_connected() {
        // Y-shape: two children share the parent's tip.
        let segs = [
            seg(0, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0)),
            seg(1, (1.0, 0.0, 0.0), (2.0, 1.0, 0.0)),
            seg(2, (1.0, 0.0, 0.0), (2.0, -1.0, 0.0)),
        ];
        let refs: Vec<&NeuronSegment> = segs.iter().collect();
        let q = Aabb::cube(Vec3::new(1.0, 0.0, 0.0), 5.0);
        let sk = Skeleton::reconstruct(&refs, &q, SkeletonParams::default());
        assert_eq!(sk.structures.len(), 1);
        assert_eq!(sk.structures[0].segment_ids, vec![0, 1, 2]);
    }

    #[test]
    fn tolerance_controls_fusion() {
        let segs = [
            seg(0, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0)),
            seg(1, (1.3, 0.0, 0.0), (2.0, 0.0, 0.0)), // 0.3 gap
        ];
        let refs: Vec<&NeuronSegment> = segs.iter().collect();
        let q = Aabb::cube(Vec3::new(1.0, 0.0, 0.0), 5.0);
        let tight = Skeleton::reconstruct(&refs, &q, SkeletonParams { connect_tolerance: 0.1 });
        assert_eq!(tight.structures.len(), 2);
        let loose = Skeleton::reconstruct(&refs, &q, SkeletonParams { connect_tolerance: 0.5 });
        assert_eq!(loose.structures.len(), 1);
    }

    #[test]
    fn exit_edges_detected_with_direction() {
        let q = Aabb::cube(Vec3::ZERO, 2.0);
        let segs = [
            seg(0, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0)), // inside
            seg(1, (1.0, 0.0, 0.0), (3.0, 0.0, 0.0)), // crosses +x
        ];
        let refs: Vec<&NeuronSegment> = segs.iter().collect();
        let sk = Skeleton::reconstruct(&refs, &q, SkeletonParams::default());
        assert_eq!(sk.structures.len(), 1);
        let s = &sk.structures[0];
        assert_eq!(s.exits.len(), 1);
        let e = &s.exits[0];
        assert_eq!(e.segment_id, 1);
        assert_eq!(e.exit_point, Vec3::new(3.0, 0.0, 0.0));
        assert!((e.direction - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-9);
        assert_eq!(sk.exiting().count(), 1);
    }

    #[test]
    fn fully_inside_structure_has_no_exits() {
        let q = Aabb::cube(Vec3::ZERO, 10.0);
        let segs = [seg(0, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0))];
        let refs: Vec<&NeuronSegment> = segs.iter().collect();
        let sk = Skeleton::reconstruct(&refs, &q, SkeletonParams::default());
        assert_eq!(sk.exiting().count(), 0);
    }

    #[test]
    fn shares_segments_merge_check() {
        let s = Structure { segment_ids: vec![2, 5, 9], exits: vec![] };
        assert!(s.shares_segments_with(&[1, 5, 7]));
        assert!(!s.shares_segments_with(&[1, 3, 7]));
        assert!(!s.shares_segments_with(&[]));
    }

    #[test]
    fn reconstruction_matches_ground_truth_on_circuit() {
        // On a real generated circuit, segments of the same section chain
        // must reconstruct into the same structure.
        use neurospatial_model::CircuitBuilder;
        let c = CircuitBuilder::new(3).neurons(2).build();
        let q = c.bounds().inflate(1.0); // everything inside, no clipping
        let refs: Vec<&NeuronSegment> = c.segments().iter().collect();
        let sk = Skeleton::reconstruct(&refs, &q, SkeletonParams::default());
        // Structures never mix neurons (neurons are spatially separated by
        // construction only per-section; two neurons CAN touch, so check
        // the weaker direction: every section's segments are together).
        use std::collections::HashMap;
        let mut seg_to_structure: HashMap<u64, usize> = HashMap::new();
        for (si, s) in sk.structures.iter().enumerate() {
            for &id in &s.segment_ids {
                seg_to_structure.insert(id, si);
            }
        }
        for w in c.segments().windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.neuron == b.neuron
                && a.section == b.section
                && a.index_on_section + 1 == b.index_on_section
            {
                assert_eq!(
                    seg_to_structure[&a.id], seg_to_structure[&b.id],
                    "consecutive segments of one section split across structures"
                );
            }
        }
    }
}
