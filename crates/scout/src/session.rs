//! The exploration-session simulator: replays a branch-following
//! walkthrough against FLAT + simulated disk + LRU buffer pool and
//! reports the demo's Figure 6 statistics.
//!
//! Timing model: each step of the walkthrough issues a range query whose
//! *demand misses* stall the user (charged with the disk cost model).
//! Between steps the user inspects the visualisation for
//! [`SessionConfig::think_time_ms`]; the prefetcher may use exactly that
//! much background disk time — a prefetcher that requests more than fits
//! the budget gets cut off, so over-eager policies are penalised
//! naturally rather than by fiat.

use crate::paged::PagedIndex;
use crate::prefetch::{PrefetchContext, Prefetcher};
use neurospatial_flat::{FlatBuildParams, FlatIndex};
use neurospatial_geom::{Aabb, Vec3};
use neurospatial_model::{NavigationPath, NeuronSegment};
use neurospatial_storage::{BufferPool, CostModel, DiskSim, PageId};
use std::collections::HashMap;

/// Session configuration.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// FLAT page capacity (objects per page).
    pub page_capacity: usize,
    /// Buffer pool capacity in pages.
    pub buffer_pages: usize,
    /// Disk cost model.
    pub cost: CostModel,
    /// User think time between steps (ms) — the prefetch budget.
    pub think_time_ms: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            page_capacity: 64,
            buffer_pages: 256,
            cost: CostModel::default(),
            think_time_ms: 150.0,
        }
    }
}

/// Per-step record.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryTrace {
    /// Pages the query demanded.
    pub pages_demanded: u64,
    /// Demand accesses satisfied by the pool.
    pub demand_hits: u64,
    /// Demand accesses that had to stall on the disk.
    pub demand_misses: u64,
    /// Stall time of this step (ms).
    pub stall_ms: f64,
    /// Pages prefetched after this step.
    pub prefetched: u64,
    /// Result size of the step's query.
    pub results: u64,
}

/// Aggregate walkthrough statistics — the numbers the demo shows live.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    pub method: String,
    pub steps: Vec<QueryTrace>,
    /// Total stall time the user experienced (ms).
    pub total_stall_ms: f64,
    /// Total pages fetched on demand (misses).
    pub total_demand_misses: u64,
    /// Total demand hits.
    pub total_demand_hits: u64,
    /// Total pages prefetched ("how much data was prefetched in total").
    pub total_prefetched: u64,
    /// Prefetched pages that a later query actually demanded ("how much
    /// was correctly prefetched").
    pub useful_prefetched: u64,
    /// Simulated background disk time spent prefetching (ms).
    pub prefetch_cost_ms: f64,
}

impl SessionStats {
    /// Demand hit ratio over the whole walkthrough.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total_demand_hits + self.total_demand_misses;
        if total == 0 {
            0.0
        } else {
            self.total_demand_hits as f64 / total as f64
        }
    }

    /// Fraction of prefetched pages that were later used.
    pub fn prefetch_precision(&self) -> f64 {
        if self.total_prefetched == 0 {
            0.0
        } else {
            self.useful_prefetched as f64 / self.total_prefetched as f64
        }
    }

    /// Walkthrough speedup relative to a baseline run (stall time ratio).
    pub fn speedup_over(&self, baseline: &SessionStats) -> f64 {
        if self.total_stall_ms <= 0.0 {
            return f64::INFINITY;
        }
        baseline.total_stall_ms / self.total_stall_ms
    }
}

/// A reusable exploration environment: one paged spatial index over a
/// circuit's segments; each [`ExplorationSession::run`] replays a
/// walkthrough with a fresh disk, pool and prefetcher state.
///
/// Generic over the index: any [`PagedIndex`] implementation can drive a
/// session. FLAT is the default (and the index the demo paper uses).
pub struct ExplorationSession<I: PagedIndex = FlatIndex<NeuronSegment>> {
    index: I,
    config: SessionConfig,
}

impl ExplorationSession<FlatIndex<NeuronSegment>> {
    /// Index `segments` with FLAT and prepare the environment.
    pub fn new(segments: Vec<NeuronSegment>, config: SessionConfig) -> Self {
        let index = FlatIndex::build(
            segments,
            FlatBuildParams::default().with_page_capacity(config.page_capacity),
        );
        ExplorationSession { index, config }
    }
}

impl<I: PagedIndex> ExplorationSession<I> {
    /// Wrap an already-built paged index.
    pub fn from_index(index: I, config: SessionConfig) -> Self {
        ExplorationSession { index, config }
    }

    pub fn index(&self) -> &I {
        &self.index
    }

    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Replay `path` with `prefetcher`. Deterministic. One cursor, one
    /// [`SessionCursor::step`] per path query.
    pub fn run(&self, path: &NavigationPath, prefetcher: &mut dyn Prefetcher) -> SessionStats {
        let mut state = StepState::new(self, prefetcher.name());
        prefetcher.reset();
        for q in &path.queries {
            state.step(self, prefetcher, q);
        }
        state.stats
    }

    /// Bind a step-wise walkthrough session: a [`SessionCursor`] owns the
    /// simulated disk, buffer pool, prefetcher state and reusable query
    /// scratch, and advances one query at a time — the primitive behind
    /// repeated-query loops that do not know their whole path up front
    /// (an interactive viewer, the facade's `Query::session` binding).
    /// [`run`](Self::run) is exactly a cursor stepped over a whole path.
    pub fn cursor(&self, mut prefetcher: Box<dyn Prefetcher>) -> SessionCursor<'_, I> {
        prefetcher.reset();
        let state = StepState::new(self, prefetcher.name());
        SessionCursor { session: self, prefetcher, state }
    }
}

/// All mutable per-walkthrough state of a session replay: the simulated
/// disk and pool, prefetch provenance, query history, and the reusable
/// per-step buffers (after the first step has sized them, the demand
/// phase stops allocating).
struct StepState<'s, I: PagedIndex> {
    disk: DiskSim,
    pool: BufferPool,
    /// Pages inserted by prefetch that have not yet served a demand
    /// access (provenance for the precision statistic).
    pending_prefetch: HashMap<u32, ()>,
    history: Vec<Vec3>,
    scratch: I::Scratch,
    pages_read: Vec<u32>,
    result: Vec<&'s NeuronSegment>,
    stats: SessionStats,
}

impl<'s, I: PagedIndex> StepState<'s, I> {
    fn new(session: &ExplorationSession<I>, method: &str) -> Self {
        StepState {
            disk: DiskSim::new(u64::MAX, session.config.cost),
            pool: BufferPool::new(session.config.buffer_pages),
            pending_prefetch: HashMap::new(),
            history: Vec::new(),
            scratch: I::Scratch::default(),
            pages_read: Vec::new(),
            result: Vec::new(),
            stats: SessionStats { method: method.to_string(), ..Default::default() },
        }
    }

    /// Advance one step: demand phase (stalling on misses), then the
    /// think-time prefetch phase. Appends to the running statistics and
    /// returns this step's trace.
    fn step(
        &mut self,
        session: &'s ExplorationSession<I>,
        prefetcher: &mut dyn Prefetcher,
        q: &Aabb,
    ) -> QueryTrace {
        self.history.push(q.center());
        let mut trace = QueryTrace::default();

        // --- Demand phase: run the query, stalling on misses --------
        self.pages_read.clear();
        self.result.clear();
        let (pool, pending, stats) = (&mut self.pool, &mut self.pending_prefetch, &mut self.stats);
        let (pages_read, disk) = (&mut self.pages_read, &self.disk);
        session.index.paged_range_query_scratch(
            q,
            &mut self.scratch,
            &mut |p| {
                pages_read.push(p);
                trace.pages_demanded += 1;
                let cost =
                    pool.get(PageId(p as u64), disk).expect("unbounded simulated disk cannot fail");
                if cost > 0.0 {
                    trace.demand_misses += 1;
                    trace.stall_ms += cost;
                } else {
                    trace.demand_hits += 1;
                    if pending.remove(&p).is_some() {
                        stats.useful_prefetched += 1;
                    }
                }
            },
            &mut self.result,
        );
        trace.results = self.result.len() as u64;

        // --- Think time: background prefetching ----------------------
        let ctx = PrefetchContext {
            query: q,
            result: &self.result,
            history: &self.history,
            pages_read: &self.pages_read,
        };
        let plan = prefetcher.plan(&ctx);

        let mut planned_pages: Vec<u32> = plan.pages;
        for region in &plan.regions {
            planned_pages.extend(session.index.pages_intersecting(region));
        }
        planned_pages.retain(|&p| (p as usize) < session.index.page_count());
        planned_pages.dedup();

        let mut budget = session.config.think_time_ms;
        for p in planned_pages {
            if budget <= 0.0 {
                break; // think time exhausted: remaining plan dropped
            }
            if self.pool.contains(PageId(p as u64)) {
                continue;
            }
            let cost = self
                .pool
                .prefetch(PageId(p as u64), &self.disk)
                .expect("unbounded simulated disk cannot fail");
            budget -= cost;
            self.stats.prefetch_cost_ms += cost;
            trace.prefetched += 1;
            self.pending_prefetch.insert(p, ());
        }

        self.stats.total_stall_ms += trace.stall_ms;
        self.stats.total_demand_hits += trace.demand_hits;
        self.stats.total_demand_misses += trace.demand_misses;
        self.stats.total_prefetched += trace.prefetched;
        self.stats.steps.push(trace);
        trace
    }
}

/// A step-wise exploration session: feed queries one at a time, read the
/// accumulated Figure-6 statistics whenever you like. Created by
/// [`ExplorationSession::cursor`]; owns its prefetcher, simulated disk,
/// buffer pool and reusable per-step buffers, so repeated steps are as
/// allocation-disciplined as a whole-path [`ExplorationSession::run`].
pub struct SessionCursor<'s, I: PagedIndex = FlatIndex<NeuronSegment>> {
    session: &'s ExplorationSession<I>,
    prefetcher: Box<dyn Prefetcher>,
    state: StepState<'s, I>,
}

impl<'s, I: PagedIndex> SessionCursor<'s, I> {
    /// Advance the walkthrough by one query: demand phase (stalling on
    /// pool misses), then think-time prefetching. Returns this step's
    /// trace.
    pub fn step(&mut self, q: &Aabb) -> QueryTrace {
        self.state.step(self.session, self.prefetcher.as_mut(), q)
    }

    /// The result segments of the most recent step, in emission order.
    pub fn last_result(&self) -> &[&'s NeuronSegment] {
        &self.state.result
    }

    /// Statistics accumulated over every step so far.
    pub fn stats(&self) -> &SessionStats {
        &self.state.stats
    }

    /// Consume the cursor, yielding the final statistics.
    pub fn into_stats(self) -> SessionStats {
        self.state.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::{
        ExtrapolationPrefetcher, HilbertPrefetcher, NoPrefetch, ScoutPrefetcher,
    };
    use neurospatial_model::{CircuitBuilder, MorphologyParams};

    fn setup() -> (ExplorationSession, NavigationPath) {
        // Seeds chosen so the walkthrough is long (17 steps) and its
        // working set exceeds the pool — the regime where prefetch
        // accuracy decides stall time, as on the demo machine.
        let circuit =
            CircuitBuilder::new(11).neurons(12).morphology(MorphologyParams::small()).build();
        let path = NavigationPath::along_random_branch(&circuit, 1, 20.0, 8.0)
            .expect("circuit has branches");
        let session = ExplorationSession::new(
            circuit.into_segments(),
            SessionConfig { page_capacity: 32, buffer_pages: 48, ..Default::default() },
        );
        (session, path)
    }

    #[test]
    fn no_prefetch_baseline_misses_everything_first_touch() {
        let (session, path) = setup();
        let stats = session.run(&path, &mut NoPrefetch);
        assert_eq!(stats.method, "none");
        assert_eq!(stats.total_prefetched, 0);
        assert!(stats.total_demand_misses > 0);
        assert!(stats.total_stall_ms > 0.0);
        assert_eq!(stats.steps.len(), path.queries.len());
    }

    #[test]
    fn runs_are_deterministic() {
        let (session, path) = setup();
        let a = session.run(&path, &mut ScoutPrefetcher::default());
        let b = session.run(&path, &mut ScoutPrefetcher::default());
        assert_eq!(a.total_stall_ms, b.total_stall_ms);
        assert_eq!(a.total_prefetched, b.total_prefetched);
        assert_eq!(a.useful_prefetched, b.useful_prefetched);
    }

    #[test]
    fn scout_beats_no_prefetching() {
        let (session, path) = setup();
        let none = session.run(&path, &mut NoPrefetch);
        let scout = session.run(&path, &mut ScoutPrefetcher::default());
        assert!(
            scout.total_stall_ms < none.total_stall_ms,
            "scout stall {} should beat none {}",
            scout.total_stall_ms,
            none.total_stall_ms
        );
        assert!(scout.speedup_over(&none) > 1.0);
        assert!(scout.prefetch_precision() > 0.0);
    }

    #[test]
    fn scout_stalls_less_than_location_only_policies() {
        // The paper's claim (§3): content-aware prediction beats both
        // storage-order and camera-extrapolation prefetching on jagged
        // branch-following walkthroughs. Compare aggregate stall over a
        // few paths to smooth out per-path noise.
        let circuit =
            CircuitBuilder::new(11).neurons(16).morphology(MorphologyParams::small()).build();
        let session = ExplorationSession::new(
            circuit.segments().to_vec(),
            SessionConfig { page_capacity: 32, ..Default::default() },
        );
        let (mut s_scout, mut s_hilbert, mut s_extra) = (0.0, 0.0, 0.0);
        for seed in 0..6 {
            if let Some(path) = NavigationPath::along_random_branch(&circuit, seed, 18.0, 7.0) {
                s_scout += session.run(&path, &mut ScoutPrefetcher::default()).total_stall_ms;
                s_hilbert += session.run(&path, &mut HilbertPrefetcher::default()).total_stall_ms;
                s_extra +=
                    session.run(&path, &mut ExtrapolationPrefetcher::default()).total_stall_ms;
            }
        }
        assert!(s_scout < s_hilbert, "scout {s_scout} should stall less than hilbert {s_hilbert}");
        assert!(
            s_scout < s_extra,
            "scout {s_scout} should stall less than extrapolation {s_extra}"
        );
    }

    #[test]
    fn prefetch_budget_limits_background_io() {
        let (session, path) = setup();
        let tight = SessionConfig { think_time_ms: 1.0, ..*session.config() };
        let tight_session = ExplorationSession::new(
            session.index().page_objects(0).to_vec(), // small dataset reuse
            tight,
        );
        // More simply: same dataset, tight budget.
        let _ = tight_session;
        let config = SessionConfig { think_time_ms: 0.0, page_capacity: 32, ..Default::default() };
        let s2 = ExplorationSession::new(
            {
                let c = CircuitBuilder::new(42).neurons(12).build();
                c.into_segments()
            },
            config,
        );
        let stats = s2.run(&path, &mut ScoutPrefetcher::default());
        assert_eq!(stats.total_prefetched, 0, "zero think time forbids prefetching");
    }

    #[test]
    fn query_results_unaffected_by_prefetching() {
        let (session, path) = setup();
        let a = session.run(&path, &mut NoPrefetch);
        let b = session.run(&path, &mut ScoutPrefetcher::default());
        let ra: Vec<u64> = a.steps.iter().map(|t| t.results).collect();
        let rb: Vec<u64> = b.steps.iter().map(|t| t.results).collect();
        assert_eq!(ra, rb, "prefetching must not change query semantics");
    }

    #[test]
    fn stats_derivations() {
        let s = SessionStats {
            total_demand_hits: 30,
            total_demand_misses: 10,
            total_prefetched: 40,
            useful_prefetched: 30,
            total_stall_ms: 50.0,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert!((s.prefetch_precision() - 0.75).abs() < 1e-12);
        let base = SessionStats { total_stall_ms: 500.0, ..Default::default() };
        assert!((s.speedup_over(&base) - 10.0).abs() < 1e-12);
        let zero = SessionStats::default();
        assert_eq!(zero.hit_ratio(), 0.0);
        assert!(zero.speedup_over(&base).is_infinite());
    }
}
