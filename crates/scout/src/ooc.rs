//! Out-of-core FLAT: the paged engine over the real storage stack.
//!
//! Everything else in this crate *simulates* I/O; this module does it
//! for real. A built [`FlatIndex`] is serialized to a page file
//! ([`write_flat_index`]) — per-page MBRs, the neighborhood CSR and the
//! build parameters in the metadata blob, each page's segments as its
//! page payload — and [`OocFlatIndex`] queries it back through a pinning
//! [`FramePool`] with a configurable frame budget, so the dataset no
//! longer has to fit in RAM.
//!
//! ## Equivalence contract
//!
//! The paged engine replays FLAT's seed-and-crawl *exactly*: the seed
//! tree is rebuilt from the persisted page MBRs with the persisted
//! fan-out (bit-identical input ⇒ identical STR structure ⇒ identical
//! descent), and the crawl follows the persisted CSR in the same order.
//! Results, emission order and the logical query statistics
//! (`seed_nodes_read`, `pages_read`, `objects_tested`, `results`,
//! `links_rejected`, `reseeds`) are byte-identical to the in-memory
//! index the file was written from — the property
//! `tests/ooc_equivalence.rs` proves under proptest. What differs is
//! the [`OocIoTrace`]: cache hits, misses and real wall-clock stall.
//!
//! ## Real background prefetching
//!
//! With `prefetch_workers > 0`, the index runs a background dispatcher
//! thread that fans page reads out over [`Executor::io_bound`] workers.
//! Two producers feed it ahead of the demand stream:
//!
//! - the **crawl frontier**: pages newly admitted to the BFS queue are
//!   enqueued the moment they are discovered, so their reads overlap
//!   with scanning the pages ahead of them in the queue;
//! - the **exploration cursor** ([`OocCursor`]): after each
//!   walkthrough step, the configured [`Prefetcher`] policy (SCOUT,
//!   Hilbert, …) predicts the next regions and their pages are fetched
//!   during the user's think time.
//!
//! A demand read that catches an in-flight prefetch waits only for the
//! remainder of that read — the pool's loading protocol — which is the
//! stall-hiding effect `--scenario=ooc` measures.

use crate::prefetch::{PrefetchContext, Prefetcher};
use crate::session::QueryTrace;
use neurospatial_flat::{FlatBuildParams, FlatIndex, FlatQueryStats, PackingStrategy};
use neurospatial_geom::{Aabb, Executor, Flow, Vec3};
use neurospatial_model::NeuronSegment;
use neurospatial_rtree::{EpochMarks, RTree, RTreeObject, RTreeParams, TraversalScratch};
use neurospatial_storage::{
    with_retry_sleeping, EvictionPolicy, FramePool, PageFile, PageFileWriter, PageIo, RetryPolicy,
    StorageError, PAGE_HEADER_BYTES,
};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Magic of the FLAT metadata blob inside a page file.
pub const FLAT_META_MAGIC: [u8; 4] = *b"FLTM";
/// Version of the FLAT metadata layout.
pub const FLAT_META_VERSION: u32 = 1;
/// Bytes per serialized segment record (same layout as `model::io`):
/// id, neuron, section, index, reserved, then 7 `f64` geometry fields.
pub const SEGMENT_RECORD_BYTES: usize = 8 + 4 + 4 + 4 + 4 + 7 * 8;

// --- Serialization ------------------------------------------------------

fn encode_segment(s: &NeuronSegment, out: &mut Vec<u8>) {
    out.extend_from_slice(&s.id.to_le_bytes());
    out.extend_from_slice(&s.neuron.to_le_bytes());
    out.extend_from_slice(&s.section.to_le_bytes());
    out.extend_from_slice(&s.index_on_section.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    for v in [
        s.geom.p0.x,
        s.geom.p0.y,
        s.geom.p0.z,
        s.geom.p1.x,
        s.geom.p1.y,
        s.geom.p1.z,
        s.geom.radius,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Cursor over a byte slice with total (never-panicking) primitive reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StorageError::Corrupt("metadata ends mid-field".to_string()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

fn decode_page_segments(
    payload: &[u8],
    page: u64,
    out: &mut Vec<NeuronSegment>,
) -> Result<(), StorageError> {
    out.clear();
    if !payload.len().is_multiple_of(SEGMENT_RECORD_BYTES) {
        return Err(StorageError::Corrupt(format!(
            "page {page}: payload of {} bytes is not a whole number of records",
            payload.len()
        )));
    }
    let mut r = Reader::new(payload);
    for i in 0..payload.len() / SEGMENT_RECORD_BYTES {
        let id = r.u64()?;
        let neuron = r.u32()?;
        let section = r.u32()?;
        let index_on_section = r.u32()?;
        let _reserved = r.u32()?;
        let p0 = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
        let p1 = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
        let radius = r.f64()?;
        let geom = neurospatial_geom::Segment { p0, p1, radius };
        if !geom.is_valid() {
            return Err(StorageError::Corrupt(format!(
                "page {page}: record {i} has non-finite geometry"
            )));
        }
        out.push(NeuronSegment { id, neuron, section, index_on_section, geom });
    }
    Ok(())
}

/// Serialize a built FLAT index to a page file at `path`.
///
/// Page `p` of the file holds page `p`'s segments as fixed-size records
/// ([`SEGMENT_RECORD_BYTES`] each);
/// the metadata blob holds the build parameters, every page MBR and the
/// neighborhood CSR — everything [`OocFlatIndex::open`] needs to replay
/// queries without the in-memory index.
pub fn write_flat_index(index: &FlatIndex<NeuronSegment>, path: &Path) -> Result<(), StorageError> {
    let params = index.params();
    let page_size = PAGE_HEADER_BYTES + params.page_capacity * SEGMENT_RECORD_BYTES;
    let mut w = PageFileWriter::create(path, page_size)?;
    let mut payload = Vec::with_capacity(page_size);
    for page in 0..index.page_count() as u32 {
        payload.clear();
        for s in index.page_objects(page) {
            encode_segment(s, &mut payload);
        }
        w.append_page(&payload)?;
    }

    let (offsets, ids) = index.neighbor_csr();
    let mut meta = Vec::new();
    meta.extend_from_slice(&FLAT_META_MAGIC);
    meta.extend_from_slice(&FLAT_META_VERSION.to_le_bytes());
    meta.extend_from_slice(&(params.page_capacity as u32).to_le_bytes());
    meta.extend_from_slice(&(params.seed_fanout as u32).to_le_bytes());
    meta.extend_from_slice(&params.hilbert_bits.to_le_bytes());
    let packing: u32 = match params.packing {
        PackingStrategy::Hilbert => 0,
        PackingStrategy::Morton => 1,
        PackingStrategy::CoordinateSort => 2,
    };
    meta.extend_from_slice(&packing.to_le_bytes());
    meta.extend_from_slice(&params.neighbor_epsilon.to_le_bytes());
    meta.extend_from_slice(&(index.len() as u64).to_le_bytes());
    meta.extend_from_slice(&(index.page_count() as u64).to_le_bytes());
    for page in 0..index.page_count() as u32 {
        let mbr = index.page_mbr(page);
        for v in [mbr.lo.x, mbr.lo.y, mbr.lo.z, mbr.hi.x, mbr.hi.y, mbr.hi.z] {
            meta.extend_from_slice(&v.to_le_bytes());
        }
    }
    for &o in offsets {
        meta.extend_from_slice(&o.to_le_bytes());
    }
    for &n in ids {
        meta.extend_from_slice(&n.to_le_bytes());
    }
    w.finish(&meta)
}

// --- Configuration ------------------------------------------------------

/// How to open an [`OocFlatIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocConfig {
    /// Buffer-pool budget in frames (pages held in RAM at once).
    /// `0` means "all pages" — a fully cached, still checksum-verified
    /// run.
    pub frame_budget: usize,
    /// Replacement policy of the frame pool.
    pub eviction: EvictionPolicy,
    /// Background prefetch workers. `0` disables prefetching entirely
    /// (every page read is a demand read).
    pub prefetch_workers: usize,
    /// Verify every page's checksum once at open (in addition to the
    /// always-on per-read verification). Keeps the infallible facade
    /// honest: with this on, a corrupt file cannot get past `open`.
    /// The sweep covers the *whole* file and reports every bad page in
    /// one [`StorageError::BadPages`], so operators see the full blast
    /// radius in a single pass.
    pub validate_pages: bool,
    /// Bounded-retry policy for transient page-read failures (`EINTR`,
    /// `EWOULDBLOCK`, timeouts). Permanent errors — checksum mismatches,
    /// structural corruption — are never retried.
    pub retry: RetryPolicy,
}

impl Default for OocConfig {
    fn default() -> Self {
        OocConfig {
            frame_budget: 0,
            eviction: EvictionPolicy::Clock,
            prefetch_workers: 0,
            validate_pages: true,
            retry: RetryPolicy::default(),
        }
    }
}

impl OocConfig {
    /// Set the frame budget (in frames).
    pub fn with_frame_budget(mut self, frames: usize) -> Self {
        self.frame_budget = frames;
        self
    }

    /// Set the eviction policy.
    pub fn with_eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Set the number of background prefetch workers.
    pub fn with_prefetch_workers(mut self, workers: usize) -> Self {
        self.prefetch_workers = workers;
        self
    }

    /// Set the transient-I/O retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

// --- The paged index ----------------------------------------------------

/// Seed-tree entry: one page's MBR (mirror of the in-memory index's
/// private `PageEntry`).
#[derive(Debug, Clone, Copy)]
struct OocPageEntry {
    mbr: Aabb,
    page: u32,
}

impl RTreeObject for OocPageEntry {
    fn aabb(&self) -> Aabb {
        self.mbr
    }
}

/// Real I/O counters of one paged query — the part of the statistics
/// that legitimately differs from the in-memory engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OocIoTrace {
    /// Wall-clock nanoseconds the query spent blocked on page reads
    /// (demand misses plus waits for in-flight prefetches).
    pub stall_ns: u64,
    /// Demand page requests served from the frame pool.
    pub cache_hits: u64,
    /// Demand page requests that went to disk.
    pub cache_misses: u64,
    /// Demand hits whose frame had been loaded by a prefetch.
    pub prefetch_hits: u64,
    /// Frames evicted while this query ran (pool-wide, so concurrent
    /// background prefetching is included).
    pub evictions: u64,
    /// Pages handed to the background prefetcher by the crawl frontier.
    pub prefetch_enqueued: u64,
    /// Transient page-read failures recovered by the bounded-retry
    /// path during this query.
    pub retries: u64,
    /// Quarantined pages this query skipped (only in
    /// partial-results mode; a strict query fails instead).
    pub pages_quarantined: u64,
}

/// Statistics of one paged query: FLAT's logical counters (byte-identical
/// to the in-memory engine) plus the real I/O trace.
#[derive(Debug, Clone, Default)]
pub struct OocQueryStats {
    /// The logical seed-and-crawl counters.
    pub flat: FlatQueryStats,
    /// The physical I/O counters.
    pub io: OocIoTrace,
}

/// Reusable per-query state of the paged engine: crawl front, visited
/// marks, seed-tree scratch and the page-decode buffer.
#[derive(Debug, Default)]
pub struct OocScratch {
    queue: VecDeque<u32>,
    visited: EpochMarks,
    seed: TraversalScratch,
    segs: Vec<NeuronSegment>,
    frontier: Vec<u32>,
}

impl OocScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug, Default)]
struct PrefetchQueue {
    pages: VecDeque<u32>,
    shutdown: bool,
}

struct PrefetchShared {
    queue: Mutex<PrefetchQueue>,
    ready: Condvar,
}

/// Cap on the dispatcher's backlog: beyond this, newly discovered pages
/// are dropped rather than queued — a prefetcher that cannot keep up
/// must not grow an unbounded queue of stale predictions.
const PREFETCH_QUEUE_CAP: usize = 4096;
/// Pages the dispatcher drains per batch before fanning out.
const PREFETCH_BATCH: usize = 64;

/// Process-wide prefetch dispatch counters (page-level load outcomes
/// live under `storage_frame_*`; these count the hand-off itself).
struct ScoutPrefetchObs {
    enqueued: std::sync::Arc<neurospatial_obs::Counter>,
    dropped: std::sync::Arc<neurospatial_obs::Counter>,
}

fn scout_prefetch_obs() -> &'static ScoutPrefetchObs {
    static OBS: std::sync::OnceLock<ScoutPrefetchObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| ScoutPrefetchObs {
        enqueued: neurospatial_obs::global().counter("scout_prefetch_enqueued_total"),
        dropped: neurospatial_obs::global().counter("scout_prefetch_dropped_total"),
    })
}

struct PrefetchHandle {
    shared: Arc<PrefetchShared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl PrefetchHandle {
    fn spawn(workers: usize, file: Arc<dyn PageIo>, pool: Arc<FramePool>) -> Self {
        let shared = Arc::new(PrefetchShared {
            queue: Mutex::new(PrefetchQueue::default()),
            ready: Condvar::new(),
        });
        let shared2 = Arc::clone(&shared);
        let dispatcher = std::thread::spawn(move || {
            let exec = Executor::io_bound(workers);
            let mut batch: Vec<u32> = Vec::with_capacity(PREFETCH_BATCH);
            loop {
                {
                    let mut q = shared2.queue.lock().unwrap_or_else(|p| p.into_inner());
                    while q.pages.is_empty() && !q.shutdown {
                        q = shared2.ready.wait(q).unwrap_or_else(|p| p.into_inner());
                    }
                    if q.shutdown {
                        return;
                    }
                    batch.clear();
                    while batch.len() < PREFETCH_BATCH {
                        match q.pages.pop_front() {
                            Some(p) => batch.push(p),
                            None => break,
                        }
                    }
                }
                // Real background page reads, fanned out over io-bound
                // Executor workers. Best-effort: a corrupt or missing
                // page is simply not cached — the demand path will
                // surface the typed error.
                let file = &file;
                let pool = &pool;
                let batch_ref = &batch;
                exec.map_chunks(batch.len(), |range| {
                    for &page in &batch_ref[range] {
                        let _ = pool.prefetch(u64::from(page), file.as_ref());
                    }
                });
            }
        });
        PrefetchHandle { shared, dispatcher: Some(dispatcher) }
    }

    /// Queue pages for background loading; returns how many were
    /// accepted (the backlog cap may drop the rest).
    fn enqueue(&self, pages: &[u32]) -> u64 {
        if pages.is_empty() {
            return 0;
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        let mut accepted = 0;
        for &p in pages {
            if q.pages.len() >= PREFETCH_QUEUE_CAP {
                break;
            }
            q.pages.push_back(p);
            accepted += 1;
        }
        drop(q);
        scout_prefetch_obs().enqueued.add(accepted);
        scout_prefetch_obs().dropped.add(pages.len() as u64 - accepted);
        if accepted > 0 {
            self.shared.ready.notify_all();
        }
        accepted
    }
}

impl Drop for PrefetchHandle {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.shutdown = true;
        }
        self.ready_all();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl PrefetchHandle {
    fn ready_all(&self) {
        self.shared.ready.notify_all();
    }
}

/// The out-of-core FLAT index: queries a page file through a pinning
/// frame pool, optionally with real background prefetching.
///
/// Results and logical statistics are byte-identical to the
/// [`FlatIndex`] the file was written from (see the [module
/// docs](self)); all fallible surface area is typed — a corrupt file
/// fails [`open`](Self::open), and a page that rots afterwards fails
/// the individual query with [`StorageError::PageChecksum`].
pub struct OocFlatIndex {
    file: Arc<dyn PageIo>,
    pool: Arc<FramePool>,
    params: FlatBuildParams,
    object_count: u64,
    page_mbrs: Vec<Aabb>,
    neighbor_offsets: Vec<u32>,
    neighbor_ids: Vec<u32>,
    seed_tree: RTree<OocPageEntry>,
    prefetch: Option<PrefetchHandle>,
    retry: RetryPolicy,
    path: PathBuf,
    delete_on_drop: bool,
}

impl std::fmt::Debug for OocFlatIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OocFlatIndex")
            .field("path", &self.path)
            .field("objects", &self.object_count)
            .field("pages", &self.page_mbrs.len())
            .field("frame_budget", &self.pool.capacity())
            .field("eviction", &self.pool.policy())
            .field("prefetch", &self.prefetch.is_some())
            .finish()
    }
}

impl OocFlatIndex {
    /// Open a page file written by [`write_flat_index`].
    ///
    /// Total on untrusted input: any structural problem — page-file
    /// corruption, a foreign metadata blob, inconsistent CSR, and (with
    /// [`OocConfig::validate_pages`]) any corrupt page — returns a typed
    /// [`StorageError`].
    pub fn open(path: &Path, config: OocConfig) -> Result<Self, StorageError> {
        Self::open_with(path, config, |file| Arc::new(file))
    }

    /// Like [`open`](Self::open), but page reads go through the
    /// [`PageIo`] returned by `wrap` instead of the raw [`PageFile`] —
    /// the seam the chaos suite uses to interpose a fault-injecting
    /// [`FaultFile`](neurospatial_storage::FaultFile). Header and
    /// metadata parsing always read the real file (they happen before
    /// `wrap` runs); the open-time validation sweep, demand reads and
    /// prefetches all go through the wrapper.
    pub fn open_with<W>(path: &Path, config: OocConfig, wrap: W) -> Result<Self, StorageError>
    where
        W: FnOnce(PageFile) -> Arc<dyn PageIo>,
    {
        let file = PageFile::open(path)?;
        let mut r = Reader::new(file.meta());
        if r.take(4)? != FLAT_META_MAGIC {
            return Err(StorageError::Corrupt("not a FLAT metadata blob".to_string()));
        }
        let version = r.u32()?;
        if version != FLAT_META_VERSION {
            return Err(StorageError::BadVersion(version));
        }
        let page_capacity = r.u32()? as usize;
        let seed_fanout = r.u32()? as usize;
        let hilbert_bits = r.u32()?;
        let packing = match r.u32()? {
            0 => PackingStrategy::Hilbert,
            1 => PackingStrategy::Morton,
            2 => PackingStrategy::CoordinateSort,
            other => {
                return Err(StorageError::Corrupt(format!("unknown packing strategy {other}")))
            }
        };
        let neighbor_epsilon = r.f64()?;
        let object_count = r.u64()?;
        let page_count = r.u64()?;
        if page_count != file.page_count() {
            return Err(StorageError::Corrupt(format!(
                "metadata declares {page_count} pages, file holds {}",
                file.page_count()
            )));
        }
        if page_count > (1 << 32) - 1 {
            return Err(StorageError::Corrupt(format!("{page_count} pages exceed u32 ids")));
        }
        if page_capacity == 0
            || !(1..=64).contains(&hilbert_bits)
            || seed_fanout < 2
            || !neighbor_epsilon.is_finite()
            || neighbor_epsilon < 0.0
        {
            return Err(StorageError::Corrupt("implausible build parameters".to_string()));
        }
        let n = page_count as usize;
        let mut page_mbrs = Vec::with_capacity(n);
        for _ in 0..n {
            let lo = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
            let hi = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
            // Exact roundtrip: the writer dumped lo/hi verbatim, so the
            // struct literal (no re-ordering) reproduces the original
            // bits.
            page_mbrs.push(Aabb { lo, hi });
        }
        let mut neighbor_offsets = Vec::with_capacity(n + 1);
        for _ in 0..n + 1 {
            neighbor_offsets.push(r.u32()?);
        }
        let link_count = *neighbor_offsets.last().unwrap_or(&0) as usize;
        if neighbor_offsets.first().copied().unwrap_or(0) != 0
            || neighbor_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(StorageError::Corrupt("neighbor offsets not monotonic".to_string()));
        }
        let mut neighbor_ids = Vec::with_capacity(link_count);
        for _ in 0..link_count {
            let id = r.u32()?;
            if u64::from(id) >= page_count {
                return Err(StorageError::Corrupt(format!("neighbor id {id} out of range")));
            }
            neighbor_ids.push(id);
        }
        if r.pos != file.meta().len() {
            return Err(StorageError::Corrupt(format!(
                "{} trailing metadata bytes",
                file.meta().len() - r.pos
            )));
        }

        let params =
            FlatBuildParams { page_capacity, packing, neighbor_epsilon, hilbert_bits, seed_fanout };

        // Rebuild the seed tree exactly as the in-memory build does:
        // same entries, same order, same fan-out, frozen — so seed
        // descents and re-seed scans visit the same nodes and return the
        // same counters.
        let entries: Vec<OocPageEntry> = page_mbrs
            .iter()
            .enumerate()
            .map(|(i, &mbr)| OocPageEntry { mbr, page: i as u32 })
            .collect();
        let mut seed_tree = RTree::bulk_load(entries, RTreeParams::with_max_entries(seed_fanout));
        seed_tree.freeze();

        let frames = if config.frame_budget == 0 { n.max(1) } else { config.frame_budget };
        let pool = Arc::new(FramePool::new(frames, config.eviction));
        let file: Arc<dyn PageIo> = wrap(file);

        if config.validate_pages {
            // One sequential checksum pass over every page, and a record
            // count cross-check against the declared object count. After
            // this, only post-open rot or OS-level I/O failure can make
            // a query fail. The sweep never aborts early: every bad page
            // is collected so the error reports the full blast radius.
            let mut buf = Vec::new();
            let mut segs = Vec::new();
            let mut total = 0u64;
            let mut bad_pages = Vec::new();
            for page in 0..page_count {
                let (res, _retries) = with_retry_sleeping(&config.retry, page, || {
                    file.read_page_into(page, &mut buf)
                });
                match res.and_then(|()| decode_page_segments(&buf, page, &mut segs)) {
                    Ok(()) => total += segs.len() as u64,
                    Err(e) if e.is_transient() => return Err(e),
                    Err(_) => bad_pages.push(page),
                }
            }
            if !bad_pages.is_empty() {
                return Err(StorageError::BadPages { pages: bad_pages });
            }
            if total != object_count {
                return Err(StorageError::Corrupt(format!(
                    "pages hold {total} records, metadata declares {object_count}"
                )));
            }
        }

        let prefetch = (config.prefetch_workers > 0).then(|| {
            PrefetchHandle::spawn(config.prefetch_workers, Arc::clone(&file), Arc::clone(&pool))
        });

        Ok(OocFlatIndex {
            file,
            pool,
            params,
            object_count,
            page_mbrs,
            neighbor_offsets,
            neighbor_ids,
            seed_tree,
            prefetch,
            retry: config.retry,
            path: path.to_path_buf(),
            delete_on_drop: false,
        })
    }

    /// Re-validate every page through the current I/O stack, reporting
    /// *all* bad pages in one [`StorageError::BadPages`] — the
    /// blast-radius sweep operators run after suspected rot. Transient
    /// failures are retried under the configured policy; an
    /// unrecoverable transient error aborts the sweep.
    pub fn validate_pages(&self) -> Result<(), StorageError> {
        let mut buf = Vec::new();
        let mut segs = Vec::new();
        let mut bad_pages = Vec::new();
        for page in 0..self.page_mbrs.len() as u64 {
            let (res, _retries) =
                with_retry_sleeping(&self.retry, page, || self.file.read_page_into(page, &mut buf));
            match res.and_then(|()| decode_page_segments(&buf, page, &mut segs)) {
                Ok(()) => {}
                Err(e) if e.is_transient() => return Err(e),
                Err(_) => bad_pages.push(page),
            }
        }
        if bad_pages.is_empty() {
            Ok(())
        } else {
            Err(StorageError::BadPages { pages: bad_pages })
        }
    }

    /// Pages the pool has quarantined after permanent read failures,
    /// ascending. Queries in partial mode skip these; strict queries
    /// touching them fail with [`StorageError::Quarantined`].
    pub fn quarantined_pages(&self) -> Vec<u64> {
        self.pool.quarantined()
    }

    /// Delete the page file when this index is dropped (used for
    /// facade-managed temporary spill files).
    pub fn set_delete_on_drop(&mut self, delete: bool) {
        self.delete_on_drop = delete;
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.object_count as usize
    }

    /// True when the index holds no objects.
    pub fn is_empty(&self) -> bool {
        self.object_count == 0
    }

    /// Number of data pages.
    pub fn page_count(&self) -> usize {
        self.page_mbrs.len()
    }

    /// Bounding box of all objects (seed-tree root MBR).
    pub fn bounds(&self) -> Aabb {
        self.seed_tree.root_mbr()
    }

    /// The persisted build parameters.
    pub fn params(&self) -> &FlatBuildParams {
        &self.params
    }

    /// The backing page file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The frame pool (budget, policy, counters).
    pub fn pool(&self) -> &FramePool {
        &self.pool
    }

    /// Whether background prefetch workers are running.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch.is_some()
    }

    /// Seed-tree height (the seed phase cost bound).
    pub fn seed_tree_height(&self) -> usize {
        self.seed_tree.height()
    }

    /// Ids of all pages whose MBR intersects `q` (metadata only — no
    /// page I/O). Prefetch policies use this to translate predicted
    /// regions into pages.
    pub fn pages_intersecting(&self, q: &Aabb) -> Vec<u32> {
        let (entries, _) = self.seed_tree.range_query(q);
        entries.into_iter().map(|e| e.page).collect()
    }

    /// Resident memory of the paged engine: frames + metadata + seed
    /// tree (the segments themselves live on disk).
    pub fn memory_bytes(&self) -> usize {
        self.pool.capacity() * self.file.page_size()
            + self.page_mbrs.capacity() * std::mem::size_of::<Aabb>()
            + (self.neighbor_offsets.capacity() + self.neighbor_ids.capacity()) * 4
            + self.seed_tree.memory_bytes()
    }

    fn neighbors_of(&self, page: u32) -> &[u32] {
        let a = self.neighbor_offsets[page as usize] as usize;
        let b = self.neighbor_offsets[page as usize + 1] as usize;
        &self.neighbor_ids[a..b]
    }

    /// Hand pages to the background prefetcher (no-op without workers).
    /// Returns how many the backlog accepted.
    pub fn prefetch_pages(&self, pages: &[u32]) -> u64 {
        match &self.prefetch {
            Some(h) => h.enqueue(pages),
            None => 0,
        }
    }

    /// Streaming seed-and-crawl over the page file — the paged
    /// equivalent of [`FlatIndex::range_query_stream`]. `on_page` fires
    /// once per data page in crawl order; `sink` controls the stream
    /// ([`Flow::Emit`]/[`Flow::Skip`]/[`Flow::Last`]).
    pub fn range_query_stream<F, S>(
        &self,
        q: &Aabb,
        scratch: &mut OocScratch,
        on_page: F,
        sink: S,
    ) -> Result<OocQueryStats, StorageError>
    where
        F: FnMut(u32),
        S: FnMut(&NeuronSegment) -> Flow,
    {
        self.range_query_stream_partial(q, scratch, false, on_page, sink)
    }

    /// [`range_query_stream`](Self::range_query_stream) with an explicit
    /// degradation mode. With `allow_partial = false` a page that fails
    /// permanently (after transient retries) is quarantined and the
    /// query fails with the typed error. With `allow_partial = true` the
    /// failed page's objects are skipped but its neighbor links are
    /// still crawled (the CSR lives in RAM), the query completes, and
    /// `io.pages_quarantined` reports how many pages were lost — a
    /// correctly-labeled partial result instead of a failure.
    pub fn range_query_stream_partial<F, S>(
        &self,
        q: &Aabb,
        scratch: &mut OocScratch,
        allow_partial: bool,
        mut on_page: F,
        mut sink: S,
    ) -> Result<OocQueryStats, StorageError>
    where
        F: FnMut(u32),
        S: FnMut(&NeuronSegment) -> Flow,
    {
        let mut stats = OocQueryStats::default();
        if self.page_mbrs.is_empty() {
            return Ok(stats);
        }
        let pool_before = self.pool.stats();
        let mut stall_ns = 0u64;
        scratch.queue.clear();
        scratch.visited.begin(self.page_mbrs.len());
        scratch.frontier.clear();
        let OocScratch { queue, visited, seed, segs, frontier } = scratch;

        let finish = |mut stats: OocQueryStats, stall_ns: u64, pool: &FramePool, enq: u64| {
            let after = pool.stats();
            stats.io.stall_ns = stall_ns;
            stats.io.cache_hits = after.hits - pool_before.hits;
            stats.io.cache_misses = after.misses - pool_before.misses;
            stats.io.prefetch_hits = after.prefetch_hits - pool_before.prefetch_hits;
            stats.io.evictions = after.evictions - pool_before.evictions;
            stats.io.prefetch_enqueued = enq;
            stats
        };
        let mut enqueued = 0u64;

        // --- Seed ---------------------------------------------------------
        let (seed_hit, seed_counters) = self.seed_tree.first_hit_scratch(q, seed);
        stats.flat.seed_nodes_read += seed_counters.nodes_visited;
        let Some(first) = seed_hit else {
            return Ok(finish(stats, stall_ns, &self.pool, enqueued));
        };
        visited.mark(first.page as usize);
        queue.push_back(first.page);

        // --- Crawl (with exactness-preserving re-seeding) ------------------
        loop {
            while let Some(page) = queue.pop_front() {
                stats.flat.pages_read += 1;
                on_page(page);

                // The real page read: pin (retrying transient faults
                // under the configured policy), decode, scan. The pin is
                // held only while the page is scanned, so even a
                // one-frame budget can execute any query.
                let t = Instant::now();
                let (res, tries) = with_retry_sleeping(&self.retry, u64::from(page), || {
                    self.pool.get(u64::from(page), self.file.as_ref())
                });
                stall_ns += t.elapsed().as_nanos() as u64;
                stats.io.retries += u64::from(tries);
                let decoded =
                    res.and_then(|guard| decode_page_segments(&guard, u64::from(page), segs));
                if let Err(e) = decoded {
                    if e.is_transient() {
                        // Retries exhausted or frame-budget pressure:
                        // not the page's fault, never quarantine.
                        return Err(e);
                    }
                    // Permanent: quarantine so later demands fail fast
                    // instead of re-reading known-bad bytes.
                    self.pool.quarantine_page(u64::from(page));
                    if !allow_partial {
                        return Err(e);
                    }
                    stats.io.pages_quarantined += 1;
                    segs.clear();
                }

                for o in segs.iter() {
                    stats.flat.objects_tested += 1;
                    if o.aabb().intersects(q) {
                        match sink(o) {
                            Flow::Emit => stats.flat.results += 1,
                            Flow::Skip => {}
                            Flow::Last => {
                                stats.flat.results += 1;
                                return Ok(finish(stats, stall_ns, &self.pool, enqueued));
                            }
                        }
                    }
                }
                frontier.clear();
                for &n in self.neighbors_of(page) {
                    if visited.is_marked(n as usize) {
                        continue;
                    }
                    if self.page_mbrs[n as usize].intersects(q) {
                        visited.mark(n as usize);
                        queue.push_back(n);
                        frontier.push(n);
                    } else {
                        stats.flat.links_rejected += 1;
                    }
                }
                // Crawl-frontier prefetch: the pages just admitted to the
                // BFS queue are read in the background while the queue
                // ahead of them is scanned.
                if let Some(h) = &self.prefetch {
                    enqueued += h.enqueue(frontier);
                }
            }

            let mut reseeded = false;
            let reseed_counters = self.seed_tree.range_query_scratch(q, seed, |entry| {
                if visited.mark(entry.page as usize) {
                    queue.push_back(entry.page);
                    reseeded = true;
                }
            });
            stats.flat.seed_nodes_read += reseed_counters.nodes_visited;
            if reseeded {
                stats.flat.reseeds += 1;
            } else {
                break;
            }
        }

        Ok(finish(stats, stall_ns, &self.pool, enqueued))
    }

    /// Range query collecting owned copies into `out` (cleared first).
    pub fn range_query_into(
        &self,
        q: &Aabb,
        scratch: &mut OocScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> Result<OocQueryStats, StorageError> {
        out.clear();
        self.range_query_stream(
            q,
            scratch,
            |_| {},
            |s| {
                out.push(*s);
                Flow::Emit
            },
        )
    }

    /// A step-wise walkthrough cursor with the given prefetch policy.
    ///
    /// Policy predictions are translated to pages and fetched by the
    /// background workers during think time; without workers the policy
    /// still runs (its predictions are simply dropped), so traces stay
    /// comparable.
    pub fn cursor(&self, prefetcher: Box<dyn Prefetcher>) -> OocCursor<'_> {
        OocCursor {
            index: self,
            prefetcher,
            history: Vec::new(),
            scratch: OocScratch::default(),
            result: Vec::new(),
            pages_read: Vec::new(),
        }
    }
}

impl Drop for OocFlatIndex {
    fn drop(&mut self) {
        // Stop the dispatcher before the file handle goes away.
        self.prefetch = None;
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Step-wise exploration over an [`OocFlatIndex`]: each
/// [`step`](Self::step) answers one moving-range query with real I/O,
/// then lets the prefetch policy schedule background reads for the
/// predicted next step.
pub struct OocCursor<'a> {
    index: &'a OocFlatIndex,
    prefetcher: Box<dyn Prefetcher>,
    history: Vec<Vec3>,
    scratch: OocScratch,
    result: Vec<NeuronSegment>,
    pages_read: Vec<u32>,
}

/// Cap on pages scheduled per think-time prefetch plan. Bounds wasted
/// bandwidth when a policy predicts a huge region.
const CURSOR_PREFETCH_CAP: usize = 256;

impl OocCursor<'_> {
    /// Execute the next query of the walkthrough; returns its trace
    /// (`stall_ms` is real wall-clock stall, not a simulated cost).
    pub fn step(&mut self, q: &Aabb) -> Result<QueryTrace, StorageError> {
        self.result.clear();
        self.pages_read.clear();
        let result = &mut self.result;
        let pages_read = &mut self.pages_read;
        let stats = self.index.range_query_stream(
            q,
            &mut self.scratch,
            |p| pages_read.push(p),
            |s| {
                result.push(*s);
                Flow::Emit
            },
        )?;
        self.history.push(q.center());

        // Think-time prefetch: plan from the step's content, translate
        // regions to pages, hand them to the background workers.
        let mut prefetched = 0u64;
        {
            let refs: Vec<&NeuronSegment> = self.result.iter().collect();
            let ctx = PrefetchContext {
                query: q,
                result: &refs,
                history: &self.history,
                pages_read: &self.pages_read,
            };
            let plan = self.prefetcher.plan(&ctx);
            if self.index.prefetch_enabled() && !plan.is_empty() {
                let mut pages: Vec<u32> = plan.pages;
                for region in &plan.regions {
                    if pages.len() >= CURSOR_PREFETCH_CAP {
                        break;
                    }
                    pages.extend(self.index.pages_intersecting(region));
                }
                pages.truncate(CURSOR_PREFETCH_CAP);
                prefetched = self.index.prefetch_pages(&pages);
            }
        }

        Ok(QueryTrace {
            pages_demanded: stats.flat.pages_read,
            demand_hits: stats.io.cache_hits,
            demand_misses: stats.io.cache_misses,
            stall_ms: stats.io.stall_ns as f64 / 1e6,
            prefetched,
            results: stats.flat.results,
        })
    }

    /// The last step's result set.
    pub fn last_result(&self) -> &[NeuronSegment] {
        &self.result
    }

    /// Forget per-walkthrough state (history and the policy's memory).
    pub fn reset(&mut self) {
        self.history.clear();
        self.prefetcher.reset();
    }
}

// Local import to keep the signature readable.
use std::fmt;

impl fmt::Debug for OocCursor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OocCursor")
            .field("policy", &self.prefetcher.name())
            .field("steps", &self.history.len())
            .finish()
    }
}

/// The paged-equivalence shim: lets the simulator-based
/// [`ExplorationSession`](crate::ExplorationSession) machinery size
/// budgets consistently with the real engine. (The real engine cannot
/// implement [`PagedIndex`](crate::PagedIndex) itself — that trait returns borrowed
/// segments, while paged results are decoded per read.)
pub fn frame_budget_for(page_count: usize, percent: u32) -> usize {
    ((page_count * percent as usize) / 100).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_model::CircuitBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ooc-test-{}-{tag}-{n}.flat", std::process::id()))
    }

    struct TempFile(PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn circuit(neurons: u32) -> Vec<NeuronSegment> {
        CircuitBuilder::new(7).neurons(neurons).build().into_segments()
    }

    fn build(segments: Vec<NeuronSegment>, cap: usize) -> FlatIndex<NeuronSegment> {
        FlatIndex::build(segments, FlatBuildParams::default().with_page_capacity(cap))
    }

    #[test]
    fn roundtrip_preserves_results_and_stats() {
        let segs = circuit(12);
        let mem = build(segs, 32);
        let t = TempFile(temp_path("roundtrip"));
        write_flat_index(&mem, &t.0).expect("write");
        let ooc = OocFlatIndex::open(&t.0, OocConfig::default()).expect("open");
        assert_eq!(ooc.len(), mem.len());
        assert_eq!(ooc.page_count(), mem.page_count());
        assert_eq!(ooc.bounds(), mem.bounds());
        assert_eq!(ooc.params(), mem.params());

        let mut scratch = OocScratch::default();
        let mut fscratch = neurospatial_flat::FlatScratch::default();
        for q in [
            ooc.bounds(),
            Aabb::cube(ooc.bounds().center(), 40.0),
            Aabb::cube(Vec3::new(1e6, 1e6, 1e6), 1.0),
        ] {
            let mut want: Vec<NeuronSegment> = Vec::new();
            let mut want_pages = Vec::new();
            let want_stats = mem.range_query_scratch(
                &q,
                &mut fscratch,
                |p| want_pages.push(p),
                |s| want.push(*s),
            );
            let mut got: Vec<NeuronSegment> = Vec::new();
            let mut got_pages = Vec::new();
            let got_stats = ooc
                .range_query_stream(
                    &q,
                    &mut scratch,
                    |p| got_pages.push(p),
                    |s| {
                        got.push(*s);
                        Flow::Emit
                    },
                )
                .expect("paged query");
            assert_eq!(got, want, "result set at {q}");
            assert_eq!(got_pages, want_pages, "crawl order at {q}");
            assert_eq!(got_stats.flat, want_stats, "stats at {q}");
        }
    }

    #[test]
    fn one_frame_budget_is_exact() {
        let segs = circuit(8);
        let mem = build(segs, 16);
        let t = TempFile(temp_path("oneframe"));
        write_flat_index(&mem, &t.0).expect("write");
        let ooc =
            OocFlatIndex::open(&t.0, OocConfig::default().with_frame_budget(1)).expect("open");
        let q = Aabb::cube(mem.bounds().center(), 60.0);
        let (want, _) = mem.range_query(&q);
        let mut scratch = OocScratch::default();
        let mut got = Vec::new();
        let stats = ooc.range_query_into(&q, &mut scratch, &mut got).expect("query");
        assert_eq!(got.len(), want.len());
        assert!(got.iter().zip(&want).all(|(a, b)| a == *b));
        assert_eq!(stats.io.cache_hits + stats.io.cache_misses, stats.flat.pages_read);
    }

    #[test]
    fn background_prefetch_keeps_queries_exact() {
        let segs = circuit(10);
        let mem = build(segs, 16);
        let t = TempFile(temp_path("prefetch"));
        write_flat_index(&mem, &t.0).expect("write");
        let budget = frame_budget_for(mem.page_count(), 10);
        let ooc = OocFlatIndex::open(
            &t.0,
            OocConfig::default().with_frame_budget(budget).with_prefetch_workers(2),
        )
        .expect("open");
        let mut scratch = OocScratch::default();
        let mut got = Vec::new();
        for step in 0..12 {
            let c = mem.bounds().center();
            let q = Aabb::cube(Vec3::new(c.x + step as f64 * 3.0, c.y, c.z), 25.0);
            let (want, want_stats) = mem.range_query(&q);
            let stats = ooc.range_query_into(&q, &mut scratch, &mut got).expect("query");
            assert_eq!(got.len(), want.len(), "step {step}");
            assert!(got.iter().zip(&want).all(|(a, b)| a == *b), "step {step}");
            assert_eq!(stats.flat.results, want_stats.results);
            assert_eq!(stats.flat.pages_read, want_stats.pages_read);
        }
    }

    #[test]
    fn cursor_walkthrough_traces() {
        let segs = circuit(8);
        let mem = build(segs, 16);
        let t = TempFile(temp_path("cursor"));
        write_flat_index(&mem, &t.0).expect("write");
        let ooc = OocFlatIndex::open(
            &t.0,
            OocConfig::default()
                .with_frame_budget(frame_budget_for(mem.page_count(), 50))
                .with_prefetch_workers(2),
        )
        .expect("open");
        let mut cur = ooc.cursor(Box::new(crate::prefetch::ScoutPrefetcher::default()));
        // Anchor the walkthrough on real data: the first object of page 0.
        let c = mem.page_objects(0)[0].aabb().center();
        let mut total_results = 0u64;
        for step in 0..8 {
            let q = Aabb::cube(Vec3::new(c.x, c.y + step as f64 * 4.0, c.z), 20.0);
            let trace = cur.step(&q).expect("step");
            assert_eq!(trace.demand_hits + trace.demand_misses, trace.pages_demanded);
            assert_eq!(trace.results as usize, cur.last_result().len());
            total_results += trace.results;
        }
        assert!(total_results > 0, "walkthrough crossed data");
    }

    #[test]
    fn empty_index_roundtrips() {
        let mem = build(Vec::new(), 16);
        let t = TempFile(temp_path("empty"));
        write_flat_index(&mem, &t.0).expect("write");
        let ooc = OocFlatIndex::open(&t.0, OocConfig::default()).expect("open");
        assert!(ooc.is_empty());
        let mut scratch = OocScratch::default();
        let mut got = Vec::new();
        let stats = ooc
            .range_query_into(&Aabb::cube(Vec3::ZERO, 5.0), &mut scratch, &mut got)
            .expect("query");
        assert!(got.is_empty());
        assert_eq!(stats.flat, FlatQueryStats::default());
    }

    #[test]
    fn foreign_meta_is_rejected() {
        let t = TempFile(temp_path("foreign"));
        let mut w = PageFileWriter::create(&t.0, 1040).expect("create");
        w.append_page(&[0u8; 64]).expect("page");
        w.finish(b"not flat metadata").expect("finish");
        let err = OocFlatIndex::open(&t.0, OocConfig::default()).expect_err("foreign");
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn bit_flipped_page_fails_open_validation() {
        let segs = circuit(4);
        let mem = build(segs, 16);
        let t = TempFile(temp_path("flip"));
        write_flat_index(&mem, &t.0).expect("write");
        let mut bytes = std::fs::read(&t.0).expect("read");
        // Flip a payload bit of page 0.
        bytes[neurospatial_storage::FILE_HEADER_BYTES + PAGE_HEADER_BYTES + 9] ^= 0x04;
        std::fs::write(&t.0, &bytes).expect("write");
        let err = OocFlatIndex::open(&t.0, OocConfig::default()).expect_err("corrupt page");
        assert_eq!(err, StorageError::BadPages { pages: vec![0] });
        // Lazy open defers the error to the query that touches the page.
        let lazy = OocConfig { validate_pages: false, ..OocConfig::default() };
        let ooc = OocFlatIndex::open(&t.0, lazy).expect("lazy open");
        let mut scratch = OocScratch::default();
        let mut out = Vec::new();
        let err = ooc
            .range_query_into(&ooc.bounds(), &mut scratch, &mut out)
            .expect_err("query hits the bad page");
        assert!(matches!(err, StorageError::PageChecksum { .. }));
        // The failed page is now quarantined: the re-query fails fast
        // with the quarantine error, and the standalone sweep reports it.
        assert_eq!(ooc.quarantined_pages(), vec![0]);
        let err =
            ooc.range_query_into(&ooc.bounds(), &mut scratch, &mut out).expect_err("still refused");
        assert_eq!(err, StorageError::Quarantined { pages: vec![0] });
        assert_eq!(ooc.validate_pages(), Err(StorageError::BadPages { pages: vec![0] }));
    }

    #[test]
    fn validation_sweep_reports_every_bad_page_at_once() {
        let segs = circuit(10);
        let mem = build(segs, 8);
        let t = TempFile(temp_path("sweep"));
        write_flat_index(&mem, &t.0).expect("write");
        assert!(mem.page_count() >= 4, "need several pages to tear");
        neurospatial_storage::tear_page(&t.0, 1).expect("tear 1");
        neurospatial_storage::tear_page(&t.0, 3).expect("tear 3");
        let err = OocFlatIndex::open(&t.0, OocConfig::default()).expect_err("two bad pages");
        assert_eq!(err, StorageError::BadPages { pages: vec![1, 3] });
    }

    #[test]
    fn transient_faults_recover_to_byte_identical_results() {
        use neurospatial_storage::{FaultFile, FaultPlan};
        let segs = circuit(10);
        let mem = build(segs, 16);
        let t = TempFile(temp_path("transient"));
        write_flat_index(&mem, &t.0).expect("write");
        // Every read window faults, bursts up to 2 — the default
        // 4-attempt policy always recovers.
        let plan = FaultPlan::new(11).with_transient_permille(1000).with_max_consecutive(2);
        let ooc = OocFlatIndex::open_with(&t.0, OocConfig::default().with_frame_budget(2), |f| {
            Arc::new(FaultFile::new(f, plan))
        })
        .expect("open recovers transient faults during validation");
        let q = Aabb::cube(mem.bounds().center(), 60.0);
        let (want, _) = mem.range_query(&q);
        let mut scratch = OocScratch::default();
        let mut got = Vec::new();
        let stats = ooc.range_query_into(&q, &mut scratch, &mut got).expect("query recovers");
        assert_eq!(got.len(), want.len());
        assert!(got.iter().zip(&want).all(|(a, b)| a == *b), "byte-identical despite faults");
        assert!(stats.io.retries > 0, "the fault storm forced retries");
        assert_eq!(stats.io.pages_quarantined, 0);
        assert!(ooc.quarantined_pages().is_empty());
    }

    #[test]
    fn partial_mode_skips_quarantined_pages_and_labels_the_result() {
        use neurospatial_storage::{FaultFile, FaultPlan};
        let segs = circuit(10);
        let mem = build(segs, 8);
        let t = TempFile(temp_path("partial"));
        write_flat_index(&mem, &t.0).expect("write");
        assert!(mem.page_count() >= 3);
        let plan = FaultPlan::new(5).with_corrupt_pages(vec![1]);
        let lazy = OocConfig { validate_pages: false, ..OocConfig::default() };
        let ooc = OocFlatIndex::open_with(&t.0, lazy, |f| Arc::new(FaultFile::new(f, plan)))
            .expect("lazy open");
        let q = ooc.bounds();
        let mut scratch = OocScratch::default();

        // Strict mode: typed failure, page quarantined.
        let mut out = Vec::new();
        let err = ooc.range_query_into(&q, &mut scratch, &mut out).expect_err("strict fails");
        assert_eq!(err, StorageError::PageChecksum { page: 1 });
        assert_eq!(ooc.quarantined_pages(), vec![1]);

        // Partial mode: completes, labels the loss, and returns exactly
        // the objects of the surviving pages in crawl order.
        let mut got = Vec::new();
        let stats = ooc
            .range_query_stream_partial(
                &q,
                &mut scratch,
                true,
                |_| {},
                |s| {
                    got.push(*s);
                    Flow::Emit
                },
            )
            .expect("partial completes");
        assert_eq!(stats.io.pages_quarantined, 1);
        let lost: Vec<u64> = mem.page_objects(1).iter().map(|s| s.id).collect();
        let (all, _) = mem.range_query(&q);
        assert_eq!(got.len(), all.len() - lost.len(), "lost exactly page 1's objects");
        assert!(got.iter().all(|s| !lost.contains(&s.id)));
    }
}
