//! The index abstraction an exploration session replays against.
//!
//! SCOUT's simulator charges I/O at *page* granularity, so it needs more
//! than a plain range query: the index must report which data page each
//! result came from, and translate predicted regions into page ids for
//! prefetching. Any paged spatial index can drive a session by
//! implementing [`PagedIndex`]; FLAT is the canonical implementation
//! (and the one the demo uses), making [`super::ExplorationSession`]
//! `Box<dyn SpatialIndex>`-style pluggable without coupling this crate
//! to the facade's trait.

use neurospatial_flat::{FlatIndex, FlatScratch, PageAccess};
use neurospatial_geom::Aabb;
use neurospatial_model::NeuronSegment;

/// A spatial index with page-granular I/O, as required by the session
/// simulator and the prefetchers.
pub trait PagedIndex {
    /// Reusable per-query working state for
    /// [`paged_range_query_scratch`](Self::paged_range_query_scratch).
    /// The session simulator creates one per walkthrough and reuses it
    /// across every step, so steady-state steps stop allocating
    /// traversal state. Indexes with no reusable state can use `()`.
    type Scratch: Default;

    /// Number of indexed segments.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of data pages (page ids are `0..page_count`).
    fn page_count(&self) -> usize;

    /// Ids of the pages a region would touch — metadata only, no data
    /// page access. Prefetchers use this to turn predicted regions into
    /// page requests.
    fn pages_intersecting(&self, region: &Aabb) -> Vec<u32>;

    /// Execute a range query, invoking `on_page` once per data page
    /// read (in access order). Returns the matching segments.
    fn paged_range_query<'a>(
        &'a self,
        region: &Aabb,
        on_page: &mut dyn FnMut(u32),
    ) -> Vec<&'a NeuronSegment>;

    /// Buffer-reusing form of
    /// [`paged_range_query`](Self::paged_range_query): matches append to
    /// `out`, per-query traversal state lives in `scratch`. Same page
    /// visit order, same matches. The default ignores the scratch and
    /// delegates; FLAT (monolithic and sharded) overrides with its
    /// allocation-free crawl.
    fn paged_range_query_scratch<'a>(
        &'a self,
        region: &Aabb,
        scratch: &mut Self::Scratch,
        on_page: &mut dyn FnMut(u32),
        out: &mut Vec<&'a NeuronSegment>,
    ) {
        let _ = scratch;
        out.extend(self.paged_range_query(region, on_page));
    }
}

impl PagedIndex for FlatIndex<NeuronSegment> {
    type Scratch = FlatScratch;

    fn len(&self) -> usize {
        FlatIndex::len(self)
    }

    fn page_count(&self) -> usize {
        FlatIndex::page_count(self)
    }

    fn pages_intersecting(&self, region: &Aabb) -> Vec<u32> {
        FlatIndex::pages_intersecting(self, region)
    }

    fn paged_range_query<'a>(
        &'a self,
        region: &Aabb,
        on_page: &mut dyn FnMut(u32),
    ) -> Vec<&'a NeuronSegment> {
        let (hits, _) = self.range_query_with(region, |access| {
            if let PageAccess::Data(p) = access {
                on_page(p);
            }
        });
        hits
    }

    fn paged_range_query_scratch<'a>(
        &'a self,
        region: &Aabb,
        scratch: &mut FlatScratch,
        on_page: &mut dyn FnMut(u32),
        out: &mut Vec<&'a NeuronSegment>,
    ) {
        self.range_query_scratch(region, scratch, on_page, |o| out.push(o));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_flat::FlatBuildParams;
    use neurospatial_model::CircuitBuilder;

    #[test]
    fn flat_satisfies_the_contract() {
        let c = CircuitBuilder::new(3).neurons(4).build();
        let idx = FlatIndex::build(
            c.segments().to_vec(),
            FlatBuildParams::default().with_page_capacity(32),
        );
        let q = Aabb::cube(c.bounds().center(), 25.0);
        let mut pages = Vec::new();
        let hits = idx.paged_range_query(&q, &mut |p| pages.push(p));
        let brute = c.segments().iter().filter(|s| s.aabb().intersects(&q)).count();
        assert_eq!(hits.len(), brute);
        // Each page read at most once, and every id is valid.
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pages.len());
        assert!(pages.iter().all(|&p| (p as usize) < PagedIndex::page_count(&idx)));
    }
}
