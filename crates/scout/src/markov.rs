//! Markov-chain prefetching — the "learn from past user behavior"
//! baseline the paper cites (\[8\] Lee et al., "Adaptation of a neighbor
//! selection markov chain for prefetching tiled web GIS data").
//!
//! Space is tiled into cells; the prefetcher records first-order
//! transition counts between the cells visited by past walkthroughs and
//! prefetches the regions of the most likely successor cells of the
//! current cell. §3 of the demo paper explains why this fails on massive
//! models: "the probability that several users follow the same paths is
//! small" — the transition table is almost always cold for the path at
//! hand. The session experiments reproduce exactly that: Markov behaves
//! like no-prefetching on first traversal and only improves on repeats.

use crate::prefetch::{PrefetchContext, PrefetchPlan, Prefetcher};
use neurospatial_geom::{Aabb, Vec3};
use std::collections::HashMap;

/// Integer coordinates of a tiling cell.
type Cell = (i64, i64, i64);

/// First-order Markov prefetcher over a fixed spatial tiling.
#[derive(Debug)]
pub struct MarkovPrefetcher {
    /// Edge length of the tiling cells (µm).
    pub cell_size: f64,
    /// How many of the most likely successor cells to prefetch.
    pub fanout: usize,
    /// Transition counts: (from-cell, to-cell) → observations.
    transitions: HashMap<Cell, HashMap<Cell, u32>>,
    /// Cell of the previous query (within the current walkthrough).
    prev_cell: Option<Cell>,
}

impl MarkovPrefetcher {
    pub fn new(cell_size: f64, fanout: usize) -> Self {
        assert!(cell_size > 0.0);
        MarkovPrefetcher {
            cell_size,
            fanout: fanout.max(1),
            transitions: HashMap::new(),
            prev_cell: None,
        }
    }

    /// Number of distinct transitions learned so far.
    pub fn learned_transitions(&self) -> usize {
        self.transitions.values().map(|m| m.len()).sum()
    }

    fn cell_of(&self, p: Vec3) -> Cell {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
            (p.z / self.cell_size).floor() as i64,
        )
    }

    fn cell_center(&self, c: Cell) -> Vec3 {
        Vec3::new(
            (c.0 as f64 + 0.5) * self.cell_size,
            (c.1 as f64 + 0.5) * self.cell_size,
            (c.2 as f64 + 0.5) * self.cell_size,
        )
    }
}

impl Default for MarkovPrefetcher {
    /// 25 µm cells (≈ one view box), top-2 successors.
    fn default() -> Self {
        MarkovPrefetcher::new(25.0, 2)
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn plan(&mut self, ctx: &PrefetchContext<'_>) -> PrefetchPlan {
        let cur = self.cell_of(ctx.query.center());

        // Learn the observed transition.
        if let Some(prev) = self.prev_cell {
            if prev != cur {
                *self.transitions.entry(prev).or_default().entry(cur).or_insert(0) += 1;
            }
        }
        self.prev_cell = Some(cur);

        // Predict: most frequent successors of the current cell.
        let Some(succ) = self.transitions.get(&cur) else {
            return PrefetchPlan::default(); // cold table: no prediction
        };
        let mut ranked: Vec<(&Cell, &u32)> = succ.iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));

        let half = ctx.query.extent() * 0.5;
        let radius = half.x.max(half.y).max(half.z);
        let regions = ranked
            .into_iter()
            .take(self.fanout)
            .map(|(c, _)| Aabb::cube(self.cell_center(*c), radius))
            .collect();
        PrefetchPlan { regions, pages: Vec::new() }
    }

    /// Reset only the *walkthrough-local* state; the learned transition
    /// table persists across walkthroughs — that persistence is the whole
    /// point of history-based prefetching (and its weakness on fresh
    /// paths).
    fn reset(&mut self) {
        self.prev_cell = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_table_predicts_nothing() {
        let mut m = MarkovPrefetcher::new(10.0, 2);
        let q = Aabb::cube(Vec3::new(5.0, 5.0, 5.0), 5.0);
        let hist = [q.center()];
        let plan =
            m.plan(&PrefetchContext { query: &q, result: &[], history: &hist, pages_read: &[] });
        assert!(plan.is_empty());
        assert_eq!(m.learned_transitions(), 0);
    }

    #[test]
    fn learns_and_replays_a_path() {
        let mut m = MarkovPrefetcher::new(10.0, 1);
        // First traversal: cells (0,0,0) → (1,0,0) → (2,0,0). No
        // predictions (cold), but transitions are learned.
        let boxes = [
            Aabb::cube(Vec3::new(5.0, 5.0, 5.0), 5.0),
            Aabb::cube(Vec3::new(15.0, 5.0, 5.0), 5.0),
            Aabb::cube(Vec3::new(25.0, 5.0, 5.0), 5.0),
        ];
        let mut hist = Vec::new();
        for q in &boxes {
            hist.push(q.center());
            let plan =
                m.plan(&PrefetchContext { query: q, result: &[], history: &hist, pages_read: &[] });
            assert!(plan.is_empty(), "first traversal must be cold");
        }
        assert_eq!(m.learned_transitions(), 2);

        // Second traversal of the same path: predictions fire.
        m.reset();
        let hist = vec![boxes[0].center()];
        let plan = m.plan(&PrefetchContext {
            query: &boxes[0],
            result: &[],
            history: &hist,
            pages_read: &[],
        });
        assert_eq!(plan.regions.len(), 1);
        // Predicted region is centred on cell (1,0,0) = (15, 5, 5).
        assert_eq!(plan.regions[0].center(), Vec3::new(15.0, 5.0, 5.0));
    }

    #[test]
    fn reset_keeps_learned_table() {
        let mut m = MarkovPrefetcher::new(10.0, 2);
        let a = Aabb::cube(Vec3::new(5.0, 5.0, 5.0), 5.0);
        let b = Aabb::cube(Vec3::new(15.0, 5.0, 5.0), 5.0);
        let hist = [a.center(), b.center()];
        m.plan(&PrefetchContext { query: &a, result: &[], history: &hist[..1], pages_read: &[] });
        m.plan(&PrefetchContext { query: &b, result: &[], history: &hist, pages_read: &[] });
        assert_eq!(m.learned_transitions(), 1);
        m.reset();
        assert_eq!(m.learned_transitions(), 1, "history survives reset");
    }

    #[test]
    fn ranks_successors_by_frequency() {
        let mut m = MarkovPrefetcher::new(10.0, 1);
        let from = Aabb::cube(Vec3::new(5.0, 5.0, 5.0), 5.0);
        let often = Aabb::cube(Vec3::new(15.0, 5.0, 5.0), 5.0);
        let rare = Aabb::cube(Vec3::new(5.0, 15.0, 5.0), 5.0);
        // Observe from→often twice, from→rare once.
        for to in [&often, &rare, &often] {
            m.reset();
            let h1 = [from.center()];
            m.plan(&PrefetchContext { query: &from, result: &[], history: &h1, pages_read: &[] });
            let h2 = [from.center(), to.center()];
            m.plan(&PrefetchContext { query: to, result: &[], history: &h2, pages_read: &[] });
        }
        m.reset();
        let h = [from.center()];
        let plan =
            m.plan(&PrefetchContext { query: &from, result: &[], history: &h, pages_read: &[] });
        assert_eq!(plan.regions.len(), 1);
        assert_eq!(plan.regions[0].center(), Vec3::new(15.0, 5.0, 5.0), "most frequent wins");
    }
}
