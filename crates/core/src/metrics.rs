//! Query-pipeline observability handles.
//!
//! One process-wide set of handles in [`neurospatial_obs::global`],
//! registered eagerly when a database is built (so the first measured
//! query pays zero registration allocations). Every range/KNN funnel in
//! [`crate::query`] bumps the exact traversal counter, folds its
//! [`QueryStats`] into per-thread cells (flushed to the shared work
//! counters every [`SAMPLE_EVERY`] traversals and at thread exit), and
//! opens a [`neurospatial_obs::Stage::Traversal`] span timed into the
//! latency histogram on a sampled subset of calls — a single-digit
//! nanosecond steady-state tax on sub-microsecond selective queries.

use crate::index::QueryStats;
use neurospatial_obs::{global, Counter, Histogram};
use std::cell::Cell;
use std::sync::{Arc, OnceLock};
use std::thread::LocalKey;

/// Sampling/batching period for the query funnels: a monotonic clock
/// read costs tens of nanoseconds and a shared-line RMW a handful more,
/// a measurable tax on sub-microsecond selective queries, so the
/// traversal span (two clock reads + a histogram record) is opened on
/// one call in `SAMPLE_EVERY` per thread, and the work-stat folds are
/// batched through thread-local cells flushed on the same period. The
/// first call on every thread always samples *and* flushes, so even a
/// handful of queries populates the latency histograms and counters;
/// `query_ranges_total` / `query_knns_total` are bumped exactly on
/// every call; and the heavyweight stages (page I/O, WAL commit) are
/// always timed — a clock pair is noise against real I/O.
pub(crate) const SAMPLE_EVERY: u32 = 32;

thread_local! {
    static RANGE_TICK: Cell<u32> = const { Cell::new(0) };
    static KNN_TICK: Cell<u32> = const { Cell::new(0) };
}

#[inline]
fn tick(key: &'static LocalKey<Cell<u32>>) -> bool {
    key.with(|t| {
        let v = t.get();
        t.set(v.wrapping_add(1));
        v % SAMPLE_EVERY == 0
    })
}

/// Whether this range traversal should open a timed span.
#[inline]
pub(crate) fn sample_range_latency() -> bool {
    tick(&RANGE_TICK)
}

/// Whether this KNN search should open a timed span.
#[inline]
pub(crate) fn sample_knn_latency() -> bool {
    tick(&KNN_TICK)
}

/// Registry handles for the query pipeline.
pub(crate) struct QueryObs {
    /// Wall time of one range traversal (any terminal), ns.
    pub range_latency: Arc<Histogram>,
    /// Wall time of one KNN search, ns.
    pub knn_latency: Arc<Histogram>,
    /// Range traversals started.
    pub ranges: Arc<Counter>,
    /// KNN searches started.
    pub knns: Arc<Counter>,
    /// Segments delivered to sinks.
    pub results: Arc<Counter>,
    /// Index nodes / pages visited.
    pub nodes_read: Arc<Counter>,
    /// Segments tested against predicates.
    pub objects_tested: Arc<Counter>,
    /// Quarantined pages skipped by partial-tolerant traversals.
    pub pages_quarantined: Arc<Counter>,
}

/// Per-thread staging for the work counters: cache-local `Cell` adds on
/// the hot path, a shared-atomic flush every [`SAMPLE_EVERY`] folds.
/// The `Drop` impl makes totals exact at thread exit; between flushes
/// the shared counters lag by at most `SAMPLE_EVERY - 1` traversals of
/// work per live thread. `since_flush` starts one short of the period
/// so the very first fold on a thread flushes through immediately.
struct PendingStats {
    results: Cell<u64>,
    nodes_read: Cell<u64>,
    objects_tested: Cell<u64>,
    pages_quarantined: Cell<u64>,
    since_flush: Cell<u32>,
}

impl PendingStats {
    fn flush(&self) {
        let qobs = query_obs();
        let take = |c: &Cell<u64>, into: &Counter| {
            let v = c.replace(0);
            if v != 0 {
                into.add(v);
            }
        };
        take(&self.results, &qobs.results);
        take(&self.nodes_read, &qobs.nodes_read);
        take(&self.objects_tested, &qobs.objects_tested);
        take(&self.pages_quarantined, &qobs.pages_quarantined);
        self.since_flush.set(0);
    }
}

impl Drop for PendingStats {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static PENDING: PendingStats = const {
        PendingStats {
            results: Cell::new(0),
            nodes_read: Cell::new(0),
            objects_tested: Cell::new(0),
            pages_quarantined: Cell::new(0),
            since_flush: Cell::new(SAMPLE_EVERY - 1),
        }
    };
}

impl QueryObs {
    /// Folds one traversal's stats into the cumulative counters,
    /// staged through [`PendingStats`]. Falls back to direct atomic
    /// adds if the thread-local is already torn down.
    #[inline]
    pub fn observe(&self, stats: &QueryStats) {
        let staged = PENDING.try_with(|p| {
            p.results.set(p.results.get() + stats.results);
            p.nodes_read.set(p.nodes_read.get() + stats.nodes_read);
            p.objects_tested.set(p.objects_tested.get() + stats.objects_tested);
            p.pages_quarantined.set(p.pages_quarantined.get() + stats.pages_quarantined);
            let n = p.since_flush.get() + 1;
            if n >= SAMPLE_EVERY {
                p.flush();
            } else {
                p.since_flush.set(n);
            }
        });
        if staged.is_err() {
            self.results.add(stats.results);
            self.nodes_read.add(stats.nodes_read);
            self.objects_tested.add(stats.objects_tested);
            if stats.pages_quarantined != 0 {
                self.pages_quarantined.add(stats.pages_quarantined);
            }
        }
    }
}

static QUERY_OBS: OnceLock<QueryObs> = OnceLock::new();

/// The query-pipeline handles (registered on first call).
pub(crate) fn query_obs() -> &'static QueryObs {
    QUERY_OBS.get_or_init(|| {
        let r = global();
        QueryObs {
            range_latency: r.histogram("query_range_latency_ns"),
            knn_latency: r.histogram("query_knn_latency_ns"),
            ranges: r.counter("query_ranges_total"),
            knns: r.counter("query_knns_total"),
            results: r.counter("query_results_total"),
            nodes_read: r.counter("query_nodes_read_total"),
            objects_tested: r.counter("query_objects_tested_total"),
            pages_quarantined: r.counter("query_pages_quarantined_total"),
        }
    })
}

/// Eagerly registers every query-pipeline metric (and the storage-layer
/// handles the paged backends use), so hot paths never pay first-use
/// registration. Called from database construction; cheap and idempotent.
pub fn warm_metrics() {
    let _ = query_obs();
    let _ = neurospatial_storage::metrics::frame_obs();
    let _ = neurospatial_storage::metrics::wal_obs();
    let _ = neurospatial_storage::metrics::fault_obs();
}
