//! The high-level database facade tying the three systems together.
//!
//! Construction goes through [`NeuroDbBuilder`]: pick a data source, an
//! index backend ([`IndexBackend`], by value or by name) and how segments
//! split into named populations for the synapse join. The old
//! `from_segments(cfg)` constructor (hardcoded FLAT, hardcoded even/odd
//! split, tuple returns, panics) survives only as a deprecated shim.

use crate::error::NeuroError;
use crate::index::{
    IndexBackend, IndexParams, Neighbor, QueryOutput, QueryScratch, QueryStats, SpatialIndex,
};
use crate::paged::PagedFlatIndex;
use crate::query::Query;
use crate::shard::ShardedIndex;
use neurospatial_flat::{FlatBuildParams, FlatIndex};
use neurospatial_geom::{Aabb, Vec3};
use neurospatial_model::{Circuit, NavigationPath, NeuronSegment};
use neurospatial_scout::{
    ExplorationSession, ExtrapolationPrefetcher, HilbertPrefetcher, MarkovPrefetcher, NoPrefetch,
    OocConfig, OocCursor, Prefetcher, QueryTrace, ScoutPrefetcher, SessionConfig, SessionCursor,
    SessionStats,
};
use neurospatial_storage::EvictionPolicy;
use neurospatial_touch::{JoinResult, SpatialJoin, TouchJoin};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// Tuning knobs of a [`NeuroDb`].
#[derive(Debug, Clone, Copy)]
pub struct NeuroDbConfig {
    /// Index granularity (FLAT page capacity / R-Tree fan-out).
    pub page_capacity: usize,
    /// Space partitions for the sharded executor (1 = monolithic index).
    pub shards: usize,
    /// Worker threads for sharded query execution.
    pub threads: usize,
    /// Exploration-session settings (buffer pool, cost model, think time).
    pub session: SessionConfig,
    /// Distance-join engine configuration.
    pub join: TouchJoin,
}

impl Default for NeuroDbConfig {
    fn default() -> Self {
        let session = SessionConfig::default();
        NeuroDbConfig {
            page_capacity: session.page_capacity,
            shards: 1,
            threads: 1,
            session,
            join: TouchJoin::default(),
        }
    }
}

/// Which prefetching policy a walkthrough uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalkthroughMethod {
    /// No prefetching: every page faults on demand.
    None,
    /// Storage-order (Hilbert curve) prefetching.
    Hilbert,
    /// Camera-motion extrapolation.
    Extrapolation,
    /// History-based Markov-chain prediction (the paper's \[8\]); cold on
    /// first traversals of massive models.
    Markov,
    /// SCOUT content-aware prefetching.
    Scout,
}

impl WalkthroughMethod {
    /// All methods, in the order the experiment tables report them.
    pub const ALL: [WalkthroughMethod; 5] = [
        WalkthroughMethod::None,
        WalkthroughMethod::Hilbert,
        WalkthroughMethod::Extrapolation,
        WalkthroughMethod::Markov,
        WalkthroughMethod::Scout,
    ];

    /// Canonical name — matches the `method` string in [`SessionStats`].
    pub fn name(&self) -> &'static str {
        match self {
            WalkthroughMethod::None => "none",
            WalkthroughMethod::Hilbert => "hilbert",
            WalkthroughMethod::Extrapolation => "extrapolation",
            WalkthroughMethod::Markov => "markov",
            WalkthroughMethod::Scout => "scout",
        }
    }

    /// Instantiate the corresponding prefetcher.
    pub fn prefetcher(&self) -> Box<dyn Prefetcher> {
        match self {
            WalkthroughMethod::None => Box::new(NoPrefetch),
            WalkthroughMethod::Hilbert => Box::new(HilbertPrefetcher::default()),
            WalkthroughMethod::Extrapolation => Box::new(ExtrapolationPrefetcher::default()),
            WalkthroughMethod::Markov => Box::new(MarkovPrefetcher::default()),
            WalkthroughMethod::Scout => Box::new(ScoutPrefetcher::default()),
        }
    }
}

impl fmt::Display for WalkthroughMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WalkthroughMethod {
    type Err = NeuroError;

    fn from_str(s: &str) -> Result<Self, NeuroError> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "no-prefetch" => Ok(WalkthroughMethod::None),
            "hilbert" => Ok(WalkthroughMethod::Hilbert),
            "extrapolation" | "extrapolate" => Ok(WalkthroughMethod::Extrapolation),
            "markov" => Ok(WalkthroughMethod::Markov),
            "scout" => Ok(WalkthroughMethod::Scout),
            _ => Err(NeuroError::InvalidConfig(format!(
                "unknown walkthrough method '{s}' (known: {})",
                WalkthroughMethod::ALL.map(|m| m.name()).join(", ")
            ))),
        }
    }
}

/// Aggregate statistics of a spatial region — what §2.1 of the paper
/// describes FLAT being used for: "to compute statistics (tissue density
/// etc.) of the models they build".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionStats {
    /// Segments intersecting the region.
    pub count: usize,
    /// Total axis (cable) length of those segments (µm).
    pub total_cable_length: f64,
    /// Total membrane volume approximation: Σ π r² ℓ (µm³).
    pub total_cable_volume: f64,
    /// Mean capsule radius (µm); 0 if the region is empty.
    pub mean_radius: f64,
    /// Segments per µm³ of the queried region.
    pub density: f64,
    /// Distinct neurons represented.
    pub neuron_count: usize,
}

/// One named segment population (e.g. "axons" / "dendrites" for the
/// synapse join).
pub struct Population {
    pub name: String,
    pub segments: Vec<NeuronSegment>,
}

/// How the builder partitions segments into populations.
enum PopulationSpec {
    /// Two populations, "even" / "odd", split on neuron-id parity — the
    /// historical default, kept for the demo's synapse workload.
    Parity,
    /// Two named populations split by a predicate (`true` → first).
    Split { first: String, second: String, pred: Box<dyn Fn(&NeuronSegment) -> bool> },
    /// Arbitrarily many populations keyed by a label function; populations
    /// are ordered by first appearance.
    Labels(Box<dyn Fn(&NeuronSegment) -> String>),
}

impl PopulationSpec {
    fn partition(&self, segments: &[NeuronSegment]) -> Vec<Population> {
        match self {
            PopulationSpec::Parity => {
                let (mut even, mut odd) = (Vec::new(), Vec::new());
                for s in segments {
                    if s.neuron % 2 == 0 {
                        even.push(*s);
                    } else {
                        odd.push(*s);
                    }
                }
                vec![
                    Population { name: "even".into(), segments: even },
                    Population { name: "odd".into(), segments: odd },
                ]
            }
            PopulationSpec::Split { first, second, pred } => {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                for s in segments {
                    if pred(s) {
                        a.push(*s);
                    } else {
                        b.push(*s);
                    }
                }
                vec![
                    Population { name: first.clone(), segments: a },
                    Population { name: second.clone(), segments: b },
                ]
            }
            PopulationSpec::Labels(label_of) => {
                let mut pops: Vec<Population> = Vec::new();
                for s in segments {
                    let name = label_of(s);
                    match pops.iter_mut().find(|p| p.name == name) {
                        Some(p) => p.segments.push(*s),
                        None => pops.push(Population { name, segments: vec![*s] }),
                    }
                }
                pops
            }
        }
    }
}

/// Builder for [`NeuroDb`]: data source, backend, populations, tuning.
///
/// ```
/// use neurospatial::prelude::*;
///
/// let circuit = CircuitBuilder::new(7).neurons(6).build();
/// let db = NeuroDb::builder()
///     .circuit(&circuit)
///     .backend(IndexBackend::StrPacked)
///     .split_populations("axons", "dendrites", |s| s.neuron % 2 == 0)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(db.backend(), IndexBackend::StrPacked);
/// assert_eq!(db.population_names(), vec!["axons", "dendrites"]);
/// ```
pub struct NeuroDbBuilder {
    segments: Option<Vec<NeuronSegment>>,
    backend: IndexBackend,
    backend_name: Option<String>,
    config: NeuroDbConfig,
    populations: PopulationSpec,
    paged: bool,
    page_file: Option<PathBuf>,
    ooc: OocConfig,
}

impl Default for NeuroDbBuilder {
    fn default() -> Self {
        NeuroDbBuilder {
            segments: None,
            backend: IndexBackend::Flat,
            backend_name: None,
            config: NeuroDbConfig::default(),
            populations: PopulationSpec::Parity,
            paged: false,
            page_file: None,
            ooc: OocConfig::default(),
        }
    }
}

impl NeuroDbBuilder {
    /// Use a generated circuit's segments as the data source.
    pub fn circuit(mut self, circuit: &Circuit) -> Self {
        self.segments = Some(circuit.segments().to_vec());
        self
    }

    /// Use raw segments as the data source (an empty vector is a valid,
    /// empty database).
    pub fn segments(mut self, segments: Vec<NeuronSegment>) -> Self {
        self.segments = Some(segments);
        self
    }

    /// Select the index backend by value.
    pub fn backend(mut self, backend: IndexBackend) -> Self {
        self.backend = backend;
        self.backend_name = None;
        self
    }

    /// Select the index backend by name (e.g. from a CLI flag); parsing
    /// errors surface at [`build`](Self::build). A `sharded:` prefix
    /// (e.g. `"sharded:rtree"`) selects the sharded executor over the
    /// named backend, raising the shard count to at least 2 if
    /// [`shards`](Self::shards) was not set.
    pub fn backend_named<S: Into<String>>(mut self, name: S) -> Self {
        self.backend_name = Some(name.into());
        self
    }

    /// Index granularity (FLAT page capacity / R-Tree fan-out).
    pub fn page_capacity(mut self, capacity: usize) -> Self {
        self.config.page_capacity = capacity;
        self
    }

    /// Space-partition the dataset into `shards` Hilbert-ordered shards,
    /// one backend index per shard ([`ShardedIndex`]). 1 (the default)
    /// keeps a monolithic index; 0 is rejected at
    /// [`build`](Self::build).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Worker threads for sharded query execution (also rejects 0 at
    /// [`build`](Self::build); ignored by monolithic indexes).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Spill the FLAT index to a page file on disk and query it
    /// out-of-core through the real pager: segments live in a
    /// checksummed page file, a bounded frame pool keeps
    /// [`frame_budget`](Self::frame_budget) pages resident, and
    /// [`prefetch_workers`](Self::prefetch_workers) background threads
    /// read pages ahead of the exploration cursor. Results and logical
    /// statistics stay byte-identical to the in-memory FLAT backend;
    /// the I/O shows up in [`QueryStats`]'s `cache_*` fields.
    ///
    /// Only valid with the (monolithic) FLAT backend — any other
    /// combination is rejected at [`build`](Self::build). The page file
    /// is process-unique in the temp directory and deleted on drop
    /// unless [`page_file`](Self::page_file) names one explicitly.
    pub fn paged(mut self, paged: bool) -> Self {
        self.paged = paged;
        self
    }

    /// Persist the paged index to an explicit page file (implies
    /// [`paged`](Self::paged)); the file survives the database, so a
    /// later session can reopen it without re-indexing.
    pub fn page_file<P: Into<PathBuf>>(mut self, path: P) -> Self {
        self.page_file = Some(path.into());
        self.paged = true;
        self
    }

    /// Frame budget of the paged index's buffer pool, in pages. `0`
    /// (the default) caches every page — still checksum-verified,
    /// still reading through the pager. Only meaningful with
    /// [`paged`](Self::paged).
    pub fn frame_budget(mut self, frames: usize) -> Self {
        self.ooc.frame_budget = frames;
        self
    }

    /// Eviction policy of the paged index's frame pool.
    pub fn eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.ooc.eviction = policy;
        self
    }

    /// Background prefetch workers for the paged index (`0` disables
    /// prefetching; every page read is then a demand read).
    pub fn prefetch_workers(mut self, workers: usize) -> Self {
        self.ooc.prefetch_workers = workers;
        self
    }

    /// Exploration-session settings for walkthroughs.
    pub fn session(mut self, session: SessionConfig) -> Self {
        self.config.session = session;
        self
    }

    /// Distance-join engine configuration.
    pub fn join(mut self, join: TouchJoin) -> Self {
        self.config.join = join;
        self
    }

    /// Full configuration in one call (overwrites the three above).
    pub fn config(mut self, config: NeuroDbConfig) -> Self {
        self.config = config;
        self
    }

    /// Two named populations split by `pred` (`true` → `first`), replacing
    /// the default even/odd neuron split.
    pub fn split_populations<S1, S2, F>(mut self, first: S1, second: S2, pred: F) -> Self
    where
        S1: Into<String>,
        S2: Into<String>,
        F: Fn(&NeuronSegment) -> bool + 'static,
    {
        self.populations = PopulationSpec::Split {
            first: first.into(),
            second: second.into(),
            pred: Box::new(pred),
        };
        self
    }

    /// Arbitrarily many populations, named by a label function (ordered by
    /// first appearance in segment order).
    pub fn populations_by<F>(mut self, label_of: F) -> Self
    where
        F: Fn(&NeuronSegment) -> String + 'static,
    {
        self.populations = PopulationSpec::Labels(Box::new(label_of));
        self
    }

    /// Finalise: build the index (sharded when `shards > 1`) and
    /// partition the populations.
    pub fn build(self) -> Result<NeuroDb, NeuroError> {
        let segments = self.segments.ok_or(NeuroError::MissingSegments)?;
        let mut config = self.config;
        let (backend, name_requests_sharding) = match &self.backend_name {
            Some(name) => match name.strip_prefix("sharded:") {
                Some(inner) => (inner.parse::<IndexBackend>()?, true),
                None => (name.parse::<IndexBackend>()?, false),
            },
            None => (self.backend, false),
        };
        // FLAT and the R+-Tree accept any page size >= 1; the R-Tree
        // fan-out is structurally >= 4.
        let min_capacity = match backend {
            IndexBackend::Flat | IndexBackend::RPlus => 1,
            IndexBackend::RTree | IndexBackend::StrPacked => 4,
        };
        if config.page_capacity < min_capacity {
            return Err(NeuroError::InvalidConfig(format!(
                "page_capacity must be >= {min_capacity} for the '{backend}' backend, got {}",
                config.page_capacity
            )));
        }
        // Validate the configured counts *before* the name-driven bump so
        // an explicit `.shards(0)` is reported, never masked.
        if config.shards == 0 || config.threads == 0 {
            return Err(NeuroError::InvalidConfig(format!(
                "shards and threads must be >= 1, got shards={} threads={}",
                config.shards, config.threads
            )));
        }
        if name_requests_sharding {
            // A `sharded:` name opts into sharding; keep an explicitly
            // configured shard count, else pick the smallest genuinely
            // sharded layout.
            config.shards = config.shards.max(2);
        }
        let populations = self.populations.partition(&segments);
        // Built once here so lookups stay O(1) forever after: population
        // names resolve through a map instead of a linear scan, and each
        // segment id knows its population (what `in_population` pushdown
        // tests inside index traversals). Duplicate names are rejected —
        // they would make every name-keyed lookup (and the name-resolved
        // synapse join) silently ambiguous.
        let mut population_index: HashMap<String, usize> = HashMap::new();
        for (i, p) in populations.iter().enumerate() {
            if population_index.insert(p.name.clone(), i).is_some() {
                return Err(NeuroError::InvalidConfig(format!(
                    "duplicate population name '{}'",
                    p.name
                )));
            }
        }
        let population_of_id: HashMap<u64, u32> = populations
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.segments.iter().map(move |s| (s.id, i as u32)))
            .collect();

        config.session.page_capacity = config.page_capacity;
        let params = IndexParams {
            page_capacity: config.page_capacity,
            shards: config.shards,
            threads: config.threads,
        };
        if self.paged && (backend != IndexBackend::Flat || config.shards > 1) {
            return Err(NeuroError::InvalidConfig(format!(
                "paged (out-of-core) mode needs the monolithic 'flat' backend, \
                 got backend='{backend}' shards={}",
                config.shards
            )));
        }
        if self.paged {
            let flat_params =
                FlatBuildParams::default().with_page_capacity(config.page_capacity.max(1));
            let paged = match &self.page_file {
                Some(path) => PagedFlatIndex::create(segments, flat_params, path, self.ooc)?,
                None => PagedFlatIndex::create_temp(segments, flat_params, self.ooc)?,
            };
            return Ok(NeuroDb {
                index: DbIndex::Paged(Box::new(paged)),
                backend,
                config,
                populations,
                population_index,
                population_of_id,
            });
        }
        // FLAT gets the full exploration session (walkthroughs need
        // page-level I/O) whether monolithic or sharded — the sharded
        // executor is itself a `PagedIndex`; the session owns the only
        // copy of the index.
        let index = match (backend, config.shards > 1) {
            (IndexBackend::Flat, false) => {
                DbIndex::Flat(Box::new(ExplorationSession::new(segments, config.session)))
            }
            (IndexBackend::Flat, true) => {
                DbIndex::ShardedFlat(Box::new(ExplorationSession::from_index(
                    ShardedIndex::<FlatIndex<NeuronSegment>>::build_with(segments, &params),
                    config.session,
                )))
            }
            (other, false) => DbIndex::Boxed(other.build(segments, &params)),
            (other, true) => DbIndex::Boxed(other.build_sharded(segments, &params)),
        };
        Ok(NeuroDb { index, backend, config, populations, population_index, population_of_id })
    }
}

/// The index storage: FLAT keeps its exploration session (for
/// walkthroughs) — monolithic or sharded; the out-of-core variant owns
/// the page file and frame pool; every other backend is a plain boxed
/// [`SpatialIndex`].
enum DbIndex {
    Flat(Box<ExplorationSession>),
    ShardedFlat(Box<ExplorationSession<ShardedIndex<FlatIndex<NeuronSegment>>>>),
    Paged(Box<PagedFlatIndex>),
    Boxed(Box<dyn SpatialIndex>),
}

/// A spatial database over one set of neuron segments.
///
/// Owns one [`SpatialIndex`] backend (all range queries run through it),
/// named segment populations, and exposes the TOUCH join for synapse
/// placement plus SCOUT walkthroughs (FLAT backend only).
pub struct NeuroDb {
    index: DbIndex,
    backend: IndexBackend,
    config: NeuroDbConfig,
    populations: Vec<Population>,
    /// Population name → position in `populations` (built once in
    /// `build()`; `population()` is O(1), not a linear scan).
    population_index: HashMap<String, usize>,
    /// Segment id → population position (the membership test
    /// `Query::in_population` pushes below index traversals).
    population_of_id: HashMap<u64, u32>,
}

impl fmt::Debug for NeuroDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NeuroDb")
            .field("backend", &self.backend)
            .field("len", &self.len())
            .field("populations", &self.population_names())
            .finish_non_exhaustive()
    }
}

impl NeuroDb {
    /// Start building a database.
    pub fn builder() -> NeuroDbBuilder {
        NeuroDbBuilder::default()
    }

    /// Open a database over a generated circuit with default settings
    /// (FLAT backend, even/odd populations).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        NeuroDb::builder().circuit(circuit).build().expect("default configuration is valid")
    }

    /// Open a database over raw segments with explicit configuration.
    #[deprecated(note = "use NeuroDb::builder() — it supports backend \
                         selection and named populations")]
    pub fn from_segments(segments: Vec<NeuronSegment>, config: NeuroDbConfig) -> Self {
        NeuroDb::builder()
            .segments(segments)
            .config(config)
            .build()
            .expect("legacy construction is infallible")
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        self.index().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which backend this database was built with.
    pub fn backend(&self) -> IndexBackend {
        self.backend
    }

    /// The underlying index, backend-agnostic.
    pub fn index(&self) -> &dyn SpatialIndex {
        match &self.index {
            DbIndex::Flat(session) => session.index(),
            DbIndex::ShardedFlat(session) => session.index(),
            DbIndex::Paged(paged) => paged.as_ref(),
            DbIndex::Boxed(b) => b.as_ref(),
        }
    }

    /// The out-of-core FLAT engine, if this database was built with
    /// [`NeuroDbBuilder::paged`] — frame-pool counters, page-file path,
    /// prefetcher state. `None` for in-memory databases. Sugar for
    /// [`index_as`](Self::index_as).
    pub fn paged_index(&self) -> Option<&PagedFlatIndex> {
        self.index_as::<PagedFlatIndex>()
    }

    /// The concrete backend behind this database, by type — the generic
    /// [`SpatialIndex::as_any`] downcast, so *every* backend is reachable
    /// without the facade knowing concrete types:
    ///
    /// ```
    /// use neurospatial::prelude::*;
    ///
    /// let c = CircuitBuilder::new(1).neurons(3).build();
    /// let db = NeuroDb::builder().circuit(&c).backend(IndexBackend::RPlus).build().unwrap();
    /// let rplus = db.index_as::<RPlusTree<NeuronSegment>>().expect("R+ backend");
    /// assert!(rplus.replication_factor() >= 1.0);
    /// assert!(db.index_as::<FlatIndex<NeuronSegment>>().is_none());
    /// ```
    pub fn index_as<T: SpatialIndex>(&self) -> Option<&T> {
        self.index().as_any().downcast_ref::<T>()
    }

    /// The FLAT index, if this database uses the **monolithic** FLAT
    /// backend (page-level statistics, neighborhood graph inspection).
    /// `None` for every other backend, including sharded FLAT — its
    /// pages are spread over shard-local indexes. Sugar for
    /// [`index_as`](Self::index_as).
    pub fn flat_index(&self) -> Option<&FlatIndex<NeuronSegment>> {
        self.index_as::<FlatIndex<NeuronSegment>>()
    }

    /// Shard count of the underlying index (1 for monolithic backends).
    pub fn shard_count(&self) -> usize {
        match &self.index {
            DbIndex::ShardedFlat(session) => session.index().shard_count(),
            DbIndex::Flat(_) | DbIndex::Paged(_) => 1,
            DbIndex::Boxed(_) => self.config.shards,
        }
    }

    /// Bounding box of the indexed data.
    pub fn bounds(&self) -> Aabb {
        self.index().bounds()
    }

    /// Open the unified query builder — one composable entry point for
    /// every workload the database serves:
    ///
    /// ```
    /// use neurospatial::prelude::*;
    ///
    /// let circuit = CircuitBuilder::new(3).neurons(6).build();
    /// let db = NeuroDb::from_circuit(&circuit);
    /// let region = Aabb::cube(circuit.bounds().center(), 30.0);
    ///
    /// // Collect, stream (never materializes), or explain:
    /// let out = db.query().range(region).collect().unwrap();
    /// let mut n = 0;
    /// db.query().range(region).stream(|_seg| n += 1).unwrap();
    /// assert_eq!(n, out.len());
    /// let plan = db.query().range(region).explain();
    /// assert_eq!(plan.backend, IndexBackend::Flat);
    /// ```
    pub fn query(&self) -> Query<'_> {
        Query::new(self)
    }

    /// Execute a spatial range query through the selected backend.
    /// Forwarding shim over `self.query().range(*region).collect()` —
    /// results, order and statistics are byte-identical (property-tested
    /// in `tests/query_api_equivalence.rs`).
    pub fn range_query(&self, region: &Aabb) -> QueryOutput {
        self.query().range(*region).collect().expect("no population constraint to fail")
    }

    /// Execute a batch of range queries (one output per region). On a
    /// sharded database the batch fans out over the worker pool (one
    /// reused [`QueryScratch`] per worker); monolithic databases reuse
    /// one scratch across the whole batch — either way, per-query
    /// traversal state is not re-allocated query by query.
    pub fn range_query_many(&self, regions: &[Aabb]) -> Vec<QueryOutput> {
        self.index().range_query_many(regions)
    }

    /// Allocation-free range query for hot serving loops: results append
    /// to `out`, per-query working state lives in the caller's `scratch`
    /// (reused across calls). Identical results and statistics to
    /// [`range_query`](Self::range_query).
    pub fn range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        self.index().range_query_into_scratch(region, scratch, out)
    }

    /// The `k` segments nearest to `p`, in canonical (distance, id)
    /// order, through the selected backend. Forwarding shim over
    /// `self.query().knn(p, k).collect()`.
    pub fn knn(&self, p: Vec3, k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.query().knn(p, k).collect().expect("no population constraint to fail")
    }

    /// Compute aggregate tissue statistics for a region (one range query
    /// plus a linear pass over the result).
    pub fn region_stats(&self, region: &Aabb) -> RegionStats {
        let out = self.range_query(region);
        if out.is_empty() {
            return RegionStats::default();
        }
        let mut stats = RegionStats { count: out.len(), ..Default::default() };
        let mut neurons = std::collections::HashSet::new();
        let mut radius_sum = 0.0;
        for s in &out.segments {
            let len = s.geom.axis_length();
            stats.total_cable_length += len;
            stats.total_cable_volume += std::f64::consts::PI * s.geom.radius * s.geom.radius * len;
            radius_sum += s.geom.radius;
            neurons.insert(s.neuron);
        }
        stats.mean_radius = radius_sum / out.len() as f64;
        stats.neuron_count = neurons.len();
        stats.density = out.len() as f64 / region.volume().max(f64::MIN_POSITIVE);
        stats
    }

    /// The named populations, in declaration order.
    pub fn populations(&self) -> &[Population] {
        &self.populations
    }

    /// Population names, in declaration order.
    pub fn population_names(&self) -> Vec<&str> {
        self.populations.iter().map(|p| p.name.as_str()).collect()
    }

    /// Segments of one population (O(1) — resolved through the name map
    /// built at [`build`](NeuroDbBuilder::build) time).
    pub fn population(&self, name: &str) -> Result<&[NeuronSegment], NeuroError> {
        self.population_position(name).map(|i| self.populations[i].segments.as_slice())
    }

    /// Position of a named population in [`populations`](Self::populations).
    pub(crate) fn population_position(&self, name: &str) -> Result<usize, NeuroError> {
        self.population_index.get(name).copied().ok_or_else(|| NeuroError::UnknownPopulation {
            given: name.to_string(),
            known: self.population_names().iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Which population a segment id belongs to (`None` for ids the
    /// database has never seen).
    pub(crate) fn population_of_segment(&self, id: u64) -> Option<u32> {
        self.population_of_id.get(&id).copied()
    }

    /// Distance-join two named populations: all segment pairs whose
    /// capsule surfaces come within `epsilon` (TOUCH). Pair indices are
    /// positions within each population's segment slice. Forwarding shim
    /// over `self.query().touching(second, epsilon).in_population(first)`.
    pub fn join_between(
        &self,
        first: &str,
        second: &str,
        epsilon: f64,
    ) -> Result<JoinResult, NeuroError> {
        self.query().touching(second, epsilon).in_population(first).collect()
    }

    /// The join engine this database runs TOUCH workloads with.
    pub(crate) fn join_config(&self) -> &TouchJoin {
        &self.config.join
    }

    /// Find synapse candidates between the first two populations — the
    /// demo's synapse-placement workload. Errors if the database has
    /// fewer than two populations.
    pub fn find_synapse_candidates(&self, epsilon: f64) -> Result<JoinResult, NeuroError> {
        if self.populations.len() < 2 {
            return Err(NeuroError::TooFewPopulations { found: self.populations.len(), needed: 2 });
        }
        self.join_between(&self.populations[0].name, &self.populations[1].name, epsilon)
    }

    /// Distance-join this database's segments against an external
    /// population.
    ///
    /// Joins population by population and merges with index offsets —
    /// equivalent to joining the concatenation of all populations, but
    /// without cloning the dataset on every call. Pair `(i, j)` means
    /// segment `i` of the concatenated populations and `other[j]`.
    pub fn join_against(&self, other: &[NeuronSegment], epsilon: f64) -> JoinResult {
        let mut merged = JoinResult::default();
        let mut offset = 0u32;
        for pop in &self.populations {
            let r = self.config.join.join(&pop.segments, other, epsilon);
            merged.pairs.extend(r.pairs.iter().map(|&(i, j)| (i + offset, j)));
            merged.stats.filter_comparisons += r.stats.filter_comparisons;
            merged.stats.refine_comparisons += r.stats.refine_comparisons;
            merged.stats.build_ms += r.stats.build_ms;
            merged.stats.probe_ms += r.stats.probe_ms;
            merged.stats.total_ms += r.stats.total_ms;
            merged.stats.aux_memory_bytes =
                merged.stats.aux_memory_bytes.max(r.stats.aux_memory_bytes);
            merged.stats.filtered_out += r.stats.filtered_out;
            offset += pop.segments.len() as u32;
        }
        merged.stats.results = merged.pairs.len() as u64;
        merged
    }

    /// Build a branch-following navigation path through `circuit`
    /// (convenience wrapper; the circuit must be the one this database
    /// was opened over for the walkthrough to make sense).
    pub fn navigation_path(
        &self,
        circuit: &Circuit,
        seed: u64,
        view_radius: f64,
        step: f64,
    ) -> Option<NavigationPath> {
        NavigationPath::along_random_branch(circuit, seed, view_radius, step)
    }

    /// Replay a walkthrough with the given prefetching method and report
    /// the session statistics (stall time, hit ratio, prefetch precision).
    ///
    /// Errors unless the database uses the FLAT backend (monolithic or
    /// sharded) — walkthrough simulation is page-granular. Forwarding
    /// shim over `self.query().along_path(path).method(method).run()`.
    pub fn walkthrough(
        &self,
        path: &NavigationPath,
        method: WalkthroughMethod,
    ) -> Result<SessionStats, NeuroError> {
        self.query().along_path(path).method(method).run()
    }

    /// The worker behind [`walkthrough`](Self::walkthrough) and the
    /// builder's `along_path(..).run()` terminal.
    pub(crate) fn walkthrough_impl(
        &self,
        path: &NavigationPath,
        method: WalkthroughMethod,
    ) -> Result<SessionStats, NeuroError> {
        match &self.index {
            DbIndex::Flat(session) => {
                let mut prefetcher = method.prefetcher();
                Ok(session.run(path, prefetcher.as_mut()))
            }
            DbIndex::ShardedFlat(session) => {
                let mut prefetcher = method.prefetcher();
                Ok(session.run(path, prefetcher.as_mut()))
            }
            DbIndex::Paged(paged) => {
                // The real-I/O walkthrough: every step's stall time is
                // measured wall-clock against the page file, and
                // prefetches are actual background reads.
                let mut cursor = paged.ooc().cursor(method.prefetcher());
                let mut stats =
                    SessionStats { method: method.name().to_string(), ..Default::default() };
                let before = paged.frame_stats();
                for q in &path.queries {
                    let trace = cursor.step(q)?;
                    accumulate_trace(&mut stats, trace);
                }
                let after = paged.frame_stats();
                stats.useful_prefetched = after.prefetch_hits - before.prefetch_hits;
                Ok(stats)
            }
            DbIndex::Boxed(_) => {
                Err(NeuroError::WalkthroughUnsupported { backend: self.backend.name().to_string() })
            }
        }
    }

    /// Bind a step-wise SCOUT prefetch cursor over this database's paged
    /// (FLAT) index — the simulated-I/O companion `Query::session`
    /// attaches so repeated-query loops report walkthrough-grade hit and
    /// stall statistics. Errors on non-paged backends.
    pub(crate) fn scout_cursor(
        &self,
        method: WalkthroughMethod,
    ) -> Result<DbCursor<'_>, NeuroError> {
        match &self.index {
            DbIndex::Flat(session) => Ok(DbCursor::Flat(session.cursor(method.prefetcher()))),
            DbIndex::ShardedFlat(session) => {
                Ok(DbCursor::Sharded(session.cursor(method.prefetcher())))
            }
            DbIndex::Paged(paged) => Ok(DbCursor::Paged {
                cursor: paged.ooc().cursor(method.prefetcher()),
                paged,
                stats: SessionStats { method: method.name().to_string(), ..Default::default() },
                prefetch_hits_at_start: paged.frame_stats().prefetch_hits,
            }),
            DbIndex::Boxed(_) => {
                Err(NeuroError::WalkthroughUnsupported { backend: self.backend.name().to_string() })
            }
        }
    }
}

/// Fold one step's trace into the running session totals — the same
/// accumulation the simulator's `StepState` applies, minus the
/// simulation-only fields (`useful_prefetched` comes from the frame
/// pool's prefetch-hit counter, `prefetch_cost_ms` is zero because real
/// prefetch I/O runs on background workers the user never waits for).
fn accumulate_trace(stats: &mut SessionStats, trace: QueryTrace) {
    stats.total_stall_ms += trace.stall_ms;
    stats.total_demand_misses += trace.demand_misses;
    stats.total_demand_hits += trace.demand_hits;
    stats.total_prefetched += trace.prefetched;
    stats.steps.push(trace);
}

/// A step-wise SCOUT cursor over whichever paged index shape the
/// database owns (monolithic or sharded FLAT) — the binding behind
/// `QuerySession::with_prefetch`.
pub(crate) enum DbCursor<'s> {
    Flat(SessionCursor<'s, FlatIndex<NeuronSegment>>),
    Sharded(SessionCursor<'s, ShardedIndex<FlatIndex<NeuronSegment>>>),
    Paged {
        cursor: OocCursor<'s>,
        paged: &'s PagedFlatIndex,
        stats: SessionStats,
        /// Pool-wide prefetch-hit count when the cursor bound, so the
        /// session's `useful_prefetched` reports only this cursor's
        /// walkthrough.
        prefetch_hits_at_start: u64,
    },
}

impl DbCursor<'_> {
    pub(crate) fn step(&mut self, q: &Aabb) -> QueryTrace {
        match self {
            DbCursor::Flat(c) => c.step(q),
            DbCursor::Sharded(c) => c.step(q),
            DbCursor::Paged { cursor, paged, stats, prefetch_hits_at_start } => {
                // Open validated every page, so a storage error here
                // means the file changed under a live database — same
                // contract as the infallible `SpatialIndex` lane.
                let trace = cursor.step(q).unwrap_or_else(|e| {
                    panic!("paged walkthrough: page file failed after a validated open: {e}")
                });
                accumulate_trace(stats, trace);
                stats.useful_prefetched =
                    paged.frame_stats().prefetch_hits - *prefetch_hits_at_start;
                trace
            }
        }
    }

    pub(crate) fn stats(&self) -> &SessionStats {
        match self {
            DbCursor::Flat(c) => c.stats(),
            DbCursor::Sharded(c) => c.stats(),
            DbCursor::Paged { stats, .. } => stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::Vec3;
    use neurospatial_model::{CircuitBuilder, DensityStats};

    fn db() -> (NeuroDb, Circuit) {
        let c = CircuitBuilder::new(5).neurons(10).build();
        (NeuroDb::from_circuit(&c), c)
    }

    #[test]
    fn range_query_counts_match_scan() {
        let (db, c) = db();
        assert_eq!(db.len(), c.segments().len());
        let q = Aabb::cube(c.bounds().center(), 40.0);
        let out = db.range_query(&q);
        let brute = c.segments().iter().filter(|s| s.aabb().intersects(&q)).count();
        assert_eq!(out.len(), brute);
        assert_eq!(out.stats.results as usize, brute);
    }

    #[test]
    fn every_backend_answers_the_same_queries() {
        let c = CircuitBuilder::new(8).neurons(6).build();
        let q = Aabb::cube(c.bounds().center(), 35.0);
        let want = NeuroDb::from_circuit(&c).range_query(&q).sorted_ids();
        for backend in IndexBackend::ALL {
            let db = NeuroDb::builder().circuit(&c).backend(backend).build().expect("valid");
            assert_eq!(db.backend(), backend);
            assert_eq!(db.range_query(&q).sorted_ids(), want, "{backend}");
        }
    }

    #[test]
    fn builder_by_name_and_bad_names() {
        let c = CircuitBuilder::new(5).neurons(2).build();
        let db =
            NeuroDb::builder().circuit(&c).backend_named("str-packed").build().expect("known name");
        assert_eq!(db.backend(), IndexBackend::StrPacked);
        assert!(matches!(
            NeuroDb::builder().circuit(&c).backend_named("btree").build(),
            Err(NeuroError::UnknownBackend { .. })
        ));
        assert!(matches!(NeuroDb::builder().build(), Err(NeuroError::MissingSegments)));
        // FLAT accepts tiny pages (legacy behaviour)…
        assert!(NeuroDb::builder().circuit(&c).page_capacity(1).build().is_ok());
        // …but a zero capacity, or sub-fan-out R-Tree pages, are rejected.
        assert!(matches!(
            NeuroDb::builder().circuit(&c).page_capacity(0).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
        assert!(matches!(
            NeuroDb::builder()
                .circuit(&c)
                .backend(IndexBackend::StrPacked)
                .page_capacity(2)
                .build(),
            Err(NeuroError::InvalidConfig(_))
        ));
    }

    #[test]
    fn paged_database_matches_in_memory_and_reports_io() {
        let c = CircuitBuilder::new(5).neurons(10).build();
        let mem = NeuroDb::from_circuit(&c);
        let ooc = NeuroDb::builder()
            .circuit(&c)
            .paged(true)
            .frame_budget(2)
            .build()
            .expect("temp dir is writable");
        assert!(ooc.paged_index().is_some() && mem.paged_index().is_none());
        assert_eq!(ooc.shard_count(), 1);
        let q = Aabb::cube(c.bounds().center(), 40.0);
        let (want, got) = (mem.range_query(&q), ooc.range_query(&q));
        assert_eq!(want.sorted_ids(), got.sorted_ids());
        assert_eq!(want.stats.nodes_read, got.stats.nodes_read);
        assert!(got.stats.cache_hits + got.stats.cache_misses > 0);
        assert_eq!(want.stats.cache_hits + want.stats.cache_misses, 0);
    }

    #[test]
    fn paged_walkthrough_runs_on_the_real_pager() {
        let c = CircuitBuilder::new(5).neurons(10).build();
        let db = NeuroDb::builder()
            .circuit(&c)
            .paged(true)
            .frame_budget(4)
            .prefetch_workers(1)
            .build()
            .expect("paged flat");
        let path = db.navigation_path(&c, 1, 20.0, 8.0).expect("path");
        let report = db.walkthrough(&path, WalkthroughMethod::Scout).expect("paged walkthrough");
        assert_eq!(report.steps.len(), path.queries.len());
        assert_eq!(report.method, "scout");
        let touched: u64 = report.steps.iter().map(|s| s.pages_demanded).sum();
        assert_eq!(touched, report.total_demand_hits + report.total_demand_misses);
    }

    #[test]
    fn paged_mode_rejects_non_flat_and_sharded_layouts() {
        let c = CircuitBuilder::new(5).neurons(2).build();
        assert!(matches!(
            NeuroDb::builder().circuit(&c).backend(IndexBackend::RTree).paged(true).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
        assert!(matches!(
            NeuroDb::builder().circuit(&c).paged(true).shards(2).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
    }

    #[test]
    fn explicit_page_file_survives_and_reopens() {
        let c = CircuitBuilder::new(5).neurons(6).build();
        let path = std::env::temp_dir()
            .join(format!("neurospatial-db-reopen-{}.flatpages", std::process::id()));
        let q = Aabb::cube(c.bounds().center(), 30.0);
        let want = {
            let db = NeuroDb::builder()
                .circuit(&c)
                .page_file(&path)
                .build()
                .expect("explicit page file");
            db.range_query(&q).sorted_ids()
        };
        // The database dropped; the explicit file must still be there.
        assert!(path.exists());
        let reopened = PagedFlatIndex::open(&path, OocConfig::default()).expect("reopen");
        assert_eq!(reopened.range_query(&q).sorted_ids(), want);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synapse_join_uses_the_default_parity_populations() {
        let (db, c) = db();
        assert_eq!(db.population_names(), vec!["even", "odd"]);
        let r = db.find_synapse_candidates(2.0).expect("two populations");
        assert!(r.is_duplicate_free());
        // Every reported pair crosses the even/odd population boundary.
        let (a, b) = c.split_populations();
        for &(i, j) in &r.pairs {
            assert_eq!(a[i as usize].neuron % 2, 0);
            assert_eq!(b[j as usize].neuron % 2, 1);
        }
    }

    #[test]
    fn duplicate_population_names_are_rejected() {
        let c = CircuitBuilder::new(4).neurons(4).build();
        let err = NeuroDb::builder()
            .circuit(&c)
            .split_populations("x", "x", |s| s.neuron % 2 == 0)
            .build();
        assert!(matches!(err, Err(NeuroError::InvalidConfig(msg)) if msg.contains("'x'")));
    }

    #[test]
    fn custom_predicate_populations() {
        let c = CircuitBuilder::new(12).neurons(9).build();
        let db = NeuroDb::builder()
            .circuit(&c)
            .split_populations("low", "high", |s| s.neuron < 3)
            .build()
            .expect("valid");
        assert_eq!(db.population_names(), vec!["low", "high"]);
        let low = db.population("low").expect("exists");
        assert!(low.iter().all(|s| s.neuron < 3));
        assert!(!low.is_empty());
        let total = low.len() + db.population("high").expect("exists").len();
        assert_eq!(total, c.segments().len());
        assert!(matches!(db.population("mid"), Err(NeuroError::UnknownPopulation { .. })));
        // join_between is symmetric in coverage with find_synapse_candidates.
        let a = db.join_between("low", "high", 1.5).expect("both exist").sorted_pairs();
        let b = db.find_synapse_candidates(1.5).expect("two pops").sorted_pairs();
        assert_eq!(a, b);
    }

    #[test]
    fn label_fn_builds_many_populations() {
        let c = CircuitBuilder::new(3).neurons(8).build();
        let db = NeuroDb::builder()
            .circuit(&c)
            .populations_by(|s| format!("layer{}", s.neuron % 3))
            .build()
            .expect("valid");
        assert_eq!(db.populations().len(), 3);
        let total: usize = db.populations().iter().map(|p| p.segments.len()).sum();
        assert_eq!(total, c.segments().len());
        // First two populations feed the synapse join.
        assert!(db.find_synapse_candidates(1.0).is_ok());
    }

    #[test]
    fn walkthrough_all_methods_run() {
        let (db, c) = db();
        let path = db.navigation_path(&c, 3, 20.0, 8.0).expect("path exists");
        let mut stalls = Vec::new();
        for m in WalkthroughMethod::ALL {
            let stats = db.walkthrough(&path, m).expect("flat backend");
            assert_eq!(stats.steps.len(), path.queries.len());
            assert_eq!(stats.method, m.name());
            stalls.push((m, stats.total_stall_ms));
        }
        // The no-prefetch baseline is never the fastest.
        let none = stalls.iter().find(|(m, _)| *m == WalkthroughMethod::None).expect("ran").1;
        let scout = stalls.iter().find(|(m, _)| *m == WalkthroughMethod::Scout).expect("ran").1;
        assert!(scout <= none);
    }

    #[test]
    fn sharded_databases_answer_like_monolithic_ones() {
        let c = CircuitBuilder::new(6).neurons(8).build();
        let q = Aabb::cube(c.bounds().center(), 30.0);
        let p = c.segments()[5].geom.center();
        for backend in IndexBackend::ALL {
            let mono = NeuroDb::builder().circuit(&c).backend(backend).build().expect("valid");
            let sharded = NeuroDb::builder()
                .circuit(&c)
                .backend(backend)
                .shards(4)
                .threads(2)
                .build()
                .expect("valid");
            assert_eq!(sharded.shard_count(), 4, "{backend}");
            assert_eq!(mono.shard_count(), 1, "{backend}");
            assert_eq!(sharded.len(), mono.len());
            assert_eq!(sharded.range_query(&q).sorted_ids(), mono.range_query(&q).sorted_ids());
            let ids = |ns: &[Neighbor]| ns.iter().map(|n| n.segment.id).collect::<Vec<_>>();
            assert_eq!(ids(&sharded.knn(p, 7).0), ids(&mono.knn(p, 7).0), "{backend} knn");
        }
    }

    #[test]
    fn sharded_flat_still_walks_through() {
        let c = CircuitBuilder::new(5).neurons(10).build();
        let db = NeuroDb::builder().circuit(&c).shards(3).threads(2).build().expect("valid");
        assert_eq!(db.backend(), IndexBackend::Flat);
        assert!(db.flat_index().is_none(), "sharded flat has no single page space");
        let path = db.navigation_path(&c, 3, 20.0, 8.0).expect("path exists");
        let stats = db.walkthrough(&path, WalkthroughMethod::Scout).expect("sharded flat walks");
        assert_eq!(stats.steps.len(), path.queries.len());
    }

    #[test]
    fn sharded_backend_names_and_invalid_counts() {
        let c = CircuitBuilder::new(5).neurons(4).build();
        let db = NeuroDb::builder()
            .circuit(&c)
            .backend_named("sharded:str-packed")
            .build()
            .expect("sharded name is known");
        assert_eq!(db.backend(), IndexBackend::StrPacked);
        assert!(db.shard_count() >= 2, "sharded: name implies > 1 shard");
        // Explicit shard counts survive the name prefix.
        let db = NeuroDb::builder()
            .circuit(&c)
            .backend_named("sharded:rplus")
            .shards(5)
            .build()
            .expect("valid");
        assert_eq!(db.shard_count(), 5);
        assert!(matches!(
            NeuroDb::builder().circuit(&c).backend_named("sharded:btree").build(),
            Err(NeuroError::UnknownBackend { .. })
        ));
        assert!(matches!(
            NeuroDb::builder().circuit(&c).shards(0).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
        assert!(matches!(
            NeuroDb::builder().circuit(&c).threads(0).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
        // An explicit zero is reported even when a `sharded:` name would
        // otherwise bump the count.
        assert!(matches!(
            NeuroDb::builder().circuit(&c).backend_named("sharded:flat").shards(0).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
    }

    #[test]
    fn walkthrough_requires_flat() {
        let c = CircuitBuilder::new(5).neurons(4).build();
        let db =
            NeuroDb::builder().circuit(&c).backend(IndexBackend::StrPacked).build().expect("valid");
        let path = db.navigation_path(&c, 1, 15.0, 6.0).expect("path");
        assert!(matches!(
            db.walkthrough(&path, WalkthroughMethod::Scout),
            Err(NeuroError::WalkthroughUnsupported { .. })
        ));
    }

    #[test]
    fn walkthrough_method_names_round_trip() {
        for m in WalkthroughMethod::ALL {
            assert_eq!(m.name().parse::<WalkthroughMethod>().expect("round trip"), m);
            assert_eq!(m.to_string(), m.name());
        }
        assert!("warp".parse::<WalkthroughMethod>().is_err());
    }

    #[test]
    fn join_against_external_population() {
        let (db, _) = db();
        let other = CircuitBuilder::new(99).neurons(2).build();
        let r = db.join_against(other.segments(), 1.0);
        assert!(r.is_duplicate_free());
        assert_eq!(r.stats.results as usize, r.pairs.len());
    }

    #[test]
    fn join_against_matches_concatenated_join() {
        let (db, c) = db();
        let other = CircuitBuilder::new(77).neurons(3).build();
        let merged = db.join_against(other.segments(), 1.5);
        // Reference: one join over the concatenation of the populations.
        let (a, b) = c.split_populations();
        let mut all = a;
        all.extend_from_slice(&b);
        let reference = TouchJoin::default().join(&all, other.segments(), 1.5);
        assert_eq!(merged.sorted_pairs(), reference.sorted_pairs());
    }

    #[test]
    fn batched_queries_match_singles() {
        let (db, c) = db();
        let regions: Vec<Aabb> =
            (0..4).map(|i| Aabb::cube(c.segments()[i * 11].geom.center(), 20.0)).collect();
        let batch = db.range_query_many(&regions);
        assert_eq!(batch.len(), regions.len());
        for (out, r) in batch.iter().zip(&regions) {
            assert_eq!(out.sorted_ids(), db.range_query(r).sorted_ids());
        }
    }

    #[test]
    fn region_stats_aggregate_correctly() {
        let (db, c) = db();
        // Centre the region on actual data (the bounds centre can fall in
        // empty space between neurons).
        let q = Aabb::cube(c.segments()[0].geom.center(), 50.0);
        let s = db.region_stats(&q);
        let out = db.range_query(&q);
        assert!(!out.is_empty());
        assert_eq!(s.count, out.len());
        let want_len: f64 = out.segments.iter().map(|h| h.geom.axis_length()).sum();
        assert!((s.total_cable_length - want_len).abs() < 1e-9);
        assert!(s.mean_radius > 0.0);
        assert!(s.density > 0.0);
        assert!(s.neuron_count >= 1 && s.neuron_count <= c.neuron_count());
        assert!(s.total_cable_volume > 0.0);

        // Far-away region: all-zero stats.
        let far = Aabb::cube(Vec3::splat(1e7), 10.0);
        assert_eq!(db.region_stats(&far), RegionStats::default());
    }

    #[test]
    fn dense_region_denser_than_sparse() {
        let (db, c) = db();
        let grid = DensityStats::new(c.bounds(), [5, 5, 5], c.segments());
        let dense = db.region_stats(&Aabb::cube(grid.densest_cell_center(), 25.0));
        let sparse = db.region_stats(&Aabb::cube(grid.sparsest_cell_center(), 25.0));
        assert!(dense.density >= sparse.density);
    }

    #[test]
    fn empty_database() {
        let db = NeuroDb::builder().segments(vec![]).build().expect("empty is valid");
        assert!(db.is_empty());
        let out = db.range_query(&Aabb::cube(Vec3::ZERO, 5.0));
        assert!(out.is_empty());
        assert!(db.find_synapse_candidates(1.0).expect("parity pops exist").pairs.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_still_works() {
        let c = CircuitBuilder::new(2).neurons(3).build();
        let db = NeuroDb::from_segments(c.segments().to_vec(), NeuroDbConfig::default());
        assert_eq!(db.len(), c.segments().len());
        assert_eq!(db.backend(), IndexBackend::Flat);
    }
}
