//! The high-level database facade tying the three systems together.

use neurospatial_flat::FlatQueryStats;
use neurospatial_geom::Aabb;
use neurospatial_model::{Circuit, NavigationPath, NeuronSegment};
use neurospatial_scout::{
    ExplorationSession, ExtrapolationPrefetcher, HilbertPrefetcher, MarkovPrefetcher, NoPrefetch,
    Prefetcher, ScoutPrefetcher, SessionConfig, SessionStats,
};
use neurospatial_touch::{JoinResult, SpatialJoin, TouchJoin};

/// Tuning knobs of a [`NeuroDb`].
#[derive(Debug, Clone, Copy)]
pub struct NeuroDbConfig {
    /// FLAT page capacity (objects per page).
    pub page_capacity: usize,
    /// Exploration-session settings (buffer pool, cost model, think time).
    pub session: SessionConfig,
    /// Distance-join engine configuration.
    pub join: TouchJoin,
}

impl Default for NeuroDbConfig {
    fn default() -> Self {
        let session = SessionConfig::default();
        NeuroDbConfig { page_capacity: session.page_capacity, session, join: TouchJoin::default() }
    }
}

/// Which prefetching policy a walkthrough uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkthroughMethod {
    /// No prefetching: every page faults on demand.
    None,
    /// Storage-order (Hilbert curve) prefetching.
    Hilbert,
    /// Camera-motion extrapolation.
    Extrapolation,
    /// History-based Markov-chain prediction (the paper's [8]); cold on
    /// first traversals of massive models.
    Markov,
    /// SCOUT content-aware prefetching.
    Scout,
}

impl WalkthroughMethod {
    /// All methods, in the order the experiment tables report them.
    pub const ALL: [WalkthroughMethod; 5] = [
        WalkthroughMethod::None,
        WalkthroughMethod::Hilbert,
        WalkthroughMethod::Extrapolation,
        WalkthroughMethod::Markov,
        WalkthroughMethod::Scout,
    ];

    /// Instantiate the corresponding prefetcher.
    pub fn prefetcher(&self) -> Box<dyn Prefetcher> {
        match self {
            WalkthroughMethod::None => Box::new(NoPrefetch),
            WalkthroughMethod::Hilbert => Box::new(HilbertPrefetcher::default()),
            WalkthroughMethod::Extrapolation => Box::new(ExtrapolationPrefetcher::default()),
            WalkthroughMethod::Markov => Box::new(MarkovPrefetcher::default()),
            WalkthroughMethod::Scout => Box::new(ScoutPrefetcher::default()),
        }
    }
}

/// Aggregate statistics of a spatial region — what §2.1 of the paper
/// describes FLAT being used for: "to compute statistics (tissue density
/// etc.) of the models they build".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionStats {
    /// Segments intersecting the region.
    pub count: usize,
    /// Total axis (cable) length of those segments (µm).
    pub total_cable_length: f64,
    /// Total membrane volume approximation: Σ π r² ℓ (µm³).
    pub total_cable_volume: f64,
    /// Mean capsule radius (µm); 0 if the region is empty.
    pub mean_radius: f64,
    /// Segments per µm³ of the queried region.
    pub density: f64,
    /// Distinct neurons represented.
    pub neuron_count: usize,
}

/// A spatial database over one set of neuron segments.
///
/// Owns a FLAT index (all range queries and walkthroughs run through it)
/// and exposes the TOUCH join for synapse placement.
pub struct NeuroDb {
    session: ExplorationSession,
    config: NeuroDbConfig,
    populations: (Vec<NeuronSegment>, Vec<NeuronSegment>),
}

impl NeuroDb {
    /// Open a database over a generated circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Self::from_segments(circuit.segments().to_vec(), NeuroDbConfig::default())
    }

    /// Open a database over raw segments with explicit configuration.
    pub fn from_segments(segments: Vec<NeuronSegment>, config: NeuroDbConfig) -> Self {
        let mut session_config = config.session;
        session_config.page_capacity = config.page_capacity;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for s in &segments {
            if s.neuron % 2 == 0 {
                a.push(*s);
            } else {
                b.push(*s);
            }
        }
        let session = ExplorationSession::new(segments, session_config);
        NeuroDb { session, config, populations: (a, b) }
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        self.session.index().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying FLAT index.
    pub fn index(&self) -> &neurospatial_flat::FlatIndex<NeuronSegment> {
        self.session.index()
    }

    /// Execute a spatial range query (FLAT seed-and-crawl).
    pub fn range_query(&self, region: &Aabb) -> (Vec<&NeuronSegment>, FlatQueryStats) {
        self.session.index().range_query(region)
    }

    /// Compute aggregate tissue statistics for a region (one FLAT range
    /// query plus a linear pass over the result).
    pub fn region_stats(&self, region: &Aabb) -> RegionStats {
        let (hits, _) = self.range_query(region);
        if hits.is_empty() {
            return RegionStats::default();
        }
        let mut stats = RegionStats { count: hits.len(), ..Default::default() };
        let mut neurons = std::collections::HashSet::new();
        let mut radius_sum = 0.0;
        for s in &hits {
            let len = s.geom.axis_length();
            stats.total_cable_length += len;
            stats.total_cable_volume += std::f64::consts::PI * s.geom.radius * s.geom.radius * len;
            radius_sum += s.geom.radius;
            neurons.insert(s.neuron);
        }
        stats.mean_radius = radius_sum / hits.len() as f64;
        stats.neuron_count = neurons.len();
        stats.density = hits.len() as f64 / region.volume().max(f64::MIN_POSITIVE);
        stats
    }

    /// Find synapse candidates between the even- and odd-neuron
    /// populations: all segment pairs whose capsule surfaces come within
    /// `epsilon` of each other (TOUCH distance join).
    pub fn find_synapse_candidates(&self, epsilon: f64) -> JoinResult {
        let (a, b) = &self.populations;
        self.config.join.join(a, b, epsilon)
    }

    /// Distance-join this database's segments against an external
    /// population.
    pub fn join_against(&self, other: &[NeuronSegment], epsilon: f64) -> JoinResult {
        let (a, b) = &self.populations;
        let mut all: Vec<NeuronSegment> = Vec::with_capacity(a.len() + b.len());
        all.extend_from_slice(a);
        all.extend_from_slice(b);
        self.config.join.join(&all, other, epsilon)
    }

    /// Build a branch-following navigation path through `circuit`
    /// (convenience wrapper; the circuit must be the one this database
    /// was opened over for the walkthrough to make sense).
    pub fn navigation_path(
        &self,
        circuit: &Circuit,
        seed: u64,
        view_radius: f64,
        step: f64,
    ) -> Option<NavigationPath> {
        NavigationPath::along_random_branch(circuit, seed, view_radius, step)
    }

    /// Replay a walkthrough with the given prefetching method and report
    /// the session statistics (stall time, hit ratio, prefetch precision).
    pub fn walkthrough(&self, path: &NavigationPath, method: WalkthroughMethod) -> SessionStats {
        let mut prefetcher = method.prefetcher();
        self.session.run(path, prefetcher.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_model::{CircuitBuilder, DensityStats};
    use neurospatial_geom::Vec3;

    fn db() -> (NeuroDb, neurospatial_model::Circuit) {
        let c = CircuitBuilder::new(5).neurons(10).build();
        (NeuroDb::from_circuit(&c), c)
    }

    #[test]
    fn range_query_counts_match_scan() {
        let (db, c) = db();
        assert_eq!(db.len(), c.segments().len());
        let q = Aabb::cube(c.bounds().center(), 40.0);
        let (hits, stats) = db.range_query(&q);
        let brute = c.segments().iter().filter(|s| s.aabb().intersects(&q)).count();
        assert_eq!(hits.len(), brute);
        assert_eq!(stats.results as usize, brute);
    }

    #[test]
    fn synapse_join_is_symmetric_population_split() {
        let (db, c) = db();
        let r = db.find_synapse_candidates(2.0);
        assert!(r.is_duplicate_free());
        // Every reported pair crosses the even/odd population boundary.
        let (a, b) = c.split_populations();
        for &(i, j) in &r.pairs {
            assert_eq!(a[i as usize].neuron % 2, 0);
            assert_eq!(b[j as usize].neuron % 2, 1);
        }
    }

    #[test]
    fn walkthrough_all_methods_run() {
        let (db, c) = db();
        let path = db.navigation_path(&c, 3, 20.0, 8.0).expect("path exists");
        let mut stalls = Vec::new();
        for m in WalkthroughMethod::ALL {
            let stats = db.walkthrough(&path, m);
            assert_eq!(stats.steps.len(), path.queries.len());
            stalls.push((m, stats.total_stall_ms));
        }
        // The no-prefetch baseline is never the fastest.
        let none = stalls.iter().find(|(m, _)| *m == WalkthroughMethod::None).expect("ran").1;
        let scout = stalls.iter().find(|(m, _)| *m == WalkthroughMethod::Scout).expect("ran").1;
        assert!(scout <= none);
    }

    #[test]
    fn join_against_external_population() {
        let (db, _) = db();
        let other = CircuitBuilder::new(99).neurons(2).build();
        let r = db.join_against(other.segments(), 1.0);
        assert!(r.is_duplicate_free());
    }

    #[test]
    fn region_stats_aggregate_correctly() {
        let (db, c) = db();
        // Centre the region on actual data (the bounds centre can fall in
        // empty space between neurons).
        let q = Aabb::cube(c.segments()[0].geom.center(), 50.0);
        let s = db.region_stats(&q);
        let (hits, _) = db.range_query(&q);
        assert!(!hits.is_empty());
        assert_eq!(s.count, hits.len());
        let want_len: f64 = hits.iter().map(|h| h.geom.axis_length()).sum();
        assert!((s.total_cable_length - want_len).abs() < 1e-9);
        assert!(s.mean_radius > 0.0);
        assert!(s.density > 0.0);
        assert!(s.neuron_count >= 1 && s.neuron_count <= c.neuron_count());
        assert!(s.total_cable_volume > 0.0);

        // Far-away region: all-zero stats.
        let far = Aabb::cube(Vec3::splat(1e7), 10.0);
        assert_eq!(db.region_stats(&far), RegionStats::default());
    }

    #[test]
    fn dense_region_denser_than_sparse() {
        let (db, c) = db();
        let grid = DensityStats::new(c.bounds(), [5, 5, 5], c.segments());
        let dense = db.region_stats(&Aabb::cube(grid.densest_cell_center(), 25.0));
        let sparse = db.region_stats(&Aabb::cube(grid.sparsest_cell_center(), 25.0));
        assert!(dense.density >= sparse.density);
    }

    #[test]
    fn empty_database() {
        let db = NeuroDb::from_segments(vec![], NeuroDbConfig::default());
        assert!(db.is_empty());
        let (hits, _) = db.range_query(&Aabb::cube(neurospatial_geom::Vec3::ZERO, 5.0));
        assert!(hits.is_empty());
        assert!(db.find_synapse_candidates(1.0).pairs.is_empty());
    }
}
