//! The high-level database facade tying the three systems together.
//!
//! Construction goes through [`NeuroDbBuilder`]: pick a data source, an
//! index backend ([`IndexBackend`], by value or by name) and how segments
//! split into named populations for the synapse join. The old
//! `from_segments(cfg)` constructor (hardcoded FLAT, hardcoded even/odd
//! split, tuple returns, panics) survives only as a deprecated shim.

use crate::delta::{self, DeltaBuffer, WriteOp};
use crate::error::NeuroError;
use crate::index::{
    IndexBackend, IndexParams, Neighbor, QueryOutput, QueryScratch, QueryStats, SpatialIndex,
};
use crate::paged::PagedFlatIndex;
use crate::query::Query;
use crate::shard::ShardedIndex;
use neurospatial_flat::{FlatBuildParams, FlatIndex};
use neurospatial_geom::{Aabb, Swap, Vec3};
use neurospatial_model::{Circuit, NavigationPath, NeuronSegment};
use neurospatial_scout::{
    ExplorationSession, ExtrapolationPrefetcher, HilbertPrefetcher, MarkovPrefetcher, NoPrefetch,
    OocConfig, OocCursor, Prefetcher, QueryTrace, ScoutPrefetcher, SessionConfig, SessionCursor,
    SessionStats,
};
use neurospatial_storage::{EvictionPolicy, FaultLog, FaultPlan, FileLog, LogIo, Wal};
use neurospatial_touch::{JoinResult, SpatialJoin, TouchJoin};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Tuning knobs of a [`NeuroDb`].
#[derive(Debug, Clone, Copy)]
pub struct NeuroDbConfig {
    /// Index granularity (FLAT page capacity / R-Tree fan-out).
    pub page_capacity: usize,
    /// Space partitions for the sharded executor (1 = monolithic index).
    pub shards: usize,
    /// Worker threads for sharded query execution.
    pub threads: usize,
    /// Exploration-session settings (buffer pool, cost model, think time).
    pub session: SessionConfig,
    /// Distance-join engine configuration.
    pub join: TouchJoin,
}

impl Default for NeuroDbConfig {
    fn default() -> Self {
        let session = SessionConfig::default();
        NeuroDbConfig {
            page_capacity: session.page_capacity,
            shards: 1,
            threads: 1,
            session,
            join: TouchJoin::default(),
        }
    }
}

/// Which prefetching policy a walkthrough uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalkthroughMethod {
    /// No prefetching: every page faults on demand.
    None,
    /// Storage-order (Hilbert curve) prefetching.
    Hilbert,
    /// Camera-motion extrapolation.
    Extrapolation,
    /// History-based Markov-chain prediction (the paper's \[8\]); cold on
    /// first traversals of massive models.
    Markov,
    /// SCOUT content-aware prefetching.
    Scout,
}

impl WalkthroughMethod {
    /// All methods, in the order the experiment tables report them.
    pub const ALL: [WalkthroughMethod; 5] = [
        WalkthroughMethod::None,
        WalkthroughMethod::Hilbert,
        WalkthroughMethod::Extrapolation,
        WalkthroughMethod::Markov,
        WalkthroughMethod::Scout,
    ];

    /// Canonical name — matches the `method` string in [`SessionStats`].
    pub fn name(&self) -> &'static str {
        match self {
            WalkthroughMethod::None => "none",
            WalkthroughMethod::Hilbert => "hilbert",
            WalkthroughMethod::Extrapolation => "extrapolation",
            WalkthroughMethod::Markov => "markov",
            WalkthroughMethod::Scout => "scout",
        }
    }

    /// Instantiate the corresponding prefetcher.
    pub fn prefetcher(&self) -> Box<dyn Prefetcher> {
        match self {
            WalkthroughMethod::None => Box::new(NoPrefetch),
            WalkthroughMethod::Hilbert => Box::new(HilbertPrefetcher::default()),
            WalkthroughMethod::Extrapolation => Box::new(ExtrapolationPrefetcher::default()),
            WalkthroughMethod::Markov => Box::new(MarkovPrefetcher::default()),
            WalkthroughMethod::Scout => Box::new(ScoutPrefetcher::default()),
        }
    }
}

impl fmt::Display for WalkthroughMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WalkthroughMethod {
    type Err = NeuroError;

    fn from_str(s: &str) -> Result<Self, NeuroError> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "no-prefetch" => Ok(WalkthroughMethod::None),
            "hilbert" => Ok(WalkthroughMethod::Hilbert),
            "extrapolation" | "extrapolate" => Ok(WalkthroughMethod::Extrapolation),
            "markov" => Ok(WalkthroughMethod::Markov),
            "scout" => Ok(WalkthroughMethod::Scout),
            _ => Err(NeuroError::InvalidConfig(format!(
                "unknown walkthrough method '{s}' (known: {})",
                WalkthroughMethod::ALL.map(|m| m.name()).join(", ")
            ))),
        }
    }
}

/// Aggregate statistics of a spatial region — what §2.1 of the paper
/// describes FLAT being used for: "to compute statistics (tissue density
/// etc.) of the models they build".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionStats {
    /// Segments intersecting the region.
    pub count: usize,
    /// Total axis (cable) length of those segments (µm).
    pub total_cable_length: f64,
    /// Total membrane volume approximation: Σ π r² ℓ (µm³).
    pub total_cable_volume: f64,
    /// Mean capsule radius (µm); 0 if the region is empty.
    pub mean_radius: f64,
    /// Segments per µm³ of the queried region.
    pub density: f64,
    /// Distinct neurons represented.
    pub neuron_count: usize,
}

/// One named segment population (e.g. "axons" / "dendrites" for the
/// synapse join).
pub struct Population {
    pub name: String,
    pub segments: Vec<NeuronSegment>,
}

/// How the builder partitions segments into populations.
enum PopulationSpec {
    /// Two populations, "even" / "odd", split on neuron-id parity — the
    /// historical default, kept for the demo's synapse workload.
    Parity,
    /// Two named populations split by a predicate (`true` → first).
    Split { first: String, second: String, pred: Box<dyn Fn(&NeuronSegment) -> bool> },
    /// Arbitrarily many populations keyed by a label function; populations
    /// are ordered by first appearance.
    Labels(Box<dyn Fn(&NeuronSegment) -> String>),
}

impl PopulationSpec {
    fn partition(&self, segments: &[NeuronSegment]) -> Vec<Population> {
        match self {
            PopulationSpec::Parity => {
                let (mut even, mut odd) = (Vec::new(), Vec::new());
                for s in segments {
                    if s.neuron % 2 == 0 {
                        even.push(*s);
                    } else {
                        odd.push(*s);
                    }
                }
                vec![
                    Population { name: "even".into(), segments: even },
                    Population { name: "odd".into(), segments: odd },
                ]
            }
            PopulationSpec::Split { first, second, pred } => {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                for s in segments {
                    if pred(s) {
                        a.push(*s);
                    } else {
                        b.push(*s);
                    }
                }
                vec![
                    Population { name: first.clone(), segments: a },
                    Population { name: second.clone(), segments: b },
                ]
            }
            PopulationSpec::Labels(label_of) => {
                let mut pops: Vec<Population> = Vec::new();
                for s in segments {
                    let name = label_of(s);
                    match pops.iter_mut().find(|p| p.name == name) {
                        Some(p) => p.segments.push(*s),
                        None => pops.push(Population { name, segments: vec![*s] }),
                    }
                }
                pops
            }
        }
    }
}

/// Builder for [`NeuroDb`]: data source, backend, populations, tuning.
///
/// ```
/// use neurospatial::prelude::*;
///
/// let circuit = CircuitBuilder::new(7).neurons(6).build();
/// let db = NeuroDb::builder()
///     .circuit(&circuit)
///     .backend(IndexBackend::StrPacked)
///     .split_populations("axons", "dendrites", |s| s.neuron % 2 == 0)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(db.backend(), IndexBackend::StrPacked);
/// assert_eq!(db.population_names(), vec!["axons", "dendrites"]);
/// ```
pub struct NeuroDbBuilder {
    segments: Option<Vec<NeuronSegment>>,
    backend: IndexBackend,
    backend_name: Option<String>,
    config: NeuroDbConfig,
    populations: PopulationSpec,
    paged: bool,
    page_file: Option<PathBuf>,
    ooc: OocConfig,
    durable: Option<PathBuf>,
    refreeze_threshold: usize,
    wal_faults: Option<FaultPlan>,
}

impl Default for NeuroDbBuilder {
    fn default() -> Self {
        NeuroDbBuilder {
            segments: None,
            backend: IndexBackend::Flat,
            backend_name: None,
            config: NeuroDbConfig::default(),
            populations: PopulationSpec::Parity,
            paged: false,
            page_file: None,
            ooc: OocConfig::default(),
            durable: None,
            refreeze_threshold: 1024,
            wal_faults: None,
        }
    }
}

impl NeuroDbBuilder {
    /// Use a generated circuit's segments as the data source.
    pub fn circuit(mut self, circuit: &Circuit) -> Self {
        self.segments = Some(circuit.segments().to_vec());
        self
    }

    /// Use raw segments as the data source (an empty vector is a valid,
    /// empty database).
    pub fn segments(mut self, segments: Vec<NeuronSegment>) -> Self {
        self.segments = Some(segments);
        self
    }

    /// Select the index backend by value.
    pub fn backend(mut self, backend: IndexBackend) -> Self {
        self.backend = backend;
        self.backend_name = None;
        self
    }

    /// Select the index backend by name (e.g. from a CLI flag); parsing
    /// errors surface at [`build`](Self::build). A `sharded:` prefix
    /// (e.g. `"sharded:rtree"`) selects the sharded executor over the
    /// named backend, raising the shard count to at least 2 if
    /// [`shards`](Self::shards) was not set.
    pub fn backend_named<S: Into<String>>(mut self, name: S) -> Self {
        self.backend_name = Some(name.into());
        self
    }

    /// Index granularity (FLAT page capacity / R-Tree fan-out).
    pub fn page_capacity(mut self, capacity: usize) -> Self {
        self.config.page_capacity = capacity;
        self
    }

    /// Space-partition the dataset into `shards` Hilbert-ordered shards,
    /// one backend index per shard ([`ShardedIndex`]). 1 (the default)
    /// keeps a monolithic index; 0 is rejected at
    /// [`build`](Self::build).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Worker threads for sharded query execution (also rejects 0 at
    /// [`build`](Self::build); ignored by monolithic indexes).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Spill the FLAT index to a page file on disk and query it
    /// out-of-core through the real pager: segments live in a
    /// checksummed page file, a bounded frame pool keeps
    /// [`frame_budget`](Self::frame_budget) pages resident, and
    /// [`prefetch_workers`](Self::prefetch_workers) background threads
    /// read pages ahead of the exploration cursor. Results and logical
    /// statistics stay byte-identical to the in-memory FLAT backend;
    /// the I/O shows up in [`QueryStats`]'s `cache_*` fields.
    ///
    /// Only valid with the (monolithic) FLAT backend — any other
    /// combination is rejected at [`build`](Self::build). The page file
    /// is process-unique in the temp directory and deleted on drop
    /// unless [`page_file`](Self::page_file) names one explicitly.
    pub fn paged(mut self, paged: bool) -> Self {
        self.paged = paged;
        self
    }

    /// Persist the paged index to an explicit page file (implies
    /// [`paged`](Self::paged)); the file survives the database, so a
    /// later session can reopen it without re-indexing.
    pub fn page_file<P: Into<PathBuf>>(mut self, path: P) -> Self {
        self.page_file = Some(path.into());
        self.paged = true;
        self
    }

    /// Frame budget of the paged index's buffer pool, in pages. `0`
    /// (the default) caches every page — still checksum-verified,
    /// still reading through the pager. Only meaningful with
    /// [`paged`](Self::paged).
    pub fn frame_budget(mut self, frames: usize) -> Self {
        self.ooc.frame_budget = frames;
        self
    }

    /// Eviction policy of the paged index's frame pool.
    pub fn eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.ooc.eviction = policy;
        self
    }

    /// Background prefetch workers for the paged index (`0` disables
    /// prefetching; every page read is then a demand read).
    pub fn prefetch_workers(mut self, workers: usize) -> Self {
        self.ooc.prefetch_workers = workers;
        self
    }

    /// Exploration-session settings for walkthroughs.
    pub fn session(mut self, session: SessionConfig) -> Self {
        self.config.session = session;
        self
    }

    /// Distance-join engine configuration.
    pub fn join(mut self, join: TouchJoin) -> Self {
        self.config.join = join;
        self
    }

    /// Full configuration in one call (overwrites the three above).
    pub fn config(mut self, config: NeuroDbConfig) -> Self {
        self.config = config;
        self
    }

    /// Open the database in **durable live-ingest** mode, backed by the
    /// write-ahead log at `path`.
    ///
    /// If the log already holds history (a previous session's checkpoint
    /// and/or committed writes), the database recovers from it and the
    /// builder's data source is ignored — the WAL is the source of truth
    /// on reopen, and recovery reconstructs exactly the acknowledged
    /// prefix. On a fresh log the builder's segments become the initial
    /// checkpoint.
    ///
    /// Live databases accept [`insert_segment`](NeuroDb::insert_segment)
    /// / [`remove_segment`](NeuroDb::remove_segment); queries merge the
    /// frozen base with the in-memory delta. Incompatible with
    /// [`paged`](Self::paged); walkthroughs are unsupported in live mode
    /// (they need the frozen page space).
    pub fn durable<P: Into<PathBuf>>(mut self, path: P) -> Self {
        self.durable = Some(path.into());
        self
    }

    /// How many buffered write ops trigger a background re-freeze when
    /// [`maybe_refreeze`](NeuroDb::maybe_refreeze) polls (default 1024).
    /// Only meaningful with [`durable`](Self::durable).
    pub fn refreeze_threshold(mut self, ops: usize) -> Self {
        self.refreeze_threshold = ops.max(1);
        self
    }

    /// Route WAL writes through a fault-injection plan (crash at a byte
    /// offset, bit flips) — the chaos-test and `--scenario=faults` knob.
    /// Only meaningful with [`durable`](Self::durable).
    pub fn wal_faults(mut self, plan: FaultPlan) -> Self {
        self.wal_faults = Some(plan);
        self
    }

    /// Two named populations split by `pred` (`true` → `first`), replacing
    /// the default even/odd neuron split.
    pub fn split_populations<S1, S2, F>(mut self, first: S1, second: S2, pred: F) -> Self
    where
        S1: Into<String>,
        S2: Into<String>,
        F: Fn(&NeuronSegment) -> bool + 'static,
    {
        self.populations = PopulationSpec::Split {
            first: first.into(),
            second: second.into(),
            pred: Box::new(pred),
        };
        self
    }

    /// Arbitrarily many populations, named by a label function (ordered by
    /// first appearance in segment order).
    pub fn populations_by<F>(mut self, label_of: F) -> Self
    where
        F: Fn(&NeuronSegment) -> String + 'static,
    {
        self.populations = PopulationSpec::Labels(Box::new(label_of));
        self
    }

    /// Finalise: build the index (sharded when `shards > 1`) and
    /// partition the populations.
    pub fn build(self) -> Result<NeuroDb, NeuroError> {
        // Register every hot-path metric now so the first measured query
        // pays no first-use allocation.
        crate::metrics::warm_metrics();
        let segments = self.segments.ok_or(NeuroError::MissingSegments)?;
        let mut config = self.config;
        let (backend, name_requests_sharding) = match &self.backend_name {
            Some(name) => match name.strip_prefix("sharded:") {
                Some(inner) => (inner.parse::<IndexBackend>()?, true),
                None => (name.parse::<IndexBackend>()?, false),
            },
            None => (self.backend, false),
        };
        // FLAT and the R+-Tree accept any page size >= 1; the R-Tree
        // fan-out is structurally >= 4.
        let min_capacity = match backend {
            IndexBackend::Flat | IndexBackend::RPlus => 1,
            IndexBackend::RTree | IndexBackend::StrPacked => 4,
        };
        if config.page_capacity < min_capacity {
            return Err(NeuroError::InvalidConfig(format!(
                "page_capacity must be >= {min_capacity} for the '{backend}' backend, got {}",
                config.page_capacity
            )));
        }
        // Validate the configured counts *before* the name-driven bump so
        // an explicit `.shards(0)` is reported, never masked.
        if config.shards == 0 || config.threads == 0 {
            return Err(NeuroError::InvalidConfig(format!(
                "shards and threads must be >= 1, got shards={} threads={}",
                config.shards, config.threads
            )));
        }
        if name_requests_sharding {
            // A `sharded:` name opts into sharding; keep an explicitly
            // configured shard count, else pick the smallest genuinely
            // sharded layout.
            config.shards = config.shards.max(2);
        }
        if self.durable.is_some() && self.paged {
            return Err(NeuroError::InvalidConfig(
                "durable (live) mode and paged (out-of-core) mode are mutually exclusive".into(),
            ));
        }
        // Durable mode: recover from the WAL before anything else. When
        // the log holds history the recovered state *replaces* the
        // builder's data source — the WAL is the source of truth on
        // reopen, so recovery reconstructs exactly the acknowledged
        // prefix regardless of what the caller passed in.
        let mut live_wal: Option<(Wal, LiveRecovery)> = None;
        let segments = if let Some(wal_path) = &self.durable {
            let log: Box<dyn LogIo> = {
                let file = FileLog::open(wal_path)?;
                match &self.wal_faults {
                    Some(plan) => Box::new(FaultLog::new(file, plan.clone())),
                    None => Box::new(file),
                }
            };
            let (mut wal, recovery) = Wal::open_log(log)?;
            let recovered = recovery.snapshot.is_some() || !recovery.ops.is_empty();
            let mut effective = match &recovery.snapshot {
                Some(bytes) => delta::decode_snapshot(bytes)?,
                None if recovered => Vec::new(),
                None => segments,
            };
            let replayed = recovery.ops.len() as u64;
            let ops: Vec<WriteOp> = recovery
                .ops
                .iter()
                .map(|bytes| delta::decode_op(bytes))
                .collect::<Result<_, _>>()?;
            delta::apply_ops(&mut effective, &ops);
            if !recovered {
                // Fresh log: pin the initial dataset as the base
                // checkpoint so replay is bounded from the first write.
                wal.checkpoint(&delta::encode_snapshot(&effective))?;
            } else if replayed > 0 {
                // Fold the replayed tail into a new checkpoint — the next
                // open replays nothing.
                wal.checkpoint(&delta::encode_snapshot(&effective))?;
            }
            live_wal = Some((
                wal,
                LiveRecovery {
                    replayed_ops: replayed,
                    recovered_torn_tail: recovery.truncated_tail,
                },
            ));
            effective
        } else {
            segments
        };
        let populations = self.populations.partition(&segments);
        // Built once here so lookups stay O(1) forever after: population
        // names resolve through a map instead of a linear scan, and each
        // segment id knows its population (what `in_population` pushdown
        // tests inside index traversals). Duplicate names are rejected —
        // they would make every name-keyed lookup (and the name-resolved
        // synapse join) silently ambiguous.
        let mut population_index: HashMap<String, usize> = HashMap::new();
        for (i, p) in populations.iter().enumerate() {
            if population_index.insert(p.name.clone(), i).is_some() {
                return Err(NeuroError::InvalidConfig(format!(
                    "duplicate population name '{}'",
                    p.name
                )));
            }
        }
        let population_of_id: HashMap<u64, u32> = populations
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.segments.iter().map(move |s| (s.id, i as u32)))
            .collect();

        config.session.page_capacity = config.page_capacity;
        let params = IndexParams {
            page_capacity: config.page_capacity,
            shards: config.shards,
            threads: config.threads,
        };
        if self.paged && (backend != IndexBackend::Flat || config.shards > 1) {
            return Err(NeuroError::InvalidConfig(format!(
                "paged (out-of-core) mode needs the monolithic 'flat' backend, \
                 got backend='{backend}' shards={}",
                config.shards
            )));
        }
        if self.paged {
            let flat_params =
                FlatBuildParams::default().with_page_capacity(config.page_capacity.max(1));
            let paged = match &self.page_file {
                Some(path) => PagedFlatIndex::create(segments, flat_params, path, self.ooc)?,
                None => PagedFlatIndex::create_temp(segments, flat_params, self.ooc)?,
            };
            return Ok(NeuroDb {
                index: DbIndex::Paged(Box::new(paged)),
                backend,
                config,
                populations,
                population_index,
                population_of_id,
            });
        }
        if let Some((wal, recovery)) = live_wal {
            let core =
                LiveCore::new(wal, recovery, segments, backend, &params, self.refreeze_threshold);
            return Ok(NeuroDb {
                index: DbIndex::Live(Box::new(core)),
                backend,
                config,
                populations,
                population_index,
                population_of_id,
            });
        }
        // FLAT gets the full exploration session (walkthroughs need
        // page-level I/O) whether monolithic or sharded — the sharded
        // executor is itself a `PagedIndex`; the session owns the only
        // copy of the index.
        let index = match (backend, config.shards > 1) {
            (IndexBackend::Flat, false) => {
                DbIndex::Flat(Box::new(ExplorationSession::new(segments, config.session)))
            }
            (IndexBackend::Flat, true) => {
                DbIndex::ShardedFlat(Box::new(ExplorationSession::from_index(
                    ShardedIndex::<FlatIndex<NeuronSegment>>::build_with(segments, &params),
                    config.session,
                )))
            }
            (other, false) => DbIndex::Boxed(other.build(segments, &params)),
            (other, true) => DbIndex::Boxed(other.build_sharded(segments, &params)),
        };
        Ok(NeuroDb { index, backend, config, populations, population_index, population_of_id })
    }
}

/// The index storage: FLAT keeps its exploration session (for
/// walkthroughs) — monolithic or sharded; the out-of-core variant owns
/// the page file and frame pool; every other backend is a plain boxed
/// [`SpatialIndex`].
enum DbIndex {
    Flat(Box<ExplorationSession>),
    ShardedFlat(Box<ExplorationSession<ShardedIndex<FlatIndex<NeuronSegment>>>>),
    Paged(Box<PagedFlatIndex>),
    Boxed(Box<dyn SpatialIndex>),
    Live(Box<LiveCore>),
}

/// One frozen generation of a live database: the immutable index plus
/// the exact segment list it was built from (the refreeze clones this
/// list, replays the delta over it and builds the next generation).
struct LiveGen {
    index: Box<dyn SpatialIndex>,
    segments: Vec<NeuronSegment>,
}

/// Writer-side state of a live database, all behind one mutex so writes
/// are serialized: the WAL (appends + commits + checkpoints) and the id
/// set validation runs against.
struct LiveWriter {
    wal: Wal,
    /// Ids currently live (base ∪ delta inserts ∖ removals) — what
    /// duplicate-insert / unknown-remove validation consults.
    ids: HashSet<u64>,
}

/// What recovery found when the WAL was opened.
struct LiveRecovery {
    replayed_ops: u64,
    recovered_torn_tail: bool,
}

/// The live-ingest engine: a frozen base generation behind an atomic
/// [`Swap`], a mutable [`DeltaBuffer`] overlay, and the WAL writer.
///
/// Lock ordering (deadlock freedom): `writer` → `delta.write()` →
/// `retired`; the generation swap's internal mutex is leaf-level.
/// Queries take only `delta.read()` → `gen.load()`, which is coherent
/// because a refreeze installs the new generation *and* clears the
/// delta while holding `delta.write()` — a reader sees either (old gen,
/// old delta) or (new gen, empty delta), never a mix.
struct LiveCore {
    gen: Swap<LiveGen>,
    /// Every generation ever installed, append-only, kept alive for the
    /// database's lifetime — the invariant `index()`'s unsafe lifetime
    /// extension rests on. Bounded by the number of refreezes.
    retired: Mutex<Vec<Arc<LiveGen>>>,
    delta: RwLock<DeltaBuffer>,
    writer: Mutex<LiveWriter>,
    backend: IndexBackend,
    params: IndexParams,
    sharded: bool,
    threshold: usize,
    last_lsn: AtomicU64,
    wal_bytes: AtomicU64,
    pending_ops: AtomicU64,
    checkpoints: AtomicU64,
    replayed_ops: u64,
    recovered_torn_tail: bool,
}

impl LiveCore {
    fn new(
        wal: Wal,
        recovery: LiveRecovery,
        segments: Vec<NeuronSegment>,
        backend: IndexBackend,
        params: &IndexParams,
        threshold: usize,
    ) -> Self {
        let sharded = params.shards > 1;
        let index = if sharded {
            backend.build_sharded(segments.clone(), params)
        } else {
            backend.build(segments.clone(), params)
        };
        let ids: HashSet<u64> = segments.iter().map(|s| s.id).collect();
        let cell = Self::delta_cell(index.bounds());
        let first = Arc::new(LiveGen { index, segments });
        let core = LiveCore {
            gen: Swap::new(Arc::clone(&first)),
            retired: Mutex::new(vec![first]),
            delta: RwLock::new(DeltaBuffer::new(cell)),
            writer: Mutex::new(LiveWriter { wal, ids }),
            backend,
            params: *params,
            sharded,
            threshold,
            last_lsn: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            pending_ops: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            replayed_ops: recovery.replayed_ops,
            recovered_torn_tail: recovery.recovered_torn_tail,
        };
        {
            let writer = core.writer.lock().unwrap_or_else(|p| p.into_inner());
            core.last_lsn.store(writer.wal.last_lsn(), Ordering::Relaxed);
            core.wal_bytes.store(writer.wal.bytes(), Ordering::Relaxed);
            core.checkpoints.store(writer.wal.checkpoints(), Ordering::Relaxed);
        }
        core
    }

    /// Delta grid cell edge: ~1/32 of the base's largest extent, so a
    /// handful of buffered inserts never fragments into thousands of
    /// cells, clamped for empty/degenerate bases.
    fn delta_cell(bounds: Aabb) -> f64 {
        if bounds.is_empty() {
            return 1.0;
        }
        let e = bounds.extent();
        let span = e.x.max(e.y).max(e.z);
        if span.is_finite() && span > 1e-6 {
            span / 32.0
        } else {
            1.0
        }
    }

    fn lock_writer(&self) -> std::sync::MutexGuard<'_, LiveWriter> {
        self.writer.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn read_delta(&self) -> std::sync::RwLockReadGuard<'_, DeltaBuffer> {
        self.delta.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write_delta(&self) -> std::sync::RwLockWriteGuard<'_, DeltaBuffer> {
        self.delta.write().unwrap_or_else(|p| p.into_inner())
    }
}

/// Receipt for a durably committed write batch: the ops hit the WAL and
/// were fsynced before this was returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// LSN of the commit record covering the batch.
    pub lsn: u64,
    /// Ops buffered in the delta after this batch (refreeze pressure).
    pub pending: u64,
}

/// WAL and ingest health of a live database — what the server's HEALTH
/// opcode reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalHealth {
    /// Highest durably committed LSN.
    pub last_lsn: u64,
    /// Current WAL file length in bytes.
    pub wal_bytes: u64,
    /// Write ops buffered in the delta (folded in at the next refreeze).
    pub pending_ops: u64,
    /// Generation counter — bumps once per background re-freeze + swap.
    pub epoch: u64,
    /// Committed ops replayed from the WAL tail when the database opened.
    pub replayed_ops: u64,
    /// Whether open found (and truncated) a torn uncommitted tail.
    pub recovered_torn_tail: bool,
    /// Checkpoints written over the WAL's lifetime.
    pub checkpoints: u64,
}

/// A spatial database over one set of neuron segments.
///
/// Owns one [`SpatialIndex`] backend (all range queries run through it),
/// named segment populations, and exposes the TOUCH join for synapse
/// placement plus SCOUT walkthroughs (FLAT backend only).
pub struct NeuroDb {
    index: DbIndex,
    backend: IndexBackend,
    config: NeuroDbConfig,
    populations: Vec<Population>,
    /// Population name → position in `populations` (built once in
    /// `build()`; `population()` is O(1), not a linear scan).
    population_index: HashMap<String, usize>,
    /// Segment id → population position (the membership test
    /// `Query::in_population` pushes below index traversals).
    population_of_id: HashMap<u64, u32>,
}

impl fmt::Debug for NeuroDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NeuroDb")
            .field("backend", &self.backend)
            .field("len", &self.len())
            .field("populations", &self.population_names())
            .finish_non_exhaustive()
    }
}

impl NeuroDb {
    /// Start building a database.
    pub fn builder() -> NeuroDbBuilder {
        NeuroDbBuilder::default()
    }

    /// Open a database over a generated circuit with default settings
    /// (FLAT backend, even/odd populations).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        NeuroDb::builder().circuit(circuit).build().expect("default configuration is valid")
    }

    /// Open a database over raw segments with explicit configuration.
    #[deprecated(note = "use NeuroDb::builder() — it supports backend \
                         selection and named populations")]
    pub fn from_segments(segments: Vec<NeuronSegment>, config: NeuroDbConfig) -> Self {
        NeuroDb::builder()
            .segments(segments)
            .config(config)
            .build()
            .expect("legacy construction is infallible")
    }

    /// Number of indexed segments. Live databases count the frozen base
    /// plus the net effect of buffered writes.
    pub fn len(&self) -> usize {
        match &self.index {
            DbIndex::Live(core) => {
                let d = core.read_delta();
                let base = core.gen.load().index.len() as isize;
                (base + d.net_len_delta()).max(0) as usize
            }
            _ => self.index().len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which backend this database was built with.
    pub fn backend(&self) -> IndexBackend {
        self.backend
    }

    /// The underlying index, backend-agnostic. For live databases this
    /// is the current *frozen base generation* — it excludes writes
    /// still buffered in the delta (queries through
    /// [`query`](Self::query) merge both tiers).
    pub fn index(&self) -> &dyn SpatialIndex {
        match &self.index {
            DbIndex::Flat(session) => session.index(),
            DbIndex::ShardedFlat(session) => session.index(),
            DbIndex::Paged(paged) => paged.as_ref(),
            DbIndex::Boxed(b) => b.as_ref(),
            DbIndex::Live(core) => {
                let gen = core.gen.load();
                let ptr: *const dyn SpatialIndex = gen.index.as_ref();
                // SAFETY: every generation `Arc` ever installed in
                // `core.gen` (including the initial one) is also pushed
                // into `core.retired`, which is append-only and dropped
                // only when `self` drops. The boxed index therefore
                // lives at a stable heap address for at least `&self`'s
                // lifetime, even after later swaps retire this
                // generation from the hot path.
                unsafe { &*ptr }
            }
        }
    }

    /// The out-of-core FLAT engine, if this database was built with
    /// [`NeuroDbBuilder::paged`] — frame-pool counters, page-file path,
    /// prefetcher state. `None` for in-memory databases. Sugar for
    /// [`index_as`](Self::index_as).
    pub fn paged_index(&self) -> Option<&PagedFlatIndex> {
        self.index_as::<PagedFlatIndex>()
    }

    /// The concrete backend behind this database, by type — the generic
    /// [`SpatialIndex::as_any`] downcast, so *every* backend is reachable
    /// without the facade knowing concrete types:
    ///
    /// ```
    /// use neurospatial::prelude::*;
    ///
    /// let c = CircuitBuilder::new(1).neurons(3).build();
    /// let db = NeuroDb::builder().circuit(&c).backend(IndexBackend::RPlus).build().unwrap();
    /// let rplus = db.index_as::<RPlusTree<NeuronSegment>>().expect("R+ backend");
    /// assert!(rplus.replication_factor() >= 1.0);
    /// assert!(db.index_as::<FlatIndex<NeuronSegment>>().is_none());
    /// ```
    pub fn index_as<T: SpatialIndex>(&self) -> Option<&T> {
        self.index().as_any().downcast_ref::<T>()
    }

    /// The FLAT index, if this database uses the **monolithic** FLAT
    /// backend (page-level statistics, neighborhood graph inspection).
    /// `None` for every other backend, including sharded FLAT — its
    /// pages are spread over shard-local indexes. Sugar for
    /// [`index_as`](Self::index_as).
    pub fn flat_index(&self) -> Option<&FlatIndex<NeuronSegment>> {
        self.index_as::<FlatIndex<NeuronSegment>>()
    }

    /// Shard count of the underlying index (1 for monolithic backends).
    pub fn shard_count(&self) -> usize {
        match &self.index {
            DbIndex::ShardedFlat(session) => session.index().shard_count(),
            DbIndex::Flat(_) | DbIndex::Paged(_) => 1,
            DbIndex::Boxed(_) | DbIndex::Live(_) => self.config.shards,
        }
    }

    /// Bounding box of the indexed data. Live databases grow the box to
    /// cover buffered delta inserts as well.
    pub fn bounds(&self) -> Aabb {
        match &self.index {
            DbIndex::Live(core) => {
                let d = core.read_delta();
                let mut b = core.gen.load().index.bounds();
                d.for_each(|s| b = b.union(&s.aabb()));
                b
            }
            _ => self.index().bounds(),
        }
    }

    /// Open the unified query builder — one composable entry point for
    /// every workload the database serves:
    ///
    /// ```
    /// use neurospatial::prelude::*;
    ///
    /// let circuit = CircuitBuilder::new(3).neurons(6).build();
    /// let db = NeuroDb::from_circuit(&circuit);
    /// let region = Aabb::cube(circuit.bounds().center(), 30.0);
    ///
    /// // Collect, stream (never materializes), or explain:
    /// let out = db.query().range(region).collect().unwrap();
    /// let mut n = 0;
    /// db.query().range(region).stream(|_seg| n += 1).unwrap();
    /// assert_eq!(n, out.len());
    /// let plan = db.query().range(region).explain();
    /// assert_eq!(plan.backend, IndexBackend::Flat);
    /// ```
    pub fn query(&self) -> Query<'_> {
        Query::new(self)
    }

    /// Execute a spatial range query through the selected backend.
    /// Forwarding shim over `self.query().range(*region).collect()` —
    /// results, order and statistics are byte-identical (property-tested
    /// in `tests/query_api_equivalence.rs`).
    pub fn range_query(&self, region: &Aabb) -> QueryOutput {
        self.query().range(*region).collect().expect("no population constraint to fail")
    }

    /// Execute a batch of range queries (one output per region). On a
    /// sharded database the batch fans out over the worker pool (one
    /// reused [`QueryScratch`] per worker); monolithic databases reuse
    /// one scratch across the whole batch — either way, per-query
    /// traversal state is not re-allocated query by query.
    pub fn range_query_many(&self, regions: &[Aabb]) -> Vec<QueryOutput> {
        self.index().range_query_many(regions)
    }

    /// Allocation-free range query for hot serving loops: results append
    /// to `out`, per-query working state lives in the caller's `scratch`
    /// (reused across calls). Identical results and statistics to
    /// [`range_query`](Self::range_query).
    pub fn range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        self.index().range_query_into_scratch(region, scratch, out)
    }

    /// The `k` segments nearest to `p`, in canonical (distance, id)
    /// order, through the selected backend. Forwarding shim over
    /// `self.query().knn(p, k).collect()`.
    pub fn knn(&self, p: Vec3, k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.query().knn(p, k).collect().expect("no population constraint to fail")
    }

    /// Whether this database was opened in durable live-ingest mode.
    pub fn is_live(&self) -> bool {
        matches!(&self.index, DbIndex::Live(_))
    }

    /// Durably insert one segment. The returned [`WriteAck`] means the
    /// op reached the WAL and was fsynced — a crash after this call
    /// replays it. Errors with [`NeuroError::WriteUnsupported`] on
    /// non-durable databases and [`NeuroError::WriteRejected`] (nothing
    /// logged) for duplicate ids or non-finite geometry.
    pub fn insert_segment(&self, segment: NeuronSegment) -> Result<WriteAck, NeuroError> {
        self.write_batch(&[WriteOp::Insert(segment)])
    }

    /// Durably remove the segment with `id` (same ack/error contract as
    /// [`insert_segment`](Self::insert_segment); removing an id the
    /// database does not hold is rejected before logging).
    pub fn remove_segment(&self, id: u64) -> Result<WriteAck, NeuroError> {
        self.write_batch(&[WriteOp::Remove(id)])
    }

    /// Durably apply a batch of writes under one group commit (one WAL
    /// append + one fsync for the whole batch).
    ///
    /// All-or-nothing: the batch is validated first (duplicate inserts,
    /// unknown removals, non-finite geometry → [`NeuroError::WriteRejected`]
    /// with nothing appended), then logged, committed and only then made
    /// visible to queries. A commit failure leaves the delta untouched —
    /// exactly matching replay, which drops uncommitted records.
    pub fn write_batch(&self, ops: &[WriteOp]) -> Result<WriteAck, NeuroError> {
        let core = match &self.index {
            DbIndex::Live(core) => core,
            _ => return Err(NeuroError::WriteUnsupported),
        };
        if ops.is_empty() {
            return Err(NeuroError::WriteRejected { reason: "empty batch".into() });
        }
        let mut writer = core.lock_writer();
        // Validate against the live id set overlaid with the batch's own
        // earlier ops, so intra-batch sequences (insert then remove) are
        // judged in order.
        let mut overlay: HashMap<u64, bool> = HashMap::new();
        for op in ops {
            let id = op.id();
            let exists = overlay.get(&id).copied().unwrap_or_else(|| writer.ids.contains(&id));
            match op {
                WriteOp::Insert(s) => {
                    if exists {
                        return Err(NeuroError::WriteRejected {
                            reason: format!("insert of duplicate id {id}"),
                        });
                    }
                    let finite = [s.geom.p0, s.geom.p1]
                        .iter()
                        .all(|v| v.x.is_finite() && v.y.is_finite() && v.z.is_finite())
                        && s.geom.radius.is_finite()
                        && s.geom.radius >= 0.0;
                    if !finite {
                        return Err(NeuroError::WriteRejected {
                            reason: format!("segment {id} has non-finite or negative geometry"),
                        });
                    }
                    overlay.insert(id, true);
                }
                WriteOp::Remove(_) => {
                    if !exists {
                        return Err(NeuroError::WriteRejected {
                            reason: format!("remove of unknown id {id}"),
                        });
                    }
                    overlay.insert(id, false);
                }
            }
        }
        for op in ops {
            writer.wal.append(&delta::encode_op(op));
        }
        let lsn = writer.wal.commit()?;
        // Durable from here on: make the batch visible and ack it.
        let pending = {
            let mut d = core.write_delta();
            for op in ops {
                d.apply(op);
            }
            d.len() as u64
        };
        for (id, exists) in overlay {
            if exists {
                writer.ids.insert(id);
            } else {
                writer.ids.remove(&id);
            }
        }
        core.last_lsn.store(lsn, Ordering::Relaxed);
        core.wal_bytes.store(writer.wal.bytes(), Ordering::Relaxed);
        core.pending_ops.store(pending, Ordering::Relaxed);
        Ok(WriteAck { lsn, pending })
    }

    /// Fold the delta into a fresh frozen index, atomically swap it in,
    /// and checkpoint the WAL (bounding future replay to writes newer
    /// than this call). Queries in flight keep their old snapshot;
    /// concurrent writes block only for the swap itself, not the index
    /// build. Returns the new generation epoch; a no-op (empty delta)
    /// returns the current epoch.
    ///
    /// A crash *during* the checkpoint leaves the previous WAL intact
    /// (the checkpoint replaces the file atomically), so recovery
    /// replays the old ops over the old snapshot — same state.
    pub fn refreeze(&self) -> Result<u64, NeuroError> {
        let core = match &self.index {
            DbIndex::Live(core) => core,
            _ => return Err(NeuroError::WriteUnsupported),
        };
        // Holding the writer lock for the whole refreeze serializes it
        // against writes *and* other refreezes; the delta cannot change
        // underneath the rebuild.
        let mut writer = core.lock_writer();
        let (base, ops) = {
            let d = core.read_delta();
            if d.is_empty() {
                return Ok(core.gen.epoch());
            }
            (core.gen.load(), d.ops().to_vec())
        };
        let mut segments = base.segments.clone();
        delta::apply_ops(&mut segments, &ops);
        let index = if core.sharded {
            core.backend.build_sharded(segments.clone(), &core.params)
        } else {
            core.backend.build(segments.clone(), &core.params)
        };
        let next = Arc::new(LiveGen { index, segments });
        {
            // Install + clear under the delta write lock so readers see
            // either (old gen, old delta) or (new gen, empty delta).
            let mut d = core.write_delta();
            core.retired.lock().unwrap_or_else(|p| p.into_inner()).push(Arc::clone(&next));
            core.gen.store(Arc::clone(&next));
            d.clear();
            core.pending_ops.store(0, Ordering::Relaxed);
        }
        writer.wal.checkpoint(&delta::encode_snapshot(&next.segments))?;
        core.wal_bytes.store(writer.wal.bytes(), Ordering::Relaxed);
        core.checkpoints.store(writer.wal.checkpoints(), Ordering::Relaxed);
        Ok(core.gen.epoch())
    }

    /// Refreeze if the delta has crossed the builder's
    /// [`refreeze_threshold`](NeuroDbBuilder::refreeze_threshold).
    /// Returns whether a refreeze ran. The polling half of background
    /// maintenance — see
    /// [`with_ingest_maintenance`](Self::with_ingest_maintenance).
    pub fn maybe_refreeze(&self) -> Result<bool, NeuroError> {
        if let DbIndex::Live(core) = &self.index {
            if core.pending_ops.load(Ordering::Relaxed) as usize >= core.threshold {
                self.refreeze()?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Run `f` with a background maintenance thread polling
    /// [`maybe_refreeze`](Self::maybe_refreeze) every `poll` — the
    /// scoped-thread idiom the server uses so ingest keeps re-freezing
    /// while requests are served. The thread stops (and is joined) when
    /// `f` returns.
    pub fn with_ingest_maintenance<R>(
        &self,
        poll: std::time::Duration,
        f: impl FnOnce(&Self) -> R,
    ) -> R {
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    let _ = self.maybe_refreeze();
                    std::thread::park_timeout(poll);
                }
            });
            let out = f(self);
            stop.store(true, Ordering::Release);
            handle.thread().unpark();
            out
        })
    }

    /// WAL and ingest health (`None` for non-durable databases).
    pub fn wal_health(&self) -> Option<WalHealth> {
        match &self.index {
            DbIndex::Live(core) => Some(WalHealth {
                last_lsn: core.last_lsn.load(Ordering::Relaxed),
                wal_bytes: core.wal_bytes.load(Ordering::Relaxed),
                pending_ops: core.pending_ops.load(Ordering::Relaxed),
                epoch: core.gen.epoch(),
                replayed_ops: core.replayed_ops,
                recovered_torn_tail: core.recovered_torn_tail,
                checkpoints: core.checkpoints.load(Ordering::Relaxed),
            }),
            _ => None,
        }
    }

    /// Run `f` over a coherent (base index, delta overlay) pair — the
    /// query engine's entry point. Non-live databases pass `None` for
    /// the delta; live databases pin the delta read lock *then* load the
    /// generation, which the refreeze's install-under-write-lock makes
    /// a consistent snapshot.
    pub(crate) fn with_view<R>(
        &self,
        f: impl FnOnce(&dyn SpatialIndex, Option<&DeltaBuffer>) -> R,
    ) -> R {
        match &self.index {
            DbIndex::Live(core) => {
                let d = core.read_delta();
                let gen = core.gen.load();
                f(gen.index.as_ref(), Some(&d))
            }
            _ => f(self.index(), None),
        }
    }

    /// Compute aggregate tissue statistics for a region (one range query
    /// plus a linear pass over the result).
    pub fn region_stats(&self, region: &Aabb) -> RegionStats {
        let out = self.range_query(region);
        if out.is_empty() {
            return RegionStats::default();
        }
        let mut stats = RegionStats { count: out.len(), ..Default::default() };
        let mut neurons = std::collections::HashSet::new();
        let mut radius_sum = 0.0;
        for s in &out.segments {
            let len = s.geom.axis_length();
            stats.total_cable_length += len;
            stats.total_cable_volume += std::f64::consts::PI * s.geom.radius * s.geom.radius * len;
            radius_sum += s.geom.radius;
            neurons.insert(s.neuron);
        }
        stats.mean_radius = radius_sum / out.len() as f64;
        stats.neuron_count = neurons.len();
        stats.density = out.len() as f64 / region.volume().max(f64::MIN_POSITIVE);
        stats
    }

    /// The named populations, in declaration order.
    pub fn populations(&self) -> &[Population] {
        &self.populations
    }

    /// Population names, in declaration order.
    pub fn population_names(&self) -> Vec<&str> {
        self.populations.iter().map(|p| p.name.as_str()).collect()
    }

    /// Segments of one population (O(1) — resolved through the name map
    /// built at [`build`](NeuroDbBuilder::build) time).
    pub fn population(&self, name: &str) -> Result<&[NeuronSegment], NeuroError> {
        self.population_position(name).map(|i| self.populations[i].segments.as_slice())
    }

    /// Position of a named population in [`populations`](Self::populations).
    pub(crate) fn population_position(&self, name: &str) -> Result<usize, NeuroError> {
        self.population_index.get(name).copied().ok_or_else(|| NeuroError::UnknownPopulation {
            given: name.to_string(),
            known: self.population_names().iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Which population a segment id belongs to (`None` for ids the
    /// database has never seen).
    pub(crate) fn population_of_segment(&self, id: u64) -> Option<u32> {
        self.population_of_id.get(&id).copied()
    }

    /// Distance-join two named populations: all segment pairs whose
    /// capsule surfaces come within `epsilon` (TOUCH). Pair indices are
    /// positions within each population's segment slice. Forwarding shim
    /// over `self.query().touching(second, epsilon).in_population(first)`.
    pub fn join_between(
        &self,
        first: &str,
        second: &str,
        epsilon: f64,
    ) -> Result<JoinResult, NeuroError> {
        self.query().touching(second, epsilon).in_population(first).collect()
    }

    /// The join engine this database runs TOUCH workloads with.
    pub(crate) fn join_config(&self) -> &TouchJoin {
        &self.config.join
    }

    /// Find synapse candidates between the first two populations — the
    /// demo's synapse-placement workload. Errors if the database has
    /// fewer than two populations.
    pub fn find_synapse_candidates(&self, epsilon: f64) -> Result<JoinResult, NeuroError> {
        if self.populations.len() < 2 {
            return Err(NeuroError::TooFewPopulations { found: self.populations.len(), needed: 2 });
        }
        self.join_between(&self.populations[0].name, &self.populations[1].name, epsilon)
    }

    /// Distance-join this database's segments against an external
    /// population.
    ///
    /// Joins population by population and merges with index offsets —
    /// equivalent to joining the concatenation of all populations, but
    /// without cloning the dataset on every call. Pair `(i, j)` means
    /// segment `i` of the concatenated populations and `other[j]`.
    pub fn join_against(&self, other: &[NeuronSegment], epsilon: f64) -> JoinResult {
        let mut merged = JoinResult::default();
        let mut offset = 0u32;
        for pop in &self.populations {
            let r = self.config.join.join(&pop.segments, other, epsilon);
            merged.pairs.extend(r.pairs.iter().map(|&(i, j)| (i + offset, j)));
            merged.stats.filter_comparisons += r.stats.filter_comparisons;
            merged.stats.refine_comparisons += r.stats.refine_comparisons;
            merged.stats.build_ms += r.stats.build_ms;
            merged.stats.probe_ms += r.stats.probe_ms;
            merged.stats.total_ms += r.stats.total_ms;
            merged.stats.aux_memory_bytes =
                merged.stats.aux_memory_bytes.max(r.stats.aux_memory_bytes);
            merged.stats.filtered_out += r.stats.filtered_out;
            offset += pop.segments.len() as u32;
        }
        merged.stats.results = merged.pairs.len() as u64;
        merged
    }

    /// Build a branch-following navigation path through `circuit`
    /// (convenience wrapper; the circuit must be the one this database
    /// was opened over for the walkthrough to make sense).
    pub fn navigation_path(
        &self,
        circuit: &Circuit,
        seed: u64,
        view_radius: f64,
        step: f64,
    ) -> Option<NavigationPath> {
        NavigationPath::along_random_branch(circuit, seed, view_radius, step)
    }

    /// Replay a walkthrough with the given prefetching method and report
    /// the session statistics (stall time, hit ratio, prefetch precision).
    ///
    /// Errors unless the database uses the FLAT backend (monolithic or
    /// sharded) — walkthrough simulation is page-granular. Forwarding
    /// shim over `self.query().along_path(path).method(method).run()`.
    pub fn walkthrough(
        &self,
        path: &NavigationPath,
        method: WalkthroughMethod,
    ) -> Result<SessionStats, NeuroError> {
        self.query().along_path(path).method(method).run()
    }

    /// The worker behind [`walkthrough`](Self::walkthrough) and the
    /// builder's `along_path(..).run()` terminal.
    pub(crate) fn walkthrough_impl(
        &self,
        path: &NavigationPath,
        method: WalkthroughMethod,
    ) -> Result<SessionStats, NeuroError> {
        match &self.index {
            DbIndex::Flat(session) => {
                let mut prefetcher = method.prefetcher();
                Ok(session.run(path, prefetcher.as_mut()))
            }
            DbIndex::ShardedFlat(session) => {
                let mut prefetcher = method.prefetcher();
                Ok(session.run(path, prefetcher.as_mut()))
            }
            DbIndex::Paged(paged) => {
                // The real-I/O walkthrough: every step's stall time is
                // measured wall-clock against the page file, and
                // prefetches are actual background reads.
                let mut cursor = paged.ooc().cursor(method.prefetcher());
                let mut stats =
                    SessionStats { method: method.name().to_string(), ..Default::default() };
                let before = paged.frame_stats();
                for q in &path.queries {
                    let trace = cursor.step(q)?;
                    accumulate_trace(&mut stats, trace);
                }
                let after = paged.frame_stats();
                stats.useful_prefetched = after.prefetch_hits - before.prefetch_hits;
                Ok(stats)
            }
            DbIndex::Boxed(_) | DbIndex::Live(_) => {
                Err(NeuroError::WalkthroughUnsupported { backend: self.backend.name().to_string() })
            }
        }
    }

    /// Bind a step-wise SCOUT prefetch cursor over this database's paged
    /// (FLAT) index — the simulated-I/O companion `Query::session`
    /// attaches so repeated-query loops report walkthrough-grade hit and
    /// stall statistics. Errors on non-paged backends.
    pub(crate) fn scout_cursor(
        &self,
        method: WalkthroughMethod,
    ) -> Result<DbCursor<'_>, NeuroError> {
        match &self.index {
            DbIndex::Flat(session) => Ok(DbCursor::Flat(session.cursor(method.prefetcher()))),
            DbIndex::ShardedFlat(session) => {
                Ok(DbCursor::Sharded(session.cursor(method.prefetcher())))
            }
            DbIndex::Paged(paged) => Ok(DbCursor::Paged {
                cursor: paged.ooc().cursor(method.prefetcher()),
                paged,
                stats: SessionStats { method: method.name().to_string(), ..Default::default() },
                prefetch_hits_at_start: paged.frame_stats().prefetch_hits,
            }),
            DbIndex::Boxed(_) | DbIndex::Live(_) => {
                Err(NeuroError::WalkthroughUnsupported { backend: self.backend.name().to_string() })
            }
        }
    }
}

/// Fold one step's trace into the running session totals — the same
/// accumulation the simulator's `StepState` applies, minus the
/// simulation-only fields (`useful_prefetched` comes from the frame
/// pool's prefetch-hit counter, `prefetch_cost_ms` is zero because real
/// prefetch I/O runs on background workers the user never waits for).
fn accumulate_trace(stats: &mut SessionStats, trace: QueryTrace) {
    stats.total_stall_ms += trace.stall_ms;
    stats.total_demand_misses += trace.demand_misses;
    stats.total_demand_hits += trace.demand_hits;
    stats.total_prefetched += trace.prefetched;
    stats.steps.push(trace);
}

/// A step-wise SCOUT cursor over whichever paged index shape the
/// database owns (monolithic or sharded FLAT) — the binding behind
/// `QuerySession::with_prefetch`.
pub(crate) enum DbCursor<'s> {
    Flat(SessionCursor<'s, FlatIndex<NeuronSegment>>),
    Sharded(SessionCursor<'s, ShardedIndex<FlatIndex<NeuronSegment>>>),
    Paged {
        cursor: OocCursor<'s>,
        paged: &'s PagedFlatIndex,
        stats: SessionStats,
        /// Pool-wide prefetch-hit count when the cursor bound, so the
        /// session's `useful_prefetched` reports only this cursor's
        /// walkthrough.
        prefetch_hits_at_start: u64,
    },
}

impl DbCursor<'_> {
    pub(crate) fn step(&mut self, q: &Aabb) -> QueryTrace {
        match self {
            DbCursor::Flat(c) => c.step(q),
            DbCursor::Sharded(c) => c.step(q),
            DbCursor::Paged { cursor, paged, stats, prefetch_hits_at_start } => {
                // Open validated every page, so a storage error here
                // means the file changed under a live database — same
                // contract as the infallible `SpatialIndex` lane.
                let trace = cursor.step(q).unwrap_or_else(|e| {
                    panic!("paged walkthrough: page file failed after a validated open: {e}")
                });
                accumulate_trace(stats, trace);
                stats.useful_prefetched =
                    paged.frame_stats().prefetch_hits - *prefetch_hits_at_start;
                trace
            }
        }
    }

    pub(crate) fn stats(&self) -> &SessionStats {
        match self {
            DbCursor::Flat(c) => c.stats(),
            DbCursor::Sharded(c) => c.stats(),
            DbCursor::Paged { stats, .. } => stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::Vec3;
    use neurospatial_model::{CircuitBuilder, DensityStats};

    fn db() -> (NeuroDb, Circuit) {
        let c = CircuitBuilder::new(5).neurons(10).build();
        (NeuroDb::from_circuit(&c), c)
    }

    #[test]
    fn range_query_counts_match_scan() {
        let (db, c) = db();
        assert_eq!(db.len(), c.segments().len());
        let q = Aabb::cube(c.bounds().center(), 40.0);
        let out = db.range_query(&q);
        let brute = c.segments().iter().filter(|s| s.aabb().intersects(&q)).count();
        assert_eq!(out.len(), brute);
        assert_eq!(out.stats.results as usize, brute);
    }

    #[test]
    fn every_backend_answers_the_same_queries() {
        let c = CircuitBuilder::new(8).neurons(6).build();
        let q = Aabb::cube(c.bounds().center(), 35.0);
        let want = NeuroDb::from_circuit(&c).range_query(&q).sorted_ids();
        for backend in IndexBackend::ALL {
            let db = NeuroDb::builder().circuit(&c).backend(backend).build().expect("valid");
            assert_eq!(db.backend(), backend);
            assert_eq!(db.range_query(&q).sorted_ids(), want, "{backend}");
        }
    }

    #[test]
    fn builder_by_name_and_bad_names() {
        let c = CircuitBuilder::new(5).neurons(2).build();
        let db =
            NeuroDb::builder().circuit(&c).backend_named("str-packed").build().expect("known name");
        assert_eq!(db.backend(), IndexBackend::StrPacked);
        assert!(matches!(
            NeuroDb::builder().circuit(&c).backend_named("btree").build(),
            Err(NeuroError::UnknownBackend { .. })
        ));
        assert!(matches!(NeuroDb::builder().build(), Err(NeuroError::MissingSegments)));
        // FLAT accepts tiny pages (legacy behaviour)…
        assert!(NeuroDb::builder().circuit(&c).page_capacity(1).build().is_ok());
        // …but a zero capacity, or sub-fan-out R-Tree pages, are rejected.
        assert!(matches!(
            NeuroDb::builder().circuit(&c).page_capacity(0).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
        assert!(matches!(
            NeuroDb::builder()
                .circuit(&c)
                .backend(IndexBackend::StrPacked)
                .page_capacity(2)
                .build(),
            Err(NeuroError::InvalidConfig(_))
        ));
    }

    #[test]
    fn paged_database_matches_in_memory_and_reports_io() {
        let c = CircuitBuilder::new(5).neurons(10).build();
        let mem = NeuroDb::from_circuit(&c);
        let ooc = NeuroDb::builder()
            .circuit(&c)
            .paged(true)
            .frame_budget(2)
            .build()
            .expect("temp dir is writable");
        assert!(ooc.paged_index().is_some() && mem.paged_index().is_none());
        assert_eq!(ooc.shard_count(), 1);
        let q = Aabb::cube(c.bounds().center(), 40.0);
        let (want, got) = (mem.range_query(&q), ooc.range_query(&q));
        assert_eq!(want.sorted_ids(), got.sorted_ids());
        assert_eq!(want.stats.nodes_read, got.stats.nodes_read);
        assert!(got.stats.cache_hits + got.stats.cache_misses > 0);
        assert_eq!(want.stats.cache_hits + want.stats.cache_misses, 0);
    }

    #[test]
    fn paged_walkthrough_runs_on_the_real_pager() {
        let c = CircuitBuilder::new(5).neurons(10).build();
        let db = NeuroDb::builder()
            .circuit(&c)
            .paged(true)
            .frame_budget(4)
            .prefetch_workers(1)
            .build()
            .expect("paged flat");
        let path = db.navigation_path(&c, 1, 20.0, 8.0).expect("path");
        let report = db.walkthrough(&path, WalkthroughMethod::Scout).expect("paged walkthrough");
        assert_eq!(report.steps.len(), path.queries.len());
        assert_eq!(report.method, "scout");
        let touched: u64 = report.steps.iter().map(|s| s.pages_demanded).sum();
        assert_eq!(touched, report.total_demand_hits + report.total_demand_misses);
    }

    #[test]
    fn paged_mode_rejects_non_flat_and_sharded_layouts() {
        let c = CircuitBuilder::new(5).neurons(2).build();
        assert!(matches!(
            NeuroDb::builder().circuit(&c).backend(IndexBackend::RTree).paged(true).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
        assert!(matches!(
            NeuroDb::builder().circuit(&c).paged(true).shards(2).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
    }

    #[test]
    fn explicit_page_file_survives_and_reopens() {
        let c = CircuitBuilder::new(5).neurons(6).build();
        let path = std::env::temp_dir()
            .join(format!("neurospatial-db-reopen-{}.flatpages", std::process::id()));
        let q = Aabb::cube(c.bounds().center(), 30.0);
        let want = {
            let db = NeuroDb::builder()
                .circuit(&c)
                .page_file(&path)
                .build()
                .expect("explicit page file");
            db.range_query(&q).sorted_ids()
        };
        // The database dropped; the explicit file must still be there.
        assert!(path.exists());
        let reopened = PagedFlatIndex::open(&path, OocConfig::default()).expect("reopen");
        assert_eq!(reopened.range_query(&q).sorted_ids(), want);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synapse_join_uses_the_default_parity_populations() {
        let (db, c) = db();
        assert_eq!(db.population_names(), vec!["even", "odd"]);
        let r = db.find_synapse_candidates(2.0).expect("two populations");
        assert!(r.is_duplicate_free());
        // Every reported pair crosses the even/odd population boundary.
        let (a, b) = c.split_populations();
        for &(i, j) in &r.pairs {
            assert_eq!(a[i as usize].neuron % 2, 0);
            assert_eq!(b[j as usize].neuron % 2, 1);
        }
    }

    #[test]
    fn duplicate_population_names_are_rejected() {
        let c = CircuitBuilder::new(4).neurons(4).build();
        let err = NeuroDb::builder()
            .circuit(&c)
            .split_populations("x", "x", |s| s.neuron % 2 == 0)
            .build();
        assert!(matches!(err, Err(NeuroError::InvalidConfig(msg)) if msg.contains("'x'")));
    }

    #[test]
    fn custom_predicate_populations() {
        let c = CircuitBuilder::new(12).neurons(9).build();
        let db = NeuroDb::builder()
            .circuit(&c)
            .split_populations("low", "high", |s| s.neuron < 3)
            .build()
            .expect("valid");
        assert_eq!(db.population_names(), vec!["low", "high"]);
        let low = db.population("low").expect("exists");
        assert!(low.iter().all(|s| s.neuron < 3));
        assert!(!low.is_empty());
        let total = low.len() + db.population("high").expect("exists").len();
        assert_eq!(total, c.segments().len());
        assert!(matches!(db.population("mid"), Err(NeuroError::UnknownPopulation { .. })));
        // join_between is symmetric in coverage with find_synapse_candidates.
        let a = db.join_between("low", "high", 1.5).expect("both exist").sorted_pairs();
        let b = db.find_synapse_candidates(1.5).expect("two pops").sorted_pairs();
        assert_eq!(a, b);
    }

    #[test]
    fn label_fn_builds_many_populations() {
        let c = CircuitBuilder::new(3).neurons(8).build();
        let db = NeuroDb::builder()
            .circuit(&c)
            .populations_by(|s| format!("layer{}", s.neuron % 3))
            .build()
            .expect("valid");
        assert_eq!(db.populations().len(), 3);
        let total: usize = db.populations().iter().map(|p| p.segments.len()).sum();
        assert_eq!(total, c.segments().len());
        // First two populations feed the synapse join.
        assert!(db.find_synapse_candidates(1.0).is_ok());
    }

    #[test]
    fn walkthrough_all_methods_run() {
        let (db, c) = db();
        let path = db.navigation_path(&c, 3, 20.0, 8.0).expect("path exists");
        let mut stalls = Vec::new();
        for m in WalkthroughMethod::ALL {
            let stats = db.walkthrough(&path, m).expect("flat backend");
            assert_eq!(stats.steps.len(), path.queries.len());
            assert_eq!(stats.method, m.name());
            stalls.push((m, stats.total_stall_ms));
        }
        // The no-prefetch baseline is never the fastest.
        let none = stalls.iter().find(|(m, _)| *m == WalkthroughMethod::None).expect("ran").1;
        let scout = stalls.iter().find(|(m, _)| *m == WalkthroughMethod::Scout).expect("ran").1;
        assert!(scout <= none);
    }

    #[test]
    fn sharded_databases_answer_like_monolithic_ones() {
        let c = CircuitBuilder::new(6).neurons(8).build();
        let q = Aabb::cube(c.bounds().center(), 30.0);
        let p = c.segments()[5].geom.center();
        for backend in IndexBackend::ALL {
            let mono = NeuroDb::builder().circuit(&c).backend(backend).build().expect("valid");
            let sharded = NeuroDb::builder()
                .circuit(&c)
                .backend(backend)
                .shards(4)
                .threads(2)
                .build()
                .expect("valid");
            assert_eq!(sharded.shard_count(), 4, "{backend}");
            assert_eq!(mono.shard_count(), 1, "{backend}");
            assert_eq!(sharded.len(), mono.len());
            assert_eq!(sharded.range_query(&q).sorted_ids(), mono.range_query(&q).sorted_ids());
            let ids = |ns: &[Neighbor]| ns.iter().map(|n| n.segment.id).collect::<Vec<_>>();
            assert_eq!(ids(&sharded.knn(p, 7).0), ids(&mono.knn(p, 7).0), "{backend} knn");
        }
    }

    #[test]
    fn sharded_flat_still_walks_through() {
        let c = CircuitBuilder::new(5).neurons(10).build();
        let db = NeuroDb::builder().circuit(&c).shards(3).threads(2).build().expect("valid");
        assert_eq!(db.backend(), IndexBackend::Flat);
        assert!(db.flat_index().is_none(), "sharded flat has no single page space");
        let path = db.navigation_path(&c, 3, 20.0, 8.0).expect("path exists");
        let stats = db.walkthrough(&path, WalkthroughMethod::Scout).expect("sharded flat walks");
        assert_eq!(stats.steps.len(), path.queries.len());
    }

    #[test]
    fn sharded_backend_names_and_invalid_counts() {
        let c = CircuitBuilder::new(5).neurons(4).build();
        let db = NeuroDb::builder()
            .circuit(&c)
            .backend_named("sharded:str-packed")
            .build()
            .expect("sharded name is known");
        assert_eq!(db.backend(), IndexBackend::StrPacked);
        assert!(db.shard_count() >= 2, "sharded: name implies > 1 shard");
        // Explicit shard counts survive the name prefix.
        let db = NeuroDb::builder()
            .circuit(&c)
            .backend_named("sharded:rplus")
            .shards(5)
            .build()
            .expect("valid");
        assert_eq!(db.shard_count(), 5);
        assert!(matches!(
            NeuroDb::builder().circuit(&c).backend_named("sharded:btree").build(),
            Err(NeuroError::UnknownBackend { .. })
        ));
        assert!(matches!(
            NeuroDb::builder().circuit(&c).shards(0).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
        assert!(matches!(
            NeuroDb::builder().circuit(&c).threads(0).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
        // An explicit zero is reported even when a `sharded:` name would
        // otherwise bump the count.
        assert!(matches!(
            NeuroDb::builder().circuit(&c).backend_named("sharded:flat").shards(0).build(),
            Err(NeuroError::InvalidConfig(_))
        ));
    }

    #[test]
    fn walkthrough_requires_flat() {
        let c = CircuitBuilder::new(5).neurons(4).build();
        let db =
            NeuroDb::builder().circuit(&c).backend(IndexBackend::StrPacked).build().expect("valid");
        let path = db.navigation_path(&c, 1, 15.0, 6.0).expect("path");
        assert!(matches!(
            db.walkthrough(&path, WalkthroughMethod::Scout),
            Err(NeuroError::WalkthroughUnsupported { .. })
        ));
    }

    #[test]
    fn walkthrough_method_names_round_trip() {
        for m in WalkthroughMethod::ALL {
            assert_eq!(m.name().parse::<WalkthroughMethod>().expect("round trip"), m);
            assert_eq!(m.to_string(), m.name());
        }
        assert!("warp".parse::<WalkthroughMethod>().is_err());
    }

    #[test]
    fn join_against_external_population() {
        let (db, _) = db();
        let other = CircuitBuilder::new(99).neurons(2).build();
        let r = db.join_against(other.segments(), 1.0);
        assert!(r.is_duplicate_free());
        assert_eq!(r.stats.results as usize, r.pairs.len());
    }

    #[test]
    fn join_against_matches_concatenated_join() {
        let (db, c) = db();
        let other = CircuitBuilder::new(77).neurons(3).build();
        let merged = db.join_against(other.segments(), 1.5);
        // Reference: one join over the concatenation of the populations.
        let (a, b) = c.split_populations();
        let mut all = a;
        all.extend_from_slice(&b);
        let reference = TouchJoin::default().join(&all, other.segments(), 1.5);
        assert_eq!(merged.sorted_pairs(), reference.sorted_pairs());
    }

    #[test]
    fn batched_queries_match_singles() {
        let (db, c) = db();
        let regions: Vec<Aabb> =
            (0..4).map(|i| Aabb::cube(c.segments()[i * 11].geom.center(), 20.0)).collect();
        let batch = db.range_query_many(&regions);
        assert_eq!(batch.len(), regions.len());
        for (out, r) in batch.iter().zip(&regions) {
            assert_eq!(out.sorted_ids(), db.range_query(r).sorted_ids());
        }
    }

    #[test]
    fn region_stats_aggregate_correctly() {
        let (db, c) = db();
        // Centre the region on actual data (the bounds centre can fall in
        // empty space between neurons).
        let q = Aabb::cube(c.segments()[0].geom.center(), 50.0);
        let s = db.region_stats(&q);
        let out = db.range_query(&q);
        assert!(!out.is_empty());
        assert_eq!(s.count, out.len());
        let want_len: f64 = out.segments.iter().map(|h| h.geom.axis_length()).sum();
        assert!((s.total_cable_length - want_len).abs() < 1e-9);
        assert!(s.mean_radius > 0.0);
        assert!(s.density > 0.0);
        assert!(s.neuron_count >= 1 && s.neuron_count <= c.neuron_count());
        assert!(s.total_cable_volume > 0.0);

        // Far-away region: all-zero stats.
        let far = Aabb::cube(Vec3::splat(1e7), 10.0);
        assert_eq!(db.region_stats(&far), RegionStats::default());
    }

    #[test]
    fn dense_region_denser_than_sparse() {
        let (db, c) = db();
        let grid = DensityStats::new(c.bounds(), [5, 5, 5], c.segments());
        let dense = db.region_stats(&Aabb::cube(grid.densest_cell_center(), 25.0));
        let sparse = db.region_stats(&Aabb::cube(grid.sparsest_cell_center(), 25.0));
        assert!(dense.density >= sparse.density);
    }

    #[test]
    fn empty_database() {
        let db = NeuroDb::builder().segments(vec![]).build().expect("empty is valid");
        assert!(db.is_empty());
        let out = db.range_query(&Aabb::cube(Vec3::ZERO, 5.0));
        assert!(out.is_empty());
        assert!(db.find_synapse_candidates(1.0).expect("parity pops exist").pairs.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_still_works() {
        let c = CircuitBuilder::new(2).neurons(3).build();
        let db = NeuroDb::from_segments(c.segments().to_vec(), NeuroDbConfig::default());
        assert_eq!(db.len(), c.segments().len());
        assert_eq!(db.backend(), IndexBackend::Flat);
    }

    /// Temp WAL path removed on drop — live-mode tests must not leak
    /// log files between runs.
    struct WalPath(PathBuf);

    impl WalPath {
        fn new(tag: &str) -> Self {
            WalPath(
                std::env::temp_dir()
                    .join(format!("neurospatial-db-wal-{tag}-{}.wal", std::process::id())),
            )
        }
    }

    impl Drop for WalPath {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    fn fresh_segment(id: u64, x: f64) -> NeuronSegment {
        NeuronSegment {
            id,
            neuron: 1000 + id as u32,
            section: 0,
            index_on_section: 0,
            geom: neurospatial_geom::Segment::new(
                Vec3::new(x, 0.0, 0.0),
                Vec3::new(x + 1.0, 0.0, 0.0),
                0.4,
            ),
        }
    }

    #[test]
    fn frozen_databases_reject_writes() {
        let (db, c) = db();
        assert!(!db.is_live());
        assert!(db.wal_health().is_none());
        let next_id = c.segments().len() as u64;
        assert!(matches!(
            db.insert_segment(fresh_segment(next_id, 0.0)),
            Err(NeuroError::WriteUnsupported)
        ));
        assert!(matches!(db.remove_segment(0), Err(NeuroError::WriteUnsupported)));
        assert!(matches!(db.refreeze(), Err(NeuroError::WriteUnsupported)));
        assert!(!db.maybe_refreeze().expect("no-op"));
    }

    #[test]
    fn live_writes_are_visible_and_merge_with_base() {
        let c = CircuitBuilder::new(5).neurons(6).build();
        let wal = WalPath::new("merge");
        let db = NeuroDb::builder().circuit(&c).durable(&wal.0).build().expect("live");
        assert!(db.is_live());
        let base_len = db.len();

        // Insert far from the data, then query it back.
        let s = fresh_segment(1_000_000, 5_000.0);
        let ack = db.insert_segment(s).expect("acked");
        assert!(ack.lsn > 0);
        assert_eq!(ack.pending, 1);
        assert_eq!(db.len(), base_len + 1);
        let near = Aabb::cube(Vec3::new(5_000.5, 0.0, 0.0), 10.0);
        assert_eq!(db.range_query(&near).sorted_ids(), vec![1_000_000]);
        assert!(db.bounds().hi.x >= 5_001.0);

        // Remove a base segment: masked out of queries immediately.
        let victim = c.segments()[0];
        db.remove_segment(victim.id).expect("acked");
        assert_eq!(db.len(), base_len);
        let around = Aabb::cube(victim.geom.center(), 1.0);
        assert!(!db.range_query(&around).sorted_ids().contains(&victim.id));

        // KNN sees the delta insert.
        let (nearest, _) = db.knn(Vec3::new(5_000.5, 0.0, 0.0), 1);
        assert_eq!(nearest[0].segment.id, 1_000_000);

        // Validation rejects without logging.
        let lsn_before = db.wal_health().expect("live").last_lsn;
        assert!(matches!(
            db.insert_segment(fresh_segment(1_000_000, 0.0)),
            Err(NeuroError::WriteRejected { .. })
        ));
        assert!(matches!(db.remove_segment(victim.id), Err(NeuroError::WriteRejected { .. })));
        let mut bad = fresh_segment(2_000_000, 0.0);
        bad.geom.radius = f64::NAN;
        assert!(matches!(db.insert_segment(bad), Err(NeuroError::WriteRejected { .. })));
        assert_eq!(db.wal_health().expect("live").last_lsn, lsn_before);
    }

    #[test]
    fn live_queries_match_a_rebuilt_frozen_database() {
        let c = CircuitBuilder::new(7).neurons(6).build();
        for backend in IndexBackend::ALL {
            for shards in [1usize, 3] {
                let wal = WalPath::new(&format!("equiv-{backend}-{shards}"));
                let db = NeuroDb::builder()
                    .circuit(&c)
                    .backend(backend)
                    .shards(shards)
                    .threads(2)
                    .durable(&wal.0)
                    .build()
                    .expect("live");
                // Apply a mixed batch of writes.
                let mut want = c.segments().to_vec();
                let ops = vec![
                    WriteOp::Insert(fresh_segment(900_000, 10.0)),
                    WriteOp::Remove(c.segments()[3].id),
                    WriteOp::Insert(fresh_segment(900_001, -20.0)),
                    WriteOp::Remove(c.segments()[10].id),
                ];
                db.write_batch(&ops).expect("acked");
                delta::apply_ops(&mut want, &ops);
                let reference = NeuroDb::builder()
                    .segments(want)
                    .backend(backend)
                    .shards(shards)
                    .threads(2)
                    .build()
                    .expect("frozen reference");
                let q = Aabb::cube(c.bounds().center(), 45.0);
                assert_eq!(
                    db.range_query(&q).sorted_ids(),
                    reference.range_query(&q).sorted_ids(),
                    "{backend} shards={shards}"
                );
                let p = c.segments()[5].geom.center();
                let ids = |ns: &[Neighbor]| ns.iter().map(|n| n.segment.id).collect::<Vec<_>>();
                assert_eq!(
                    ids(&db.knn(p, 9).0),
                    ids(&reference.knn(p, 9).0),
                    "{backend} shards={shards} knn"
                );
                // After a refreeze the answers are unchanged.
                let epoch = db.refreeze().expect("refrozen");
                assert_eq!(epoch, 1);
                assert_eq!(
                    db.range_query(&q).sorted_ids(),
                    reference.range_query(&q).sorted_ids(),
                    "{backend} shards={shards} post-swap"
                );
                assert_eq!(db.wal_health().expect("live").pending_ops, 0);
            }
        }
    }

    #[test]
    fn recovery_reconstructs_the_acknowledged_prefix() {
        let c = CircuitBuilder::new(3).neurons(4).build();
        let wal = WalPath::new("recover");
        let q = Aabb::cube(c.bounds().center(), 60.0);
        let want = {
            let db = NeuroDb::builder().circuit(&c).durable(&wal.0).build().expect("live");
            db.insert_segment(fresh_segment(500_000, 3.0)).expect("acked");
            db.remove_segment(c.segments()[1].id).expect("acked");
            db.range_query(&q).sorted_ids()
        };
        // Reopen: the builder's (different) data source is ignored — the
        // WAL is the source of truth.
        let reopened = NeuroDb::builder().segments(vec![]).durable(&wal.0).build().expect("live");
        assert_eq!(reopened.range_query(&q).sorted_ids(), want);
        let health = reopened.wal_health().expect("live");
        assert_eq!(health.replayed_ops, 2);
        assert!(!health.recovered_torn_tail);
        // The reopen folded the tail into a checkpoint: a third open
        // replays nothing.
        drop(reopened);
        let third = NeuroDb::builder().segments(vec![]).durable(&wal.0).build().expect("live");
        assert_eq!(third.wal_health().expect("live").replayed_ops, 0);
        assert_eq!(third.range_query(&q).sorted_ids(), want);
    }

    #[test]
    fn crashed_commit_is_not_replayed() {
        use neurospatial_storage::FaultPlan;
        let c = CircuitBuilder::new(4).neurons(3).build();
        let wal = WalPath::new("crash");
        let q = Aabb::cube(c.bounds().center(), 60.0);
        // Find the WAL length after the first (acked) write…
        let (acked_ids, bytes_after_first) = {
            let db = NeuroDb::builder().circuit(&c).durable(&wal.0).build().expect("live");
            db.insert_segment(fresh_segment(700_000, 2.0)).expect("acked");
            (db.range_query(&q).sorted_ids(), db.wal_health().expect("live").wal_bytes)
        };
        std::fs::remove_file(&wal.0).expect("reset");
        // …then crash the log exactly there on a second run: the first
        // write commits, the second write's records are torn mid-append.
        {
            let db = NeuroDb::builder()
                .circuit(&c)
                .durable(&wal.0)
                .wal_faults(FaultPlan::new(7).with_write_crash_at(bytes_after_first + 30))
                .build()
                .expect("live");
            db.insert_segment(fresh_segment(700_000, 2.0)).expect("first write acked");
            let err = db.insert_segment(fresh_segment(700_001, 9.0));
            assert!(err.is_err(), "crashed commit must not ack");
        }
        let reopened = NeuroDb::builder().segments(vec![]).durable(&wal.0).build().expect("live");
        assert_eq!(reopened.range_query(&q).sorted_ids(), acked_ids);
        let health = reopened.wal_health().expect("live");
        assert!(health.recovered_torn_tail, "torn tail must be detected");
        assert_eq!(health.replayed_ops, 1, "only the acked write replays");
    }

    #[test]
    fn background_maintenance_refreezes_past_the_threshold() {
        let c = CircuitBuilder::new(6).neurons(3).build();
        let wal = WalPath::new("maint");
        let db = NeuroDb::builder()
            .circuit(&c)
            .durable(&wal.0)
            .refreeze_threshold(4)
            .build()
            .expect("live");
        let epoch_after = db.with_ingest_maintenance(std::time::Duration::from_millis(1), |db| {
            for i in 0..32u64 {
                db.insert_segment(fresh_segment(800_000 + i, i as f64 * 3.0)).expect("acked");
            }
            // Wait for the poller to catch up.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while db.wal_health().expect("live").epoch == 0 {
                assert!(std::time::Instant::now() < deadline, "maintenance never refroze");
                std::thread::yield_now();
            }
            db.wal_health().expect("live").epoch
        });
        assert!(epoch_after >= 1);
        // Everything is still queryable after however many swaps ran.
        let q = Aabb::cube(Vec3::new(48.0, 0.0, 0.0), 1_000.0);
        let out = db.range_query(&q);
        for i in 0..32u64 {
            assert!(out.sorted_ids().contains(&(800_000 + i)), "segment {i} lost in swap");
        }
    }
}
