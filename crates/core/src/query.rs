//! The unified query surface: one composable, typed entry point for
//! every workload the database serves.
//!
//! The paper's system is a *query service* for neuroscientists — range
//! scans, nearest neighbours, ε-distance joins and walkthrough replays
//! over the same circuit. [`NeuroDb::query`] opens a fluent builder that
//! expresses all four through one grammar:
//!
//! * **what** — [`Query::range`], [`Query::knn`], [`Query::touching`],
//!   [`Query::along_path`];
//! * **over what** — [`RangeQuery::in_population`] restricts to one named
//!   population, [`RangeQuery::filter`] pushes an arbitrary predicate
//!   *below* the index traversal, [`RangeQuery::limit`] stops the
//!   traversal the moment enough results have been emitted;
//! * **how** — three terminal modes: `collect()` materializes (the
//!   classic [`QueryOutput`], byte-identical to the legacy methods),
//!   `stream(|seg| …)` delivers results through a sink without ever
//!   building a `Vec` (backed by [`SpatialIndex::for_each_in_range`]),
//!   and `session()` binds a reusable [`QueryScratch`] — plus, on FLAT
//!   databases, an optional SCOUT prefetch cursor — for repeated-query
//!   serving loops that must not allocate;
//! * **why** — every builder answers [`explain`](RangeQuery::explain)
//!   with a [`Plan`]: backend chosen, shards pruned, pushdown applied,
//!   estimated page reads.
//!
//! ```
//! use neurospatial::prelude::*;
//!
//! let circuit = CircuitBuilder::new(9).neurons(8).build();
//! let db = NeuroDb::builder()
//!     .circuit(&circuit)
//!     .split_populations("axons", "dendrites", |s| s.neuron % 2 == 0)
//!     .build()
//!     .expect("valid");
//! let region = Aabb::cube(circuit.bounds().center(), 40.0);
//!
//! // Collect — today's QueryOutput, byte-identical to db.range_query().
//! let all = db.query().range(region).collect().unwrap();
//!
//! // Stream with a pushed-down predicate and limit: no Vec, early exit.
//! let pred = |s: &NeuronSegment| s.neuron < 4;
//! let mut streamed = 0usize;
//! let stats = db
//!     .query()
//!     .range(region)
//!     .filter(&pred)
//!     .limit(5)
//!     .stream(|_seg| streamed += 1)
//!     .unwrap();
//! assert!(streamed <= 5);
//! assert_eq!(streamed as u64, stats.results);
//!
//! // Explain: what would run, without running it.
//! let plan = db.query().range(region).filter(&pred).explain();
//! assert!(plan.pushdown_filter);
//!
//! // Session: one scratch bound across a whole serving loop.
//! let mut session = db.query().range(region).session().unwrap();
//! for q in [region, Aabb::cube(circuit.bounds().lo, 20.0)] {
//!     let (hits, stats) = session.range(&q);
//!     assert_eq!(hits.len() as u64, stats.results);
//! }
//! # let _ = all;
//! ```

use crate::db::{DbCursor, NeuroDb, WalkthroughMethod};
use crate::error::NeuroError;
use crate::index::{
    finish_knn, IndexBackend, Neighbor, QueryOutput, QueryScratch, QueryStats, SpatialIndex,
};
use neurospatial_geom::{Aabb, Flow, Vec3};
use neurospatial_model::{NavigationPath, NeuronSegment};
use neurospatial_scout::SessionStats;
use neurospatial_touch::{JoinResult, JoinStats, SpatialJoin};
use std::cell::RefCell;
use std::fmt;

/// A pushed-down segment predicate, borrowed for the builder's lifetime
/// so hot loops pay no boxing: `.filter(&|s| …)` chains directly, or
/// let-bind the closure when the query outlives the statement.
pub type SegmentPredicate<'a> = dyn Fn(&NeuronSegment) -> bool + 'a;

thread_local! {
    /// One [`QueryScratch`] per thread, shared by the `collect()` and
    /// `stream()` terminals: after the first few queries have grown its
    /// buffers, streaming queries perform zero heap allocations without
    /// the caller managing scratch state (`experiments --scenario=api`
    /// measures exactly this).
    static SHARED_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// Run `f` with the thread-shared scratch; a re-entrant call (a sink
/// issuing its own query on the same thread) falls back to a fresh
/// scratch instead of panicking on the `RefCell`.
fn with_scratch<R>(f: impl FnOnce(&mut QueryScratch) -> R) -> R {
    SHARED_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut QueryScratch::new()),
    })
}

/// Emit the live delta inserts matching `region` after the base
/// traversal — the second half of the base+delta merge on live
/// databases. Delta hits respect the same population/filter/limit
/// pushdown as base hits (a population constraint excludes delta
/// inserts entirely: membership is assigned at build time, so a
/// freshly ingested segment belongs to no population until the next
/// reopen). Returns `false` iff `emit` asked to stop (budget tripped).
#[allow(clippy::too_many_arguments)]
fn emit_delta_matches(
    db: &NeuroDb,
    delta: &crate::delta::DeltaBuffer,
    region: &Aabb,
    population: Option<u32>,
    filter: Option<&SegmentPredicate<'_>>,
    remaining: &mut Option<usize>,
    stats: &mut QueryStats,
    emit: &mut dyn FnMut(&NeuronSegment) -> bool,
) -> bool {
    let mut completed = true;
    delta.for_each_in_range(region, |s| {
        if !completed || *remaining == Some(0) {
            return;
        }
        stats.objects_tested += 1;
        let keep = population.is_none_or(|pi| db.population_of_segment(s.id) == Some(pi))
            && filter.is_none_or(|f| f(s));
        if !keep {
            return;
        }
        stats.results += 1;
        if let Some(r) = remaining {
            *r -= 1;
        }
        if !emit(s) {
            completed = false;
        }
    });
    completed
}

/// The shared range executor behind every terminal: one streaming
/// traversal with population membership, predicate and limit all applied
/// *below* the index (via [`SpatialIndex::try_for_each_in_range`]),
/// results delivered to `emit` in the backend's canonical emission
/// order. On live databases the traversal runs over a coherent
/// (base, delta) snapshot: removals mask base hits, then the delta's
/// inserts are emitted after the base in acknowledgement order.
/// In-memory backends cannot fail; the paged backend surfaces
/// storage faults as typed errors, or — with `allow_partial` — skips
/// quarantined pages and labels the loss in `stats.pages_quarantined`.
#[allow(clippy::too_many_arguments)]
fn try_run_range(
    db: &NeuroDb,
    region: &Aabb,
    population: Option<u32>,
    filter: Option<&SegmentPredicate<'_>>,
    limit: Option<usize>,
    allow_partial: bool,
    scratch: &mut QueryScratch,
    mut emit: impl FnMut(&NeuronSegment),
) -> Result<QueryStats, NeuroError> {
    if limit == Some(0) {
        return Ok(QueryStats::default());
    }
    let qobs = crate::metrics::query_obs();
    qobs.ranges.inc();
    let _traversal = crate::metrics::sample_range_latency().then(|| {
        neurospatial_obs::span_timed(neurospatial_obs::Stage::Traversal, &qobs.range_latency)
    });
    let res = db.with_view(|index, delta| {
        let mut remaining = limit;
        let mut stats = index.try_for_each_in_range(region, scratch, allow_partial, &mut |s| {
            if delta.is_some_and(|d| d.is_removed(s.id)) {
                return Flow::Skip;
            }
            let keep = population.is_none_or(|pi| db.population_of_segment(s.id) == Some(pi))
                && filter.is_none_or(|f| f(s));
            if !keep {
                return Flow::Skip;
            }
            emit(s);
            match &mut remaining {
                None => Flow::Emit,
                Some(r) => {
                    *r -= 1;
                    if *r == 0 {
                        Flow::Last
                    } else {
                        Flow::Emit
                    }
                }
            }
        })?;
        if let Some(d) = delta {
            emit_delta_matches(
                db,
                d,
                region,
                population,
                filter,
                &mut remaining,
                &mut stats,
                &mut |s| {
                    emit(s);
                    true
                },
            );
        }
        Ok(stats)
    });
    if let Ok(stats) = &res {
        qobs.observe(stats);
    }
    res
}

/// The infallible form of [`try_run_range`] used by [`QuerySession`]'s
/// hot loops: identical traversal through the infallible trait lane
/// (the paged backend panics on post-open media failure here — sessions
/// that must survive it use [`QuerySession::try_range`]).
fn run_range(
    db: &NeuroDb,
    region: &Aabb,
    population: Option<u32>,
    filter: Option<&SegmentPredicate<'_>>,
    limit: Option<usize>,
    scratch: &mut QueryScratch,
    mut emit: impl FnMut(&NeuronSegment),
) -> QueryStats {
    if limit == Some(0) {
        return QueryStats::default();
    }
    let qobs = crate::metrics::query_obs();
    qobs.ranges.inc();
    let _traversal = crate::metrics::sample_range_latency().then(|| {
        neurospatial_obs::span_timed(neurospatial_obs::Stage::Traversal, &qobs.range_latency)
    });
    let stats = db.with_view(|index, delta| {
        let mut remaining = limit;
        let mut stats = index.for_each_in_range(region, scratch, &mut |s| {
            if delta.is_some_and(|d| d.is_removed(s.id)) {
                return Flow::Skip;
            }
            let keep = population.is_none_or(|pi| db.population_of_segment(s.id) == Some(pi))
                && filter.is_none_or(|f| f(s));
            if !keep {
                return Flow::Skip;
            }
            emit(s);
            match &mut remaining {
                None => Flow::Emit,
                Some(r) => {
                    *r -= 1;
                    if *r == 0 {
                        Flow::Last
                    } else {
                        Flow::Emit
                    }
                }
            }
        });
        if let Some(d) = delta {
            emit_delta_matches(
                db,
                d,
                region,
                population,
                filter,
                &mut remaining,
                &mut stats,
                &mut |s| {
                    emit(s);
                    true
                },
            );
        }
        stats
    });
    qobs.observe(&stats);
    stats
}

/// The initial expanding-cube radius and its upper bound for a KNN
/// search — the same density-scaled guess the trait's default uses, so
/// plans describe the traversal that will actually run.
fn knn_radii(index: &dyn SpatialIndex, p: Vec3, k: usize) -> (f64, f64) {
    let bounds = index.bounds();
    let far = Vec3::new(
        (p.x - bounds.lo.x).abs().max((p.x - bounds.hi.x).abs()),
        (p.y - bounds.lo.y).abs().max((p.y - bounds.hi.y).abs()),
        (p.z - bounds.lo.z).abs().max((p.z - bounds.hi.z).abs()),
    )
    .norm();
    let ext = bounds.extent();
    let frac = (k as f64 / index.len().max(1) as f64).cbrt().min(1.0);
    let guess = ext.x.max(ext.y).max(ext.z) * frac * 0.5;
    let r = (bounds.min_distance_to_point(p) + guess).max(1e-9).min(far.max(1e-9));
    (r, far)
}

/// Filtered exact KNN: the expanding-cube search of the trait default,
/// with the membership/predicate tests pushed below each cube traversal.
/// Only used when a filter or population is bound — the unfiltered path
/// goes through [`SpatialIndex::knn_into_scratch`] so answers (and the
/// sharded executor's merge strategy) stay byte-identical to the legacy
/// [`NeuroDb::knn`].
#[allow(clippy::too_many_arguments)]
fn run_knn(
    db: &NeuroDb,
    p: Vec3,
    k: usize,
    population: Option<u32>,
    filter: Option<&SegmentPredicate<'_>>,
    scratch: &mut QueryScratch,
    out: &mut Vec<Neighbor>,
) -> QueryStats {
    let qobs = crate::metrics::query_obs();
    qobs.knns.inc();
    let _traversal = crate::metrics::sample_knn_latency().then(|| {
        neurospatial_obs::span_timed(neurospatial_obs::Stage::Traversal, &qobs.knn_latency)
    });
    let stats = db.with_view(|index, delta| {
        // An empty delta merges like no delta at all — keep the
        // byte-identical fast path.
        let delta = delta.filter(|d| !d.is_empty());
        if population.is_none() && filter.is_none() && delta.is_none() {
            return index.knn_into_scratch(p, k, scratch, out);
        }
        let mut stats = QueryStats::default();
        if k == 0 || (index.is_empty() && delta.is_none()) {
            return stats;
        }
        let mut hits = std::mem::take(&mut scratch.knn_hits);
        let mut candidates = std::mem::take(&mut scratch.knn_candidates);
        candidates.clear();
        if index.is_empty() {
            // Nothing frozen yet: every candidate comes from the delta.
        } else {
            let (mut r, far) = knn_radii(index, p, k);
            loop {
                hits.clear();
                let s = index.for_each_in_range(&Aabb::cube(p, r), scratch, &mut |seg| {
                    let keep = !delta.is_some_and(|d| d.is_removed(seg.id))
                        && population.is_none_or(|pi| db.population_of_segment(seg.id) == Some(pi))
                        && filter.is_none_or(|f| f(seg));
                    if keep {
                        hits.push(*seg);
                        Flow::Emit
                    } else {
                        Flow::Skip
                    }
                });
                stats.nodes_read += s.nodes_read;
                stats.objects_tested += s.objects_tested;
                stats.reseeds += s.reseeds;
                candidates.clear();
                candidates.extend(
                    hits.iter()
                        .map(|s| Neighbor {
                            segment: *s,
                            distance: s.aabb().min_distance_to_point(p),
                        })
                        .filter(|n| n.distance <= r),
                );
                if candidates.len() >= k || r >= far {
                    break;
                }
                r = (r * 2.0).min(far);
            }
        }
        // Every live delta insert is a candidate (the buffer is small by
        // construction); finish_knn's canonical (distance, id) order then
        // makes the merged answer exact.
        if let Some(d) = delta {
            d.for_each(|seg| {
                stats.objects_tested += 1;
                let keep = population.is_none_or(|pi| db.population_of_segment(seg.id) == Some(pi))
                    && filter.is_none_or(|f| f(seg));
                if keep {
                    candidates.push(Neighbor {
                        segment: *seg,
                        distance: seg.aabb().min_distance_to_point(p),
                    });
                }
            });
        }
        candidates = finish_knn(candidates, k, &mut stats);
        out.extend_from_slice(&candidates);
        scratch.knn_hits = hits;
        scratch.knn_candidates = candidates;
        stats
    });
    qobs.observe(&stats);
    stats
}

/// What a query *would* do — returned by every builder's `explain()`
/// without executing anything. The sharded numbers come from real
/// shard-bounds pruning; the read estimate is FLAT's actual
/// page-overlap count on FLAT databases and a volume-fraction heuristic
/// on the tree backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Which builder produced this plan: `"range"`, `"knn"`,
    /// `"touching"` or `"walkthrough"`.
    pub operation: &'static str,
    /// Backend the database was built with.
    pub backend: IndexBackend,
    /// Shards the executor manages (1 for monolithic databases).
    pub shards_total: usize,
    /// Shards whose bounds survive pruning (the rest are never touched).
    pub shards_probed: usize,
    /// Estimated index pages/nodes the execution would read (for
    /// `touching`: objects fed to the join's build+probe phases).
    pub estimated_reads: u64,
    /// Whether a predicate or population membership test is pushed below
    /// the index traversal.
    pub pushdown_filter: bool,
    /// The limit pushed into the traversal, if any.
    pub pushdown_limit: Option<usize>,
    /// Population the query is restricted to, if any.
    pub population: Option<String>,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {}: {}/{} shard(s) after pruning, ~{} read(s)",
            self.operation,
            self.backend,
            self.shards_probed,
            self.shards_total,
            self.estimated_reads
        )?;
        if self.pushdown_filter {
            write!(f, ", filter pushed down")?;
        }
        if let Some(n) = self.pushdown_limit {
            write!(f, ", limit {n}")?;
        }
        if let Some(p) = &self.population {
            write!(f, ", population '{p}'")?;
        }
        Ok(())
    }
}

/// The root of the fluent query API — created by [`NeuroDb::query`],
/// immediately specialised into one of the four workload builders.
pub struct Query<'a> {
    db: &'a NeuroDb,
}

impl<'a> Query<'a> {
    pub(crate) fn new(db: &'a NeuroDb) -> Self {
        Query { db }
    }

    /// Spatial range query: every segment whose AABB intersects `region`.
    pub fn range(self, region: Aabb) -> RangeQuery<'a> {
        RangeQuery {
            db: self.db,
            region,
            population: None,
            filter: None,
            limit: None,
            allow_partial: false,
        }
    }

    /// The `k` segments nearest to `p` (AABB minimum distance), in
    /// canonical (distance, id) order.
    pub fn knn(self, p: Vec3, k: usize) -> KnnQuery<'a> {
        KnnQuery { db: self.db, p, k, population: None, filter: None, limit: None }
    }

    /// ε-distance join (TOUCH): all pairs between the left population
    /// (the first one unless [`TouchingQuery::in_population`] picks
    /// another) and the named `other` population whose capsule surfaces
    /// come within `epsilon`.
    pub fn touching(self, other: &'a str, epsilon: f64) -> TouchingQuery<'a> {
        TouchingQuery { db: self.db, other, epsilon, population: None, filter: None, limit: None }
    }

    /// Walkthrough replay along a navigation path with simulated paged
    /// I/O and prefetching (FLAT databases only).
    pub fn along_path(self, path: &'a NavigationPath) -> PathQuery<'a> {
        PathQuery { db: self.db, path, method: WalkthroughMethod::Scout }
    }

    /// Bind an unconstrained [`QuerySession`] straight from the root: a
    /// reusable scratch + result buffers with no population, filter or
    /// limit. Go through a kind builder's `session()` (e.g.
    /// [`RangeQuery::session`]) when the session should carry
    /// composition into every query it serves.
    pub fn session(self) -> QuerySession<'a> {
        QuerySession {
            db: self.db,
            population: None,
            filter: None,
            limit: None,
            scratch: QueryScratch::new(),
            segments: Vec::new(),
            neighbors: Vec::new(),
            cursor: None,
        }
    }
}

/// A composable range query. Terminals: [`collect`](Self::collect),
/// [`stream`](Self::stream), [`session`](Self::session),
/// [`explain`](Self::explain).
pub struct RangeQuery<'a> {
    db: &'a NeuroDb,
    region: Aabb,
    population: Option<&'a str>,
    filter: Option<&'a SegmentPredicate<'a>>,
    limit: Option<usize>,
    allow_partial: bool,
}

impl<'a> RangeQuery<'a> {
    /// Restrict results to one named population (membership is tested
    /// below the index traversal; unknown names error at the terminal).
    pub fn in_population(mut self, name: &'a str) -> Self {
        self.population = Some(name);
        self
    }

    /// Push a predicate below the index traversal: rejected segments are
    /// never copied, counted or delivered. Borrowed, not boxed — chain
    /// `.filter(&|s| …)` directly, or let-bind the closure if the query
    /// value must outlive the statement.
    pub fn filter<F: Fn(&NeuronSegment) -> bool>(mut self, pred: &'a F) -> Self {
        self.filter = Some(pred);
        self
    }

    /// Stop the traversal after `n` results — index pages past the limit
    /// are never read.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Accept partial results from a degraded paged database: pages the
    /// pool has quarantined after permanent media failures are skipped
    /// instead of failing the query, and the loss is labeled in
    /// `stats.pages_quarantined` (nonzero ⇒ the result set is
    /// incomplete). No effect on healthy media or in-memory backends —
    /// results stay byte-identical and the counter stays 0.
    pub fn allow_partial(mut self, allow: bool) -> Self {
        self.allow_partial = allow;
        self
    }

    fn resolve_population(&self) -> Result<Option<u32>, NeuroError> {
        match self.population {
            None => Ok(None),
            Some(name) => Ok(Some(self.db.population_position(name)? as u32)),
        }
    }

    /// Materialize: today's [`QueryOutput`]. Without a population,
    /// filter or limit this is byte-identical — results, order,
    /// statistics — to the legacy [`NeuroDb::range_query`].
    pub fn collect(&self) -> Result<QueryOutput, NeuroError> {
        let population = self.resolve_population()?;
        with_scratch(|scratch| {
            let mut segments = Vec::new();
            let stats = try_run_range(
                self.db,
                &self.region,
                population,
                self.filter,
                self.limit,
                self.allow_partial,
                scratch,
                |s| segments.push(*s),
            )?;
            Ok(QueryOutput { segments, stats })
        })
    }

    /// Count the matching segments without materializing any of them —
    /// the traversal runs with a no-op sink, so population, filter and
    /// limit pushdown all apply and nothing is copied. Equal to
    /// `collect()?.segments.len()`, minus the `Vec`.
    pub fn count(&self) -> Result<u64, NeuroError> {
        Ok(self.stream(|_| {})?.results)
    }

    /// Fold every matching segment into an accumulator, in the backend's
    /// canonical emission order, without materializing a result vector.
    /// Returns the final accumulator and the traversal statistics.
    pub fn fold<B>(
        &self,
        init: B,
        mut f: impl FnMut(B, &NeuronSegment) -> B,
    ) -> Result<(B, QueryStats), NeuroError> {
        let mut acc = Some(init);
        let stats = self.stream(|s| {
            let b = acc.take().expect("accumulator present");
            acc = Some(f(b, s));
        })?;
        Ok((acc.expect("accumulator present"), stats))
    }

    /// Stream: every matching segment is delivered to `sink`, in the
    /// backend's canonical emission order, without materializing a
    /// result vector — the zero-copy lane for serving loops and
    /// aggregations. Visits exactly the set (and order)
    /// [`collect`](Self::collect) would return.
    pub fn stream(&self, mut sink: impl FnMut(&NeuronSegment)) -> Result<QueryStats, NeuroError> {
        let population = self.resolve_population()?;
        with_scratch(|scratch| {
            try_run_range(
                self.db,
                &self.region,
                population,
                self.filter,
                self.limit,
                self.allow_partial,
                scratch,
                |s| sink(s),
            )
        })
    }

    /// Bind a reusable [`QuerySession`] carrying this query's
    /// composition (population, filter, limit) plus a private
    /// [`QueryScratch`] and result buffers — the repeated-query form
    /// whose steady state performs zero heap allocations. The builder's
    /// region is *not* bound: every [`QuerySession::range`] call names
    /// its own region ([`Query::session`] skips the region entirely when
    /// no composition is needed).
    pub fn session(self) -> Result<QuerySession<'a>, NeuroError> {
        let population = self.resolve_population()?;
        Ok(QuerySession {
            db: self.db,
            population,
            filter: self.filter,
            limit: self.limit,
            scratch: QueryScratch::new(),
            segments: Vec::new(),
            neighbors: Vec::new(),
            cursor: None,
        })
    }

    /// The execution plan, without executing: backend, shard pruning,
    /// pushdown, estimated reads.
    pub fn explain(&self) -> Plan {
        let ip = self.db.index().plan_range(&self.region);
        Plan {
            operation: "range",
            backend: self.db.backend(),
            shards_total: ip.shards_total,
            shards_probed: ip.shards_probed,
            estimated_reads: ip.estimated_reads,
            pushdown_filter: self.filter.is_some() || self.population.is_some(),
            pushdown_limit: self.limit,
            population: self.population.map(str::to_string),
        }
    }
}

/// A composable k-nearest-neighbour query. With a filter or population
/// bound, the expanding-cube search applies the predicate below each
/// cube traversal and keeps expanding until `k` *matching* neighbours
/// are proven nearest; without one it is byte-identical to the legacy
/// [`NeuroDb::knn`].
pub struct KnnQuery<'a> {
    db: &'a NeuroDb,
    p: Vec3,
    k: usize,
    population: Option<&'a str>,
    filter: Option<&'a SegmentPredicate<'a>>,
    limit: Option<usize>,
}

impl<'a> KnnQuery<'a> {
    /// Restrict candidates to one named population.
    pub fn in_population(mut self, name: &'a str) -> Self {
        self.population = Some(name);
        self
    }

    /// Push a candidate predicate below the search.
    pub fn filter<F: Fn(&NeuronSegment) -> bool>(mut self, pred: &'a F) -> Self {
        self.filter = Some(pred);
        self
    }

    /// Cap the neighbour count below `k` (the effective k is the
    /// smaller of the two).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    fn effective_k(&self) -> usize {
        self.limit.map_or(self.k, |l| self.k.min(l))
    }

    fn resolve_population(&self) -> Result<Option<u32>, NeuroError> {
        match self.population {
            None => Ok(None),
            Some(name) => Ok(Some(self.db.population_position(name)? as u32)),
        }
    }

    /// Materialize the canonical neighbour list — the legacy
    /// [`NeuroDb::knn`] tuple.
    pub fn collect(&self) -> Result<(Vec<Neighbor>, QueryStats), NeuroError> {
        let population = self.resolve_population()?;
        with_scratch(|scratch| {
            let mut out = Vec::new();
            let stats = run_knn(
                self.db,
                self.p,
                self.effective_k(),
                population,
                self.filter,
                scratch,
                &mut out,
            );
            Ok((out, stats))
        })
    }

    /// Deliver the neighbours to `sink` in canonical order. (KNN must
    /// sort before it can emit, so the `k` winners are staged in the
    /// scratch internally — `k` is small; the point of this form is a
    /// uniform sink-based surface, not asymptotics.)
    pub fn stream(&self, mut sink: impl FnMut(Neighbor)) -> Result<QueryStats, NeuroError> {
        let (neighbors, stats) = self.collect()?;
        for n in neighbors {
            sink(n);
        }
        Ok(stats)
    }

    /// Bind a reusable [`QuerySession`] (shared with the range form —
    /// one session serves both workloads).
    pub fn session(self) -> Result<QuerySession<'a>, NeuroError> {
        let population = self.resolve_population()?;
        Ok(QuerySession {
            db: self.db,
            population,
            filter: self.filter,
            limit: self.limit,
            scratch: QueryScratch::new(),
            segments: Vec::new(),
            neighbors: Vec::new(),
            cursor: None,
        })
    }

    /// The execution plan: the first expanding-cube iteration the search
    /// would run.
    pub fn explain(&self) -> Plan {
        let (r0, _) = knn_radii(self.db.index(), self.p, self.effective_k().max(1));
        let ip = self.db.index().plan_range(&Aabb::cube(self.p, r0));
        Plan {
            operation: "knn",
            backend: self.db.backend(),
            shards_total: ip.shards_total,
            shards_probed: ip.shards_probed,
            estimated_reads: ip.estimated_reads,
            pushdown_filter: self.filter.is_some() || self.population.is_some(),
            pushdown_limit: self.limit,
            population: self.population.map(str::to_string),
        }
    }
}

/// A composable ε-distance join (the TOUCH workload). The left side is
/// the first population unless [`in_population`](Self::in_population)
/// picks another; `other` names the right side.
pub struct TouchingQuery<'a> {
    db: &'a NeuroDb,
    other: &'a str,
    epsilon: f64,
    population: Option<&'a str>,
    filter: Option<&'a SegmentPredicate<'a>>,
    limit: Option<usize>,
}

impl<'a> TouchingQuery<'a> {
    /// Choose the left population by name (default: the first declared).
    pub fn in_population(mut self, name: &'a str) -> Self {
        self.population = Some(name);
        self
    }

    /// Pre-filter the left population before the join. Reported pair
    /// indices still refer to positions in the *unfiltered* population
    /// slice, so they compose with [`NeuroDb::population`].
    pub fn filter<F: Fn(&NeuronSegment) -> bool>(mut self, pred: &'a F) -> Self {
        self.filter = Some(pred);
        self
    }

    /// Keep only the first `n` pairs (join emission order).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    fn sides(&self) -> Result<(usize, usize), NeuroError> {
        let left = match self.population {
            Some(name) => self.db.population_position(name)?,
            None => {
                if self.db.populations().is_empty() {
                    return Err(NeuroError::TooFewPopulations { found: 0, needed: 2 });
                }
                0
            }
        };
        Ok((left, self.db.population_position(self.other)?))
    }

    /// Run the join. Without a filter or limit this is byte-identical
    /// (pairs and counters) to the legacy [`NeuroDb::join_between`].
    pub fn collect(&self) -> Result<JoinResult, NeuroError> {
        let (li, ri) = self.sides()?;
        let a = &self.db.populations()[li].segments;
        let b = &self.db.populations()[ri].segments;
        let mut result = match self.filter {
            None => self.db.join_config().join(a, b, self.epsilon),
            Some(pred) => {
                // Pre-filter the left side, then remap pair indices back
                // to unfiltered positions.
                let keep: Vec<u32> =
                    (0..a.len() as u32).filter(|&i| pred(&a[i as usize])).collect();
                let filtered: Vec<NeuronSegment> = keep.iter().map(|&i| a[i as usize]).collect();
                let mut r = self.db.join_config().join(&filtered, b, self.epsilon);
                for pair in &mut r.pairs {
                    pair.0 = keep[pair.0 as usize];
                }
                r
            }
        };
        if let Some(n) = self.limit {
            if result.pairs.len() > n {
                result.pairs.truncate(n);
            }
            result.stats.results = result.pairs.len() as u64;
        }
        Ok(result)
    }

    /// Deliver each `(left index, right index)` pair to `sink` and
    /// return the join statistics.
    pub fn stream(&self, mut sink: impl FnMut(u32, u32)) -> Result<JoinStats, NeuroError> {
        let result = self.collect()?;
        for &(i, j) in &result.pairs {
            sink(i, j);
        }
        Ok(result.stats)
    }

    /// The execution plan. `estimated_reads` counts the objects fed to
    /// the join's build and probe phases.
    pub fn explain(&self) -> Plan {
        let (left_len, right_len) = match self.sides() {
            Ok((li, ri)) => {
                (self.db.populations()[li].segments.len(), self.db.populations()[ri].segments.len())
            }
            Err(_) => (0, 0),
        };
        Plan {
            operation: "touching",
            backend: self.db.backend(),
            shards_total: 1,
            shards_probed: 1,
            estimated_reads: (left_len + right_len) as u64,
            pushdown_filter: self.filter.is_some(),
            pushdown_limit: self.limit,
            population: Some(
                self.population
                    .unwrap_or_else(|| {
                        self.db.populations().first().map_or("", |p| p.name.as_str())
                    })
                    .to_string(),
            ),
        }
    }
}

/// A walkthrough replay along a navigation path — the SCOUT workload,
/// expressed through the same builder grammar.
pub struct PathQuery<'a> {
    db: &'a NeuroDb,
    path: &'a NavigationPath,
    method: WalkthroughMethod,
}

impl PathQuery<'_> {
    /// Prefetching policy to replay with (default:
    /// [`WalkthroughMethod::Scout`]).
    pub fn method(mut self, method: WalkthroughMethod) -> Self {
        self.method = method;
        self
    }

    /// Replay the walkthrough. Identical to the legacy
    /// [`NeuroDb::walkthrough`]; errors on non-paged backends.
    pub fn run(&self) -> Result<SessionStats, NeuroError> {
        self.db.walkthrough_impl(self.path, self.method)
    }

    /// The execution plan: shard layout plus the summed per-step read
    /// estimate over the whole path.
    pub fn explain(&self) -> Plan {
        let index = self.db.index();
        let mut shards_total = 1;
        let mut shards_probed = 0;
        let mut estimated_reads = 0;
        for q in &self.path.queries {
            let ip = index.plan_range(q);
            shards_total = ip.shards_total;
            shards_probed = shards_probed.max(ip.shards_probed);
            estimated_reads += ip.estimated_reads;
        }
        Plan {
            operation: "walkthrough",
            backend: self.db.backend(),
            shards_total,
            shards_probed,
            estimated_reads,
            pushdown_filter: false,
            pushdown_limit: None,
            population: None,
        }
    }
}

/// A bound, reusable execution context for repeated-query loops: one
/// private [`QueryScratch`] and result buffers, carrying the builder's
/// composition (population, filter, limit) across every call — the
/// steady state allocates nothing. Created by [`RangeQuery::session`] /
/// [`KnnQuery::session`].
///
/// On FLAT databases, [`with_prefetch`](Self::with_prefetch) attaches a
/// SCOUT [`SessionCursor`](neurospatial_scout::SessionCursor): each
/// range query also advances a simulated paged-I/O walkthrough (demand
/// misses, think-time prefetching), and
/// [`prefetch_stats`](Self::prefetch_stats) reports the accumulated
/// stall/hit statistics — how the loop *would* behave against cold
/// storage.
pub struct QuerySession<'a> {
    db: &'a NeuroDb,
    population: Option<u32>,
    filter: Option<&'a SegmentPredicate<'a>>,
    limit: Option<usize>,
    scratch: QueryScratch,
    segments: Vec<NeuronSegment>,
    neighbors: Vec<Neighbor>,
    cursor: Option<DbCursor<'a>>,
}

impl<'a> QuerySession<'a> {
    /// Execute a range query with the bound composition; the result
    /// slice lives in the session's reused buffer until the next call.
    pub fn range(&mut self, region: &Aabb) -> (&[NeuronSegment], QueryStats) {
        self.segments.clear();
        let QuerySession { db, population, filter, limit, scratch, segments, cursor, .. } = self;
        let stats =
            run_range(db, region, *population, *filter, *limit, scratch, |s| segments.push(*s));
        if let Some(cursor) = cursor {
            cursor.step(region);
        }
        (&self.segments, stats)
    }

    /// Fallible sibling of [`range`](Self::range) for serving loops that
    /// must survive degraded media: a paged database with quarantined
    /// pages reports [`NeuroError::DegradedResult`] instead of panicking,
    /// and `allow_partial` opts into labeled partial results
    /// (`stats.pages_quarantined` counts the skipped pages). On healthy
    /// databases this is byte-identical to [`range`](Self::range).
    pub fn try_range(
        &mut self,
        region: &Aabb,
        allow_partial: bool,
    ) -> Result<(&[NeuronSegment], QueryStats), NeuroError> {
        self.segments.clear();
        let QuerySession { db, population, filter, limit, scratch, segments, cursor, .. } = self;
        let stats =
            try_run_range(db, region, *population, *filter, *limit, allow_partial, scratch, |s| {
                segments.push(*s)
            })?;
        if let Some(cursor) = cursor {
            cursor.step(region);
        }
        Ok((&self.segments, stats))
    }

    /// [`try_range`](Self::try_range) with a cooperative abort: the
    /// traversal also stops — cleanly, after delivering the segment in
    /// hand — once `keep_going` returns `false`. Returns
    /// `(segments, stats, completed)`; `completed` is `false` iff the
    /// budget check tripped first, in which case the buffered segments
    /// are a valid prefix of the full answer (`stats` still matches what
    /// was delivered). Serving loops use this for per-request time
    /// budgets; `keep_going` is consulted once per emitted result, so a
    /// tripped budget cuts a stream short without abandoning mid-frame
    /// state.
    pub fn try_range_budgeted(
        &mut self,
        region: &Aabb,
        allow_partial: bool,
        mut keep_going: impl FnMut() -> bool,
    ) -> Result<(&[NeuronSegment], QueryStats, bool), NeuroError> {
        self.segments.clear();
        let QuerySession { db, population, filter, limit, scratch, segments, cursor, .. } = self;
        let mut completed = true;
        let stats = if *limit == Some(0) {
            QueryStats::default()
        } else {
            let qobs = crate::metrics::query_obs();
            qobs.ranges.inc();
            let _traversal = crate::metrics::sample_range_latency().then(|| {
                neurospatial_obs::span_timed(
                    neurospatial_obs::Stage::Traversal,
                    &qobs.range_latency,
                )
            });
            let stats = db.with_view(|index, delta| {
                let mut remaining = *limit;
                let mut stats =
                    index.try_for_each_in_range(region, scratch, allow_partial, &mut |s| {
                        if delta.is_some_and(|d| d.is_removed(s.id)) {
                            return Flow::Skip;
                        }
                        let keep = population
                            .is_none_or(|pi| db.population_of_segment(s.id) == Some(pi))
                            && filter.is_none_or(|f| f(s));
                        if !keep {
                            return Flow::Skip;
                        }
                        segments.push(*s);
                        if !keep_going() {
                            completed = false;
                            return Flow::Last;
                        }
                        match &mut remaining {
                            None => Flow::Emit,
                            Some(r) => {
                                *r -= 1;
                                if *r == 0 {
                                    Flow::Last
                                } else {
                                    Flow::Emit
                                }
                            }
                        }
                    })?;
                if let (Some(d), true) = (delta, completed) {
                    completed = emit_delta_matches(
                        db,
                        d,
                        region,
                        *population,
                        *filter,
                        &mut remaining,
                        &mut stats,
                        &mut |s| {
                            segments.push(*s);
                            keep_going()
                        },
                    );
                }
                Ok::<QueryStats, NeuroError>(stats)
            })?;
            qobs.observe(&stats);
            stats
        };
        if let Some(cursor) = cursor {
            cursor.step(region);
        }
        Ok((&self.segments, stats, completed))
    }

    /// Fallible sibling of [`count`](Self::count): storage faults on a
    /// degraded paged database surface as typed errors, and
    /// `allow_partial` opts into counting only the surviving pages
    /// (labeled via `stats.pages_quarantined`).
    pub fn try_count(
        &mut self,
        region: &Aabb,
        allow_partial: bool,
    ) -> Result<QueryStats, NeuroError> {
        let QuerySession { db, population, filter, limit, scratch, cursor, .. } = self;
        let stats = try_run_range(
            db,
            region,
            *population,
            *filter,
            *limit,
            allow_partial,
            scratch,
            |_| {},
        )?;
        if let Some(cursor) = cursor {
            cursor.step(region);
        }
        Ok(stats)
    }

    /// Count the segments a [`range`](Self::range) call would return,
    /// without touching the result buffer — the traversal runs with a
    /// no-op sink and allocates nothing. The count is
    /// `stats.results`; the full [`QueryStats`] is returned so serving
    /// loops can account for work done, not just rows matched.
    pub fn count(&mut self, region: &Aabb) -> QueryStats {
        let QuerySession { db, population, filter, limit, scratch, cursor, .. } = self;
        let stats = run_range(db, region, *population, *filter, *limit, scratch, |_| {});
        if let Some(cursor) = cursor {
            cursor.step(region);
        }
        stats
    }

    /// Rebind the session's population restriction (`None` clears it) —
    /// the per-request form for serving loops where each request names
    /// its own population but the scratch and buffers must be reused.
    /// Unknown names error and leave the binding unchanged.
    pub fn set_population(&mut self, name: Option<&str>) -> Result<(), NeuroError> {
        self.population = match name {
            None => None,
            Some(name) => Some(self.db.population_position(name)? as u32),
        };
        Ok(())
    }

    /// Rebind the session's pushed-down predicate (`None` clears it).
    pub fn set_filter(&mut self, filter: Option<&'a SegmentPredicate<'a>>) {
        self.filter = filter;
    }

    /// Rebind the session's pushed-down limit (`None` clears it).
    pub fn set_limit(&mut self, limit: Option<usize>) {
        self.limit = limit;
    }

    /// Execute a KNN query with the bound composition; the neighbour
    /// slice lives in the session's reused buffer until the next call.
    pub fn knn(&mut self, p: Vec3, k: usize) -> (&[Neighbor], QueryStats) {
        self.neighbors.clear();
        let k = self.limit.map_or(k, |l| k.min(l));
        let QuerySession { db, population, filter, scratch, neighbors, .. } = self;
        let stats = run_knn(db, p, k, *population, *filter, scratch, neighbors);
        (&self.neighbors, stats)
    }

    /// Attach a SCOUT prefetch cursor (FLAT databases only): every
    /// subsequent [`range`](Self::range) also advances a simulated
    /// walkthrough step with the given prefetching policy.
    pub fn with_prefetch(mut self, method: WalkthroughMethod) -> Result<Self, NeuroError> {
        self.cursor = Some(self.db.scout_cursor(method)?);
        Ok(self)
    }

    /// Accumulated simulated-I/O statistics of the attached prefetch
    /// cursor (`None` unless [`with_prefetch`](Self::with_prefetch) was
    /// called).
    pub fn prefetch_stats(&self) -> Option<&SessionStats> {
        self.cursor.as_ref().map(|c| c.stats())
    }

    /// The plan a [`range`](Self::range) call over `region` would run.
    pub fn explain(&self, region: &Aabb) -> Plan {
        let ip = self.db.index().plan_range(region);
        Plan {
            operation: "range",
            backend: self.db.backend(),
            shards_total: ip.shards_total,
            shards_probed: ip.shards_probed,
            estimated_reads: ip.estimated_reads,
            pushdown_filter: self.filter.is_some() || self.population.is_some(),
            pushdown_limit: self.limit,
            population: self.population.map(|i| self.db.populations()[i as usize].name.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_model::CircuitBuilder;

    fn db() -> (NeuroDb, neurospatial_model::Circuit) {
        let c = CircuitBuilder::new(6).neurons(10).build();
        let db = NeuroDb::builder()
            .circuit(&c)
            .split_populations("axons", "dendrites", |s| s.neuron % 2 == 0)
            .build()
            .expect("valid");
        (db, c)
    }

    #[test]
    fn collect_matches_legacy_range_query() {
        let (db, c) = db();
        let q = Aabb::cube(c.bounds().center(), 35.0);
        let legacy = db.index().range_query(&q);
        let built = db.query().range(q).collect().expect("no population");
        assert_eq!(built.stats, legacy.stats);
        assert!(built.segments.iter().map(|s| s.id).eq(legacy.segments.iter().map(|s| s.id)));
    }

    #[test]
    fn stream_visits_the_collect_set_in_order() {
        let (db, c) = db();
        let q = Aabb::cube(c.bounds().center(), 30.0);
        let collected = db.query().range(q).collect().expect("ok");
        let mut streamed = Vec::new();
        let stats = db.query().range(q).stream(|s| streamed.push(s.id)).expect("ok");
        assert_eq!(stats, collected.stats);
        assert!(streamed.iter().copied().eq(collected.segments.iter().map(|s| s.id)));
    }

    #[test]
    fn filter_pushes_down_and_limit_stops_early() {
        let (db, c) = db();
        let q = Aabb::cube(c.bounds().center(), 45.0);
        let pred = |s: &NeuronSegment| s.neuron.is_multiple_of(3);
        let filtered = db.query().range(q).filter(&pred).collect().expect("ok");
        assert!(filtered.segments.iter().all(|s| s.neuron % 3 == 0));
        let unfiltered = db.query().range(q).collect().expect("ok");
        let brute: Vec<u64> =
            unfiltered.segments.iter().filter(|s| pred(s)).map(|s| s.id).collect();
        assert!(filtered.segments.iter().map(|s| s.id).eq(brute.iter().copied()));
        assert_eq!(filtered.stats.results as usize, filtered.segments.len());
        // Predicate rejections are tested, not returned.
        assert_eq!(filtered.stats.objects_tested, unfiltered.stats.objects_tested);

        let capped = db.query().range(q).limit(3).collect().expect("ok");
        assert_eq!(capped.segments.len(), 3.min(unfiltered.segments.len()));
        // A pushed-down limit is a prefix of the full emission order…
        assert!(capped.segments.iter().map(|s| s.id).eq(unfiltered
            .segments
            .iter()
            .take(capped.segments.len())
            .map(|s| s.id)));
        // …and reads no more index pages than the full query.
        assert!(capped.stats.nodes_read <= unfiltered.stats.nodes_read);
        assert!(db.query().range(q).limit(0).collect().expect("ok").is_empty());
    }

    #[test]
    fn count_and_fold_match_collect_without_materializing() {
        let (db, c) = db();
        let q = Aabb::cube(c.bounds().center(), 35.0);
        let collected = db.query().range(q).collect().expect("ok");
        assert_eq!(db.query().range(q).count().expect("ok"), collected.segments.len() as u64);

        // Composition applies to the aggregates exactly as to collect().
        let pred = |s: &NeuronSegment| s.neuron.is_multiple_of(2);
        let filtered = db.query().range(q).filter(&pred).limit(4).collect().expect("ok");
        assert_eq!(
            db.query().range(q).filter(&pred).limit(4).count().expect("ok"),
            filtered.segments.len() as u64
        );

        let (sum, stats) = db.query().range(q).fold(0u64, |acc, s| acc + s.id).expect("ok");
        assert_eq!(sum, collected.segments.iter().map(|s| s.id).sum::<u64>());
        assert_eq!(stats, collected.stats);

        assert!(matches!(
            db.query().range(q).in_population("soma").count(),
            Err(NeuroError::UnknownPopulation { .. })
        ));
    }

    #[test]
    fn session_rebinds_composition_per_request() {
        let (db, c) = db();
        let q = Aabb::cube(c.bounds().center(), 40.0);
        let mut session = db.query().session();

        let unbound = db.query().range(q).collect().expect("ok");
        assert_eq!(session.count(&q), unbound.stats);

        session.set_population(Some("axons")).expect("known");
        session.set_limit(Some(5));
        let want = db.query().range(q).in_population("axons").limit(5).collect().expect("ok");
        {
            let (hits, stats) = session.range(&q);
            assert_eq!(stats, want.stats);
            assert!(hits.iter().map(|s| s.id).eq(want.segments.iter().map(|s| s.id)));
        }

        // Unknown names error and leave the previous binding in place.
        assert!(session.set_population(Some("soma")).is_err());
        assert_eq!(session.range(&q).1, want.stats);

        // Clearing restores the unbound behaviour; a filter rebinds too.
        session.set_population(None).expect("clear");
        session.set_limit(None);
        let pred = |s: &NeuronSegment| s.neuron < 3;
        session.set_filter(Some(&pred));
        let filtered = db.query().range(q).filter(&pred).collect().expect("ok");
        assert_eq!(session.count(&q), filtered.stats);
        session.set_filter(None);
        assert_eq!(session.count(&q), unbound.stats);
    }

    #[test]
    fn in_population_restricts_membership() {
        let (db, c) = db();
        let q = Aabb::cube(c.bounds().center(), 60.0);
        let axons = db.query().range(q).in_population("axons").collect().expect("known");
        assert!(!axons.is_empty());
        assert!(axons.segments.iter().all(|s| s.neuron % 2 == 0));
        assert!(matches!(
            db.query().range(q).in_population("soma").collect(),
            Err(NeuroError::UnknownPopulation { .. })
        ));
    }

    #[test]
    fn knn_collect_matches_legacy_and_filters() {
        let (db, c) = db();
        let p = c.segments()[3].geom.center();
        let (legacy, legacy_stats) = db.index().knn(p, 7);
        let (built, stats) = db.query().knn(p, 7).collect().expect("ok");
        assert_eq!(stats, legacy_stats);
        assert!(built.iter().map(|n| n.segment.id).eq(legacy.iter().map(|n| n.segment.id)));

        let (dendrites, _) =
            db.query().knn(p, 5).in_population("dendrites").collect().expect("known");
        assert_eq!(dendrites.len(), 5);
        assert!(dendrites.iter().all(|n| n.segment.neuron % 2 == 1));
        // Exactness: the filtered answer is the brute-force k among matches.
        let mut want: Vec<(f64, u64)> = c
            .segments()
            .iter()
            .filter(|s| s.neuron % 2 == 1)
            .map(|s| (s.aabb().min_distance_to_point(p), s.id))
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for (n, (d, id)) in dendrites.iter().zip(&want) {
            assert_eq!(n.segment.id, *id);
            assert!((n.distance - d).abs() < 1e-12);
        }
    }

    #[test]
    fn touching_matches_join_between() {
        let (db, _) = db();
        let via_builder =
            db.query().touching("dendrites", 2.0).in_population("axons").collect().expect("ok");
        let legacy = db.join_between("axons", "dendrites", 2.0).expect("ok");
        assert_eq!(via_builder.sorted_pairs(), legacy.sorted_pairs());
        // Filtered left side: pair indices still address the unfiltered slice.
        let pred = |s: &NeuronSegment| s.neuron < 4;
        let filtered = db
            .query()
            .touching("dendrites", 2.0)
            .in_population("axons")
            .filter(&pred)
            .collect()
            .expect("ok");
        let axons = db.population("axons").expect("known");
        assert!(filtered.pairs.iter().all(|&(i, _)| pred(&axons[i as usize])));
        let want: Vec<(u32, u32)> =
            legacy.pairs.iter().copied().filter(|&(i, _)| pred(&axons[i as usize])).collect();
        assert_eq!(filtered.sorted_pairs(), {
            let mut w = want;
            w.sort_unstable();
            w
        });
        // Limit caps the pair count.
        let capped = db.query().touching("dendrites", 2.0).limit(2).collect().expect("ok");
        assert!(capped.pairs.len() <= 2);
        assert_eq!(capped.stats.results as usize, capped.pairs.len());
    }

    #[test]
    fn along_path_runs_and_errors_on_tree_backends() {
        let (db, c) = db();
        let path = db.navigation_path(&c, 3, 20.0, 8.0).expect("path");
        let stats =
            db.query().along_path(&path).method(WalkthroughMethod::Scout).run().expect("flat");
        assert_eq!(stats.steps.len(), path.queries.len());
        let plan = db.query().along_path(&path).explain();
        assert_eq!(plan.operation, "walkthrough");
        assert!(plan.estimated_reads > 0);

        let tree =
            NeuroDb::builder().circuit(&c).backend(IndexBackend::StrPacked).build().expect("valid");
        assert!(matches!(
            tree.query().along_path(&path).run(),
            Err(NeuroError::WalkthroughUnsupported { .. })
        ));
    }

    #[test]
    fn session_reuses_buffers_and_matches_collect() {
        let (db, c) = db();
        let pred = |s: &NeuronSegment| s.neuron.is_multiple_of(2);
        let mut session = db.query().range(Aabb::EMPTY).filter(&pred).session().expect("ok");
        for half in [10.0, 25.0, 40.0] {
            let q = Aabb::cube(c.bounds().center(), half);
            let want = db.query().range(q).filter(&pred).collect().expect("ok");
            let (hits, stats) = session.range(&q);
            assert_eq!(stats, want.stats, "half={half}");
            assert!(hits.iter().map(|s| s.id).eq(want.segments.iter().map(|s| s.id)));
        }
        let p = c.segments()[0].geom.center();
        let (neighbors, _) = session.knn(p, 4);
        assert_eq!(neighbors.len(), 4);
        assert!(neighbors.iter().all(|n| n.segment.neuron % 2 == 0));
    }

    #[test]
    fn session_scout_binding_accumulates_prefetch_stats() {
        let (db, c) = db();
        let mut session =
            db.query().session().with_prefetch(WalkthroughMethod::Scout).expect("flat backend");
        assert_eq!(session.prefetch_stats().expect("bound").steps.len(), 0);
        for i in 0..4 {
            let q = Aabb::cube(c.segments()[i * 9].geom.center(), 18.0);
            let _ = session.range(&q);
        }
        let stats = session.prefetch_stats().expect("bound");
        assert_eq!(stats.steps.len(), 4);
        assert!(stats.total_demand_hits + stats.total_demand_misses > 0);
        // Non-paged backends refuse the binding.
        let tree =
            NeuroDb::builder().circuit(&c).backend(IndexBackend::RPlus).build().expect("valid");
        assert!(matches!(
            tree.query()
                .range(Aabb::EMPTY)
                .session()
                .expect("ok")
                .with_prefetch(WalkthroughMethod::Scout),
            Err(NeuroError::WalkthroughUnsupported { .. })
        ));
    }

    #[test]
    fn explain_reports_backend_pruning_and_pushdown() {
        let c = CircuitBuilder::new(4).neurons(8).build();
        let sharded = NeuroDb::builder()
            .circuit(&c)
            .backend(IndexBackend::StrPacked)
            .shards(5)
            .build()
            .expect("valid");
        // A query far outside the data prunes every shard.
        let far = sharded.query().range(Aabb::cube(Vec3::splat(1e7), 1.0)).explain();
        assert_eq!(far.shards_total, 5);
        assert_eq!(far.shards_probed, 0);
        assert_eq!(far.estimated_reads, 0);
        // A local query touches fewer shards than the whole dataset does.
        let local = sharded.query().range(Aabb::cube(c.segments()[0].geom.center(), 5.0)).explain();
        let global = sharded.query().range(c.bounds()).explain();
        assert!(local.shards_probed >= 1);
        assert!(local.shards_probed <= global.shards_probed);
        assert_eq!(global.shards_probed, 5);

        let pred = |s: &NeuronSegment| s.neuron == 0;
        let plan = sharded.query().range(c.bounds()).filter(&pred).limit(10).explain();
        assert!(plan.pushdown_filter);
        assert_eq!(plan.pushdown_limit, Some(10));
        assert_eq!(plan.backend, IndexBackend::StrPacked);
        let text = plan.to_string();
        assert!(text.contains("range via str-packed"), "{text}");
        assert!(text.contains("filter pushed down"), "{text}");

        // FLAT plans count real pages.
        let flat = NeuroDb::from_circuit(&c);
        let fp = flat.query().range(c.bounds()).explain();
        let pages = flat.flat_index().expect("flat").page_count() as u64;
        assert!(fp.estimated_reads >= pages, "{} >= {pages}", fp.estimated_reads);
        // KNN plans describe the first expanding cube.
        let kp = flat.query().knn(c.bounds().center(), 3).explain();
        assert_eq!(kp.operation, "knn");
    }
}
