//! The pluggable spatial-index backend API.
//!
//! The demo paper's first act is a *race* between storage designs: FLAT
//! against R-Tree variants on the same range queries (§2). This module
//! turns that race into an API: every backend implements [`SpatialIndex`]
//! with one result type ([`QueryOutput`]) and one statistics type
//! ([`QueryStats`]), and callers select backends by value
//! ([`IndexBackend`]) or by name (via [`FromStr`] or a
//! [`BackendRegistry`], which also accepts custom factories).
//!
//! ```
//! use neurospatial::prelude::*;
//!
//! let circuit = CircuitBuilder::new(1).neurons(4).build();
//! let params = IndexParams::default();
//! for backend in IndexBackend::ALL {
//!     let index = backend.build(circuit.segments().to_vec(), &params);
//!     let out = index.range_query(&Aabb::cube(circuit.bounds().center(), 20.0));
//!     assert_eq!(out.stats.results as usize, out.segments.len());
//! }
//! ```

use crate::error::NeuroError;
use crate::shard::ShardedIndex;
use neurospatial_flat::{FlatBuildParams, FlatIndex, FlatQueryStats, FlatScratch};
use neurospatial_geom::{Aabb, Flow, Vec3};
use neurospatial_model::NeuronSegment;
use neurospatial_rtree::{RPlusTree, RTree, RTreeParams, TraversalCounters, TraversalScratch};
use std::any::Any;
use std::fmt;
use std::str::FromStr;

/// Reusable per-query state for the allocation-free `*_scratch` query
/// paths: create one per worker thread, reuse it across an entire batch.
/// After the first few queries have grown the buffers, steady-state
/// queries perform **zero** heap allocations (measured by
/// `experiments --scenario=hotpath`).
///
/// Fields are public so custom [`SpatialIndex`] implementations can
/// reuse the same buffers in their own
/// [`range_query_into_scratch`](SpatialIndex::range_query_into_scratch)
/// overrides.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// R-Tree-family traversal state (visit stack, best-first candidate
    /// buffer, epoch-stamped de-duplication marks).
    pub tree: TraversalScratch,
    /// FLAT seed-and-crawl state (crawl front, visited-page marks, seed
    /// tree scratch).
    pub flat: FlatScratch,
    /// Out-of-core FLAT state (crawl front, visited marks, page-decode
    /// buffer) for the paged backend.
    pub paged: neurospatial_scout::OocScratch,
    /// KNN: hit buffer reused across expanding-cube iterations.
    pub knn_hits: Vec<NeuronSegment>,
    /// KNN: candidate neighbours awaiting the canonical sort.
    pub knn_candidates: Vec<Neighbor>,
    /// KNN: sharded executors' cross-shard merge buffer.
    pub knn_merge: Vec<Neighbor>,
}

impl QueryScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

impl From<TraversalCounters> for QueryStats {
    /// Lift the R-Tree family's flat scratch counters into the unified
    /// schema — same mapping as the allocating
    /// [`neurospatial_rtree::QueryStats`] conversion.
    fn from(c: TraversalCounters) -> Self {
        QueryStats {
            results: c.results,
            nodes_read: c.nodes_visited,
            objects_tested: c.leaf_entries_tested,
            ..QueryStats::default()
        }
    }
}

/// Backend-independent build parameters.
///
/// Each backend maps `page_capacity` onto its own granularity knob: FLAT
/// page size, R-Tree node fan-out, R+-Tree leaf capacity — the quantity
/// the paper's experiments vary to equalise "objects per disk page".
/// Values below a backend's structural minimum (1 for FLAT and the
/// R+-Tree, 4 for the R-Tree fan-out) are clamped, so every build entry
/// point is total; [`crate::NeuroDbBuilder`] additionally validates and
/// reports out-of-range values as [`NeuroError::InvalidConfig`].
///
/// `shards` and `threads` only affect the sharded executor
/// ([`ShardedIndex`], or the registry's `sharded:<backend>` names): the
/// monolithic backends ignore them, so the same parameter block can
/// configure both sides of a sharded-vs-monolithic race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexParams {
    /// Objects per page / node (per shard, when sharded).
    pub page_capacity: usize,
    /// Space partitions for [`ShardedIndex`] (clamped to >= 1; monolithic
    /// backends ignore it).
    pub shards: usize,
    /// Worker threads for sharded query execution (clamped to >= 1;
    /// monolithic backends ignore it).
    pub threads: usize,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams { page_capacity: 64, shards: 1, threads: 1 }
    }
}

impl IndexParams {
    /// Parameters with everything default but the page capacity.
    pub fn with_page_capacity(page_capacity: usize) -> Self {
        IndexParams { page_capacity, ..IndexParams::default() }
    }

    /// Set the shard count (builder-style).
    pub fn sharded(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the query worker-thread count (builder-style).
    pub fn threaded(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Unified per-query statistics, comparable across backends — the demo's
/// "disk pages retrieved" panel, one schema for every index design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Objects returned.
    pub results: u64,
    /// Index pages/nodes read: data pages + seed-tree nodes for FLAT,
    /// tree nodes for the R-Tree family. The cross-backend cost proxy.
    pub nodes_read: u64,
    /// Objects tested against the query region (filter work).
    pub objects_tested: u64,
    /// FLAT only: crawl-front re-seeds (0 for other backends, and almost
    /// always 0 for FLAT on dense data).
    pub reseeds: u64,
    /// Paged (out-of-core) backends only: demand page reads served from
    /// the buffer pool without touching the disk. 0 for in-memory
    /// backends.
    pub cache_hits: u64,
    /// Paged backends only: demand page reads that stalled on the disk.
    /// 0 for in-memory backends.
    pub cache_misses: u64,
    /// Paged backends only: frames evicted from the buffer pool while
    /// this query ran. 0 for in-memory backends.
    pub cache_evictions: u64,
    /// Paged backends only: transient page-read failures recovered by
    /// the bounded-retry path. 0 for in-memory backends and on healthy
    /// media.
    pub retries: u64,
    /// Paged backends only: quarantined pages this query skipped. Always
    /// 0 unless the query ran in partial-results mode
    /// ([`crate::query::RangeQuery::allow_partial`]); a nonzero value
    /// marks the result set as degraded.
    pub pages_quarantined: u64,
}

impl QueryStats {
    /// Filter precision: results per object tested (1.0 = no wasted work).
    pub fn test_precision(&self) -> f64 {
        if self.objects_tested == 0 {
            0.0
        } else {
            self.results as f64 / self.objects_tested as f64
        }
    }

    /// Accumulate another query's statistics into this one (plain field
    /// sums). This is the merge the sharded executor applies to per-shard
    /// statistics, and it is what makes cross-shard costs comparable to a
    /// monolithic run: K shards that together read N nodes report exactly
    /// N nodes read.
    pub fn merge(&mut self, other: &QueryStats) {
        self.results += other.results;
        self.nodes_read += other.nodes_read;
        self.objects_tested += other.objects_tested;
        self.reseeds += other.reseeds;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.retries += other.retries;
        self.pages_quarantined += other.pages_quarantined;
    }

    /// The field-wise sum of an iterator of statistics.
    pub fn merged<'a, I: IntoIterator<Item = &'a QueryStats>>(stats: I) -> QueryStats {
        let mut out = QueryStats::default();
        for s in stats {
            out.merge(s);
        }
        out
    }
}

impl From<&FlatQueryStats> for QueryStats {
    fn from(s: &FlatQueryStats) -> Self {
        QueryStats {
            results: s.results,
            nodes_read: s.pages_read + s.seed_nodes_read,
            objects_tested: s.objects_tested,
            reseeds: s.reseeds,
            ..QueryStats::default()
        }
    }
}

impl From<&neurospatial_rtree::QueryStats> for QueryStats {
    fn from(s: &neurospatial_rtree::QueryStats) -> Self {
        QueryStats {
            results: s.results,
            nodes_read: s.nodes_visited(),
            objects_tested: s.leaf_entries_tested,
            ..QueryStats::default()
        }
    }
}

/// Lightweight planner metadata behind [`crate::query::Plan`]: what an
/// executor *would* touch for a region, without running the query.
/// Produced by [`SpatialIndex::plan_range`]; the sharded executor fills
/// in real shard-pruning counts, FLAT counts the actual pages the region
/// overlaps, and the default is a cheap volume-fraction heuristic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexPlan {
    /// Shards the executor manages (1 for monolithic backends).
    pub shards_total: usize,
    /// Shards whose bounds intersect the region (the rest are pruned
    /// without being touched).
    pub shards_probed: usize,
    /// Estimated index pages/nodes the query would read.
    pub estimated_reads: u64,
}

/// A range query's result set plus its unified statistics.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Matching segments (owned copies; `NeuronSegment` is `Copy`).
    pub segments: Vec<NeuronSegment>,
    pub stats: QueryStats,
}

impl QueryOutput {
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Result ids in ascending order — the canonical form for comparing
    /// backends against each other or against a scan.
    pub fn sorted_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.segments.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids
    }
}

/// One k-nearest-neighbour result: a segment and its distance from the
/// query point (AABB minimum distance, consistently with the rest of the
/// filter/refine pipeline — exact capsule refinement is the caller's
/// concern).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub segment: NeuronSegment,
    pub distance: f64,
}

/// Canonical neighbour order: ascending distance, ties broken by segment
/// id. A total deterministic order makes KNN answers identical across
/// backends and across shard counts, which is what the equivalence suite
/// asserts.
fn neighbor_order(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.distance
        .partial_cmp(&b.distance)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.segment.id.cmp(&b.segment.id))
}

/// Sort candidates canonically, truncate to `k`, and stamp the result
/// count — the shared tail of every KNN path (trait default and sharded
/// merge alike).
pub(crate) fn finish_knn(
    mut candidates: Vec<Neighbor>,
    k: usize,
    stats: &mut QueryStats,
) -> Vec<Neighbor> {
    candidates.sort_by(neighbor_order);
    candidates.truncate(k);
    stats.results = candidates.len() as u64;
    candidates
}

/// A queryable spatial index over neuron segments.
///
/// Implemented by FLAT, the dynamic R-Tree, the R+-Tree, the STR-packed
/// R-Tree and the sharded executor over any of them; every implementation
/// must return exactly the segments a brute-force scan would
/// (property-tested in `tests/backend_equivalence.rs`).
pub trait SpatialIndex: Send + Sync + 'static {
    /// Build the index over `segments`.
    fn build(segments: Vec<NeuronSegment>, params: &IndexParams) -> Self
    where
        Self: Sized;

    /// Downcast escape hatch: the concrete backend behind a
    /// `&dyn SpatialIndex`, reachable generically instead of through
    /// per-backend accessors on the facade. `self` in every
    /// implementation.
    ///
    /// ```
    /// use neurospatial::prelude::*;
    ///
    /// let idx = IndexBackend::RPlus.build(Vec::new(), &IndexParams::default());
    /// assert!(idx.as_any().downcast_ref::<RPlusTree<NeuronSegment>>().is_some());
    /// assert!(idx.as_any().downcast_ref::<FlatIndex<NeuronSegment>>().is_none());
    /// ```
    fn as_any(&self) -> &dyn std::any::Any;

    /// Number of indexed segments.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bounding box of the indexed data (`Aabb::EMPTY` when empty).
    fn bounds(&self) -> Aabb;

    /// All segments intersecting `region`, with unified statistics.
    fn range_query(&self, region: &Aabb) -> QueryOutput;

    /// Append every segment intersecting `region` to `out` and return the
    /// query statistics. Equivalent to [`range_query`](Self::range_query)
    /// but amortises result allocation across calls — the form hot query
    /// loops (benches, servers) should use.
    fn range_query_into(&self, region: &Aabb, out: &mut Vec<NeuronSegment>) -> QueryStats {
        let o = self.range_query(region);
        out.extend_from_slice(&o.segments);
        o.stats
    }

    /// Fully allocation-free range query: results append to `out`, all
    /// per-query working state (visit stacks, crawl queues, visited
    /// bitsets) lives in `scratch`, and the returned statistics are plain
    /// `Copy` data. Results, their order, and statistics are
    /// byte-identical to [`range_query`](Self::range_query)
    /// (property-tested in `tests/hotpath_equivalence.rs`). The default
    /// falls back to the buffered path, so custom backends keep working
    /// unchanged; every built-in backend overrides it.
    fn range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        let _ = scratch;
        self.range_query_into(region, out)
    }

    /// Streaming range query with predicate/limit pushdown — the
    /// execution primitive behind [`crate::query::RangeQuery::stream`]. Every
    /// segment intersecting `region` is offered to `sink` exactly once,
    /// in the same order [`range_query`](Self::range_query) would emit
    /// it; the sink's [`Flow`] verdict decides whether it counts as a
    /// result ([`Flow::Emit`]), is filtered out below the traversal
    /// ([`Flow::Skip`] — not counted in `stats.results`), or ends the
    /// traversal immediately ([`Flow::Last`] — how a pushed-down limit
    /// stops reading index pages it no longer needs). Nothing is
    /// materialized; with an always-`Emit` sink the statistics are
    /// byte-identical to
    /// [`range_query_into_scratch`](Self::range_query_into_scratch).
    ///
    /// The default buffers through the scratch path and replays the
    /// buffer (correct, but no early exit below the traversal); every
    /// built-in backend overrides it with a native streaming traversal.
    fn for_each_in_range(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn FnMut(&NeuronSegment) -> Flow,
    ) -> QueryStats {
        let mut buf = Vec::new();
        let mut stats = self.range_query_into_scratch(region, scratch, &mut buf);
        let mut results = 0u64;
        for s in &buf {
            match sink(s) {
                Flow::Emit => results += 1,
                Flow::Skip => {}
                Flow::Last => {
                    results += 1;
                    break;
                }
            }
        }
        stats.results = results;
        stats
    }

    /// Fallible variant of [`for_each_in_range`](Self::for_each_in_range)
    /// — the lane disk-backed queries run on. In-memory backends cannot
    /// fail mid-traversal, so the default simply delegates and always
    /// succeeds; the paged backend overrides it to surface storage
    /// failures as typed errors and, with `allow_partial`, to skip
    /// quarantined pages and label the result via
    /// `stats.pages_quarantined` instead of failing.
    fn try_for_each_in_range(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        allow_partial: bool,
        sink: &mut dyn FnMut(&NeuronSegment) -> Flow,
    ) -> Result<QueryStats, crate::error::NeuroError> {
        let _ = allow_partial; // meaningless without failure modes
        Ok(self.for_each_in_range(region, scratch, sink))
    }

    /// Planner metadata for a region — what [`crate::query::RangeQuery::explain`]
    /// reports without executing anything. The default is a cheap
    /// volume-fraction heuristic over the data bounds; FLAT counts the
    /// pages the region actually overlaps, and the sharded executor
    /// reports real shard-pruning numbers.
    fn plan_range(&self, region: &Aabb) -> IndexPlan {
        let bounds = self.bounds();
        if self.is_empty() || !bounds.intersects(region) {
            return IndexPlan { shards_total: 1, shards_probed: 0, estimated_reads: 0 };
        }
        let vol = bounds.volume();
        let frac = if vol > 0.0 {
            (region.intersection(&bounds).volume() / vol).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let pages = (self.len() as f64 / 64.0).ceil();
        IndexPlan {
            shards_total: 1,
            shards_probed: 1,
            estimated_reads: (frac * pages).ceil().max(1.0) as u64,
        }
    }

    /// Batched queries — one call, one output per region. Backends can
    /// override this with a plan that shares traversal state (the sharded
    /// executor fans the batch out over its worker pool, one scratch per
    /// worker); the default loops with one reused [`QueryScratch`], so
    /// per-query traversal state is allocated once per batch, not once
    /// per query.
    fn range_query_many(&self, regions: &[Aabb]) -> Vec<QueryOutput> {
        let mut scratch = QueryScratch::default();
        regions
            .iter()
            .map(|r| {
                let mut segments = Vec::new();
                let stats = self.range_query_into_scratch(r, &mut scratch, &mut segments);
                QueryOutput { segments, stats }
            })
            .collect()
    }

    /// The `k` segments nearest to `p` (AABB minimum distance), in
    /// canonical order: ascending distance, ties broken by segment id.
    ///
    /// The default implementation is an exact expanding-cube search built
    /// purely on [`range_query`](Self::range_query): a cube of half-extent
    /// `r` centred on `p` contains every segment whose AABB lies within
    /// Euclidean distance `r` of `p`, so once at least `k` candidates sit
    /// within the Euclidean ball of radius `r` the answer is complete.
    /// The radius starts from a density-scaled guess and doubles until
    /// the ball holds `k` candidates or the cube swallows the dataset.
    /// All backends share this one implementation, which keeps answers
    /// byte-identical across backends and shard counts.
    fn knn(&self, p: Vec3, k: usize) -> (Vec<Neighbor>, QueryStats) {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        let stats = self.knn_into_scratch(p, k, &mut scratch, &mut out);
        (out, stats)
    }

    /// Allocation-free [`knn`](Self::knn): the expanding-cube search's
    /// hit and candidate buffers come from `scratch`, results append to
    /// `out` in the same canonical order. The default implements the
    /// whole algorithm on top of
    /// [`range_query_into_scratch`](Self::range_query_into_scratch), so
    /// overriding the range path is enough to make KNN allocation-free
    /// too.
    fn knn_into_scratch(
        &self,
        p: Vec3,
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Neighbor>,
    ) -> QueryStats {
        let mut stats = QueryStats::default();
        if k == 0 || self.is_empty() {
            return stats;
        }
        let bounds = self.bounds();
        // Upper bound on any AABB distance: the farthest corner of the
        // data bounds (every indexed AABB lies inside the bounds).
        let far = Vec3::new(
            (p.x - bounds.lo.x).abs().max((p.x - bounds.hi.x).abs()),
            (p.y - bounds.lo.y).abs().max((p.y - bounds.hi.y).abs()),
            (p.z - bounds.lo.z).abs().max((p.z - bounds.hi.z).abs()),
        )
        .norm();
        // Initial radius: the distance to the data plus a cube sized to
        // hold ~k objects under a uniform-density estimate.
        let ext = bounds.extent();
        let frac = (k as f64 / self.len() as f64).cbrt().min(1.0);
        let guess = ext.x.max(ext.y).max(ext.z) * frac * 0.5;
        let mut r = (bounds.min_distance_to_point(p) + guess).max(1e-9).min(far.max(1e-9));
        // Take the buffers out of the scratch so the borrow checker sees
        // them as disjoint from the scratch handed to the range queries.
        let mut hits = std::mem::take(&mut scratch.knn_hits);
        let mut candidates = std::mem::take(&mut scratch.knn_candidates);
        loop {
            hits.clear();
            let s = self.range_query_into_scratch(&Aabb::cube(p, r), scratch, &mut hits);
            stats.nodes_read += s.nodes_read;
            stats.objects_tested += s.objects_tested;
            stats.reseeds += s.reseeds;
            candidates.clear();
            candidates.extend(
                hits.iter()
                    .map(|s| Neighbor { segment: *s, distance: s.aabb().min_distance_to_point(p) })
                    .filter(|n| n.distance <= r),
            );
            if candidates.len() >= k || r >= far {
                candidates = finish_knn(candidates, k, &mut stats);
                out.extend_from_slice(&candidates);
                break;
            }
            r = (r * 2.0).min(far);
        }
        scratch.knn_hits = hits;
        scratch.knn_candidates = candidates;
        stats
    }

    /// Approximate resident size in bytes (for the demo's memory panels).
    fn memory_bytes(&self) -> usize;
}

impl SpatialIndex for FlatIndex<NeuronSegment> {
    fn build(segments: Vec<NeuronSegment>, params: &IndexParams) -> Self {
        FlatIndex::build(
            segments,
            FlatBuildParams::default().with_page_capacity(params.page_capacity.max(1)),
        )
    }

    fn len(&self) -> usize {
        FlatIndex::len(self)
    }

    fn bounds(&self) -> Aabb {
        FlatIndex::bounds(self)
    }

    fn range_query(&self, region: &Aabb) -> QueryOutput {
        // Single pass: matches are copied straight into the output vector
        // (no intermediate reference vector), keeping the trait lane at
        // parity with the concrete FLAT query. Seeding capacity with two
        // pages' worth of objects absorbs the growth-doubling re-copies
        // that would otherwise dominate small result sets.
        let mut segments = Vec::with_capacity(self.params().page_capacity * 2);
        let stats = self.range_query_sink(region, |_| {}, |o| segments.push(*o));
        QueryOutput { segments, stats: (&stats).into() }
    }

    fn range_query_into(&self, region: &Aabb, out: &mut Vec<NeuronSegment>) -> QueryStats {
        let stats = self.range_query_sink(region, |_| {}, |o| out.push(*o));
        (&stats).into()
    }

    fn range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        let stats = FlatIndex::range_query_scratch(
            self,
            region,
            &mut scratch.flat,
            |_| {},
            |o| out.push(*o),
        );
        (&stats).into()
    }

    fn for_each_in_range(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn FnMut(&NeuronSegment) -> Flow,
    ) -> QueryStats {
        let stats = FlatIndex::range_query_stream(self, region, &mut scratch.flat, |_| {}, sink);
        (&stats).into()
    }

    fn plan_range(&self, region: &Aabb) -> IndexPlan {
        // FLAT keeps page MBRs as metadata: the plan can count the exact
        // data pages the crawl would read, plus a seed descent.
        let pages = self.pages_intersecting(region).len() as u64;
        IndexPlan {
            shards_total: 1,
            shards_probed: usize::from(pages > 0),
            estimated_reads: if pages == 0 { 0 } else { pages + self.seed_tree_height() as u64 },
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn memory_bytes(&self) -> usize {
        FlatIndex::memory_bytes(self)
    }
}

/// STR-packed (bulk-loaded) R-Tree backend.
impl SpatialIndex for RTree<NeuronSegment> {
    fn build(segments: Vec<NeuronSegment>, params: &IndexParams) -> Self {
        let mut tree =
            RTree::bulk_load(segments, RTreeParams::with_max_entries(params.page_capacity.max(4)));
        // This tree serves scratch queries: freeze the SoA lanes.
        tree.freeze();
        tree
    }

    fn len(&self) -> usize {
        RTree::len(self)
    }

    fn bounds(&self) -> Aabb {
        self.root_mbr()
    }

    fn range_query(&self, region: &Aabb) -> QueryOutput {
        let (hits, stats) = RTree::range_query(self, region);
        QueryOutput { segments: hits.into_iter().copied().collect(), stats: (&stats).into() }
    }

    fn range_query_into(&self, region: &Aabb, out: &mut Vec<NeuronSegment>) -> QueryStats {
        let (hits, stats) = RTree::range_query(self, region);
        out.extend(hits.into_iter().copied());
        (&stats).into()
    }

    fn range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        RTree::range_query_scratch(self, region, &mut scratch.tree, |o| out.push(*o)).into()
    }

    fn for_each_in_range(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn FnMut(&NeuronSegment) -> Flow,
    ) -> QueryStats {
        RTree::range_query_stream(self, region, &mut scratch.tree, sink).into()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn memory_bytes(&self) -> usize {
        RTree::memory_bytes(self)
    }
}

/// The dynamically grown R-Tree: same structure as the STR-packed tree
/// but built by one-at-a-time insertion, which is what degrades its leaf
/// overlap on dense data (§2.2 of the paper).
pub struct DynamicRTree(pub RTree<NeuronSegment>);

impl SpatialIndex for DynamicRTree {
    fn build(segments: Vec<NeuronSegment>, params: &IndexParams) -> Self {
        let mut tree = RTree::new(RTreeParams::with_max_entries(params.page_capacity.max(4)));
        for s in segments {
            tree.insert(s);
        }
        // Build complete: freeze the SoA traversal layout so scratch
        // queries scan contiguous MBR lanes. The *structure* stays the
        // insertion-grown one — freezing changes the memory layout, not
        // the tree, so the paper's overlap-degradation story is intact.
        tree.freeze();
        DynamicRTree(tree)
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn bounds(&self) -> Aabb {
        self.0.root_mbr()
    }

    fn range_query(&self, region: &Aabb) -> QueryOutput {
        let (hits, stats) = self.0.range_query(region);
        QueryOutput { segments: hits.into_iter().copied().collect(), stats: (&stats).into() }
    }

    fn range_query_into(&self, region: &Aabb, out: &mut Vec<NeuronSegment>) -> QueryStats {
        let (hits, stats) = self.0.range_query(region);
        out.extend(hits.into_iter().copied());
        (&stats).into()
    }

    fn range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        self.0.range_query_scratch(region, &mut scratch.tree, |o| out.push(*o)).into()
    }

    fn for_each_in_range(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn FnMut(&NeuronSegment) -> Flow,
    ) -> QueryStats {
        self.0.range_query_stream(region, &mut scratch.tree, sink).into()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

impl SpatialIndex for RPlusTree<NeuronSegment> {
    fn build(segments: Vec<NeuronSegment>, params: &IndexParams) -> Self {
        RPlusTree::build(segments, params.page_capacity.max(1))
    }

    fn len(&self) -> usize {
        RPlusTree::len(self)
    }

    fn bounds(&self) -> Aabb {
        RPlusTree::bounds(self)
    }

    fn range_query(&self, region: &Aabb) -> QueryOutput {
        let (hits, stats) = RPlusTree::range_query(self, region);
        QueryOutput { segments: hits.into_iter().copied().collect(), stats: (&stats).into() }
    }

    fn range_query_into(&self, region: &Aabb, out: &mut Vec<NeuronSegment>) -> QueryStats {
        let (hits, stats) = RPlusTree::range_query(self, region);
        out.extend(hits.into_iter().copied());
        (&stats).into()
    }

    fn range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        RPlusTree::range_query_scratch(self, region, &mut scratch.tree, |o| out.push(*o)).into()
    }

    fn for_each_in_range(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn FnMut(&NeuronSegment) -> Flow,
    ) -> QueryStats {
        RPlusTree::range_query_stream(self, region, &mut scratch.tree, sink).into()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn memory_bytes(&self) -> usize {
        // Arena nodes are private; approximate with the object store plus
        // one u32 per stored (possibly replicated) leaf entry.
        self.len() * std::mem::size_of::<NeuronSegment>() + self.stored_entries() as usize * 4
    }
}

/// The built-in index backends, selectable by value or by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexBackend {
    /// FLAT seed-and-crawl (density-independent; the paper's design).
    Flat,
    /// Dynamically grown R-Tree (insertion splits; degrades with density).
    RTree,
    /// R+-Tree (overlap-free, replicates entries).
    RPlus,
    /// STR bulk-loaded R-Tree (tight static packing).
    StrPacked,
}

impl IndexBackend {
    /// All built-in backends, in the order the experiment tables report.
    pub const ALL: [IndexBackend; 4] =
        [IndexBackend::Flat, IndexBackend::RTree, IndexBackend::RPlus, IndexBackend::StrPacked];

    /// Canonical name (the one [`fmt::Display`] prints and
    /// [`FromStr`] round-trips).
    pub fn name(&self) -> &'static str {
        match self {
            IndexBackend::Flat => "flat",
            IndexBackend::RTree => "rtree",
            IndexBackend::RPlus => "rplus",
            IndexBackend::StrPacked => "str-packed",
        }
    }

    /// Build a boxed index of this backend over `segments`.
    pub fn build(
        &self,
        segments: Vec<NeuronSegment>,
        params: &IndexParams,
    ) -> Box<dyn SpatialIndex> {
        match self {
            IndexBackend::Flat => {
                Box::new(<FlatIndex<NeuronSegment> as SpatialIndex>::build(segments, params))
            }
            IndexBackend::RTree => Box::new(DynamicRTree::build(segments, params)),
            IndexBackend::RPlus => {
                Box::new(<RPlusTree<NeuronSegment> as SpatialIndex>::build(segments, params))
            }
            IndexBackend::StrPacked => {
                Box::new(<RTree<NeuronSegment> as SpatialIndex>::build(segments, params))
            }
        }
    }

    /// Build a boxed **sharded** executor over this backend:
    /// `params.shards` Hilbert-ordered space partitions, each holding one
    /// monolithic index of this backend, queried with `params.threads`
    /// workers. Registered in [`BackendRegistry::with_builtins`] under
    /// `sharded:<name>`.
    pub fn build_sharded(
        &self,
        segments: Vec<NeuronSegment>,
        params: &IndexParams,
    ) -> Box<dyn SpatialIndex> {
        match self {
            IndexBackend::Flat => Box::new(
                <ShardedIndex<FlatIndex<NeuronSegment>> as SpatialIndex>::build(segments, params),
            ),
            IndexBackend::RTree => {
                Box::new(<ShardedIndex<DynamicRTree> as SpatialIndex>::build(segments, params))
            }
            IndexBackend::RPlus => Box::new(
                <ShardedIndex<RPlusTree<NeuronSegment>> as SpatialIndex>::build(segments, params),
            ),
            IndexBackend::StrPacked => Box::new(
                <ShardedIndex<RTree<NeuronSegment>> as SpatialIndex>::build(segments, params),
            ),
        }
    }

    /// The registry name of the sharded executor over this backend.
    pub fn sharded_name(&self) -> String {
        format!("sharded:{}", self.name())
    }
}

impl fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for IndexBackend {
    type Err = NeuroError;

    /// Case-insensitive; accepts the canonical names plus common aliases
    /// (`r-tree`, `dynamic`, `r+`, `rplustree`, `str`, `packed`).
    fn from_str(s: &str) -> Result<Self, NeuroError> {
        match s.to_ascii_lowercase().replace(['_', ' '], "-").as_str() {
            "flat" => Ok(IndexBackend::Flat),
            "rtree" | "r-tree" | "dynamic" | "dynamic-rtree" => Ok(IndexBackend::RTree),
            "rplus" | "r+" | "r-plus" | "rplustree" | "r+-tree" => Ok(IndexBackend::RPlus),
            "str-packed" | "str" | "packed" | "strpacked" => Ok(IndexBackend::StrPacked),
            _ => Err(NeuroError::UnknownBackend {
                given: s.to_string(),
                known: IndexBackend::ALL.iter().map(|b| b.name().to_string()).collect(),
            }),
        }
    }
}

/// Factory signature for registry entries.
pub type BackendFactory = fn(Vec<NeuronSegment>, &IndexParams) -> Box<dyn SpatialIndex>;

/// A name → factory table: the built-in backends plus anything callers
/// register (an experimental index, an instrumented wrapper, …).
///
/// ```
/// use neurospatial::prelude::*;
///
/// let mut registry = BackendRegistry::with_builtins();
/// registry.register("my-flat", |segs, p| IndexBackend::Flat.build(segs, p));
/// let idx = registry.build("my-flat", Vec::new(), &IndexParams::default()).unwrap();
/// assert!(idx.is_empty());
/// ```
pub struct BackendRegistry {
    entries: Vec<(String, BackendFactory)>,
}

impl BackendRegistry {
    /// A registry containing the four built-in backends under their
    /// canonical names, plus a sharded executor for each of them under
    /// `sharded:<name>` (shard and thread counts come from the
    /// [`IndexParams`] passed at build time).
    pub fn with_builtins() -> Self {
        let mut r = BackendRegistry { entries: Vec::new() };
        for b in IndexBackend::ALL {
            // `IndexBackend::build` needs the variant; capture it by
            // monomorphising through a small fn per variant.
            let factory: BackendFactory = match b {
                IndexBackend::Flat => |s, p| IndexBackend::Flat.build(s, p),
                IndexBackend::RTree => |s, p| IndexBackend::RTree.build(s, p),
                IndexBackend::RPlus => |s, p| IndexBackend::RPlus.build(s, p),
                IndexBackend::StrPacked => |s, p| IndexBackend::StrPacked.build(s, p),
            };
            r.entries.push((b.name().to_string(), factory));
        }
        for b in IndexBackend::ALL {
            // Selecting a `sharded:` name is an explicit request for
            // sharding, so (exactly like `NeuroDbBuilder::backend_named`)
            // a default/unset shard count is raised to the smallest
            // genuinely sharded layout instead of silently building a
            // 1-shard wrapper.
            let factory: BackendFactory = match b {
                IndexBackend::Flat => {
                    |s, p| IndexBackend::Flat.build_sharded(s, &p.sharded(p.shards.max(2)))
                }
                IndexBackend::RTree => {
                    |s, p| IndexBackend::RTree.build_sharded(s, &p.sharded(p.shards.max(2)))
                }
                IndexBackend::RPlus => {
                    |s, p| IndexBackend::RPlus.build_sharded(s, &p.sharded(p.shards.max(2)))
                }
                IndexBackend::StrPacked => {
                    |s, p| IndexBackend::StrPacked.build_sharded(s, &p.sharded(p.shards.max(2)))
                }
            };
            r.entries.push((b.sharded_name(), factory));
        }
        r
    }

    /// Register (or replace) a backend under `name`.
    pub fn register<S: Into<String>>(&mut self, name: S, factory: BackendFactory) {
        let name = name.into();
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 = factory;
        } else {
            self.entries.push((name, factory));
        }
    }

    /// Registered names, registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Build the backend registered under `name`.
    pub fn build(
        &self,
        name: &str,
        segments: Vec<NeuronSegment>,
        params: &IndexParams,
    ) -> Result<Box<dyn SpatialIndex>, NeuroError> {
        match self.entries.iter().find(|(n, _)| n == name) {
            Some((_, factory)) => Ok(factory(segments, params)),
            None => Err(NeuroError::UnknownBackend {
                given: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            }),
        }
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_model::CircuitBuilder;

    #[test]
    fn backend_names_round_trip() {
        for b in IndexBackend::ALL {
            assert_eq!(b.name().parse::<IndexBackend>().expect("round trip"), b);
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!("R-Tree".parse::<IndexBackend>().unwrap(), IndexBackend::RTree);
        assert_eq!("STR".parse::<IndexBackend>().unwrap(), IndexBackend::StrPacked);
        assert!(matches!("btree".parse::<IndexBackend>(), Err(NeuroError::UnknownBackend { .. })));
    }

    #[test]
    fn all_backends_agree_with_scan() {
        let c = CircuitBuilder::new(5).neurons(6).build();
        let q = Aabb::cube(c.bounds().center(), 30.0);
        let want: Vec<u64> = {
            let mut ids: Vec<u64> =
                c.segments().iter().filter(|s| s.aabb().intersects(&q)).map(|s| s.id).collect();
            ids.sort_unstable();
            ids
        };
        for b in IndexBackend::ALL {
            let idx = b.build(c.segments().to_vec(), &IndexParams::default());
            assert_eq!(idx.len(), c.segments().len(), "{b}");
            let out = idx.range_query(&q);
            assert_eq!(out.sorted_ids(), want, "{b} disagrees with scan");
            assert_eq!(out.stats.results as usize, out.len(), "{b} stats");
            assert!(idx.bounds().contains(&q.intersection(&idx.bounds())), "{b} bounds");
        }
    }

    #[test]
    fn batched_queries_match_single_queries() {
        let c = CircuitBuilder::new(9).neurons(4).build();
        let idx = IndexBackend::Flat.build(c.segments().to_vec(), &IndexParams::default());
        let regions: Vec<Aabb> = (0..5)
            .map(|i| Aabb::cube(c.segments()[i * 7].geom.center(), 10.0 + i as f64))
            .collect();
        let batch = idx.range_query_many(&regions);
        assert_eq!(batch.len(), regions.len());
        for (out, r) in batch.iter().zip(&regions) {
            assert_eq!(out.sorted_ids(), idx.range_query(r).sorted_ids());
        }
    }

    #[test]
    fn registry_builds_by_name_and_rejects_unknowns() {
        let registry = BackendRegistry::with_builtins();
        // Four monolithic backends plus their four sharded executors.
        assert_eq!(registry.names().len(), 8);
        let idx =
            registry.build("flat", Vec::new(), &IndexParams::default()).expect("flat registered");
        assert!(idx.is_empty());
        assert!(registry.build("nope", Vec::new(), &IndexParams::default()).is_err());
    }

    #[test]
    fn registry_sharded_names_agree_with_monolithic() {
        let registry = BackendRegistry::with_builtins();
        let c = CircuitBuilder::new(11).neurons(5).build();
        let q = Aabb::cube(c.bounds().center(), 25.0);
        let params = IndexParams::with_page_capacity(32).sharded(3).threaded(2);
        for b in IndexBackend::ALL {
            let mono = registry.build(b.name(), c.segments().to_vec(), &params).expect("builtin");
            let sharded = registry
                .build(&b.sharded_name(), c.segments().to_vec(), &params)
                .expect("sharded builtin");
            assert_eq!(sharded.len(), mono.len(), "{b}");
            assert_eq!(sharded.range_query(&q).sorted_ids(), mono.range_query(&q).sorted_ids());
        }
    }

    #[test]
    fn knn_default_matches_brute_force_on_every_backend() {
        let c = CircuitBuilder::new(4).neurons(6).build();
        let segments = c.segments().to_vec();
        for b in IndexBackend::ALL {
            let idx = b.build(segments.clone(), &IndexParams::default());
            for (p, k) in [
                (c.bounds().center(), 5usize),
                (c.bounds().lo, 1),
                (c.bounds().hi + Vec3::splat(100.0), 12), // outside the data
                (segments[3].geom.center(), 3),
            ] {
                let (got, stats) = idx.knn(p, k);
                assert_eq!(got.len(), k.min(segments.len()), "{b} k={k}");
                assert_eq!(stats.results as usize, got.len(), "{b} stats");
                // Distances ascend; ties ascend by id.
                for w in got.windows(2) {
                    assert!(
                        (w[0].distance, w[0].segment.id) < (w[1].distance, w[1].segment.id),
                        "{b} canonical order"
                    );
                }
                // The k-th reported distance matches the brute-force k-th.
                let mut want: Vec<f64> =
                    segments.iter().map(|s| s.aabb().min_distance_to_point(p)).collect();
                want.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.distance - w).abs() < 1e-9, "{b} distance mismatch at k={k}");
                }
            }
        }
    }

    #[test]
    fn knn_edge_cases() {
        let c = CircuitBuilder::new(4).neurons(2).build();
        let idx = IndexBackend::Flat.build(c.segments().to_vec(), &IndexParams::default());
        assert!(idx.knn(Vec3::ZERO, 0).0.is_empty());
        let (all, _) = idx.knn(Vec3::ZERO, c.segments().len() + 10);
        assert_eq!(all.len(), c.segments().len(), "k > n returns everything");
        let empty = IndexBackend::Flat.build(Vec::new(), &IndexParams::default());
        assert!(empty.knn(Vec3::ZERO, 3).0.is_empty());
    }
}
