//! The delta buffer — the mutable tier in front of a frozen index.
//!
//! Live ingest never mutates an index in place. Acknowledged writes land
//! in a [`DeltaBuffer`]: a small grid-bucketed overlay that queries merge
//! with the frozen *base* generation (delta inserts are a second emitter,
//! removals mask base hits). When the buffer crosses the refreeze
//! threshold, a background pass rebuilds base + delta into a fresh index
//! and swaps it in atomically; the buffer then starts empty again.
//!
//! The module also owns the WAL wire format for write operations
//! ([`WriteOp`] ⇄ bytes) and for checkpoint snapshots, so the storage
//! crate stays payload-agnostic: a WAL record is opaque bytes down there
//! and a typed op up here.
//!
//! Determinism contract: [`apply_ops`] is the *single* definition of
//! what a sequence of ops does to a segment list. Refreeze, crash
//! recovery and the chaos tests' from-scratch reference all run through
//! it, so "post-recovery state equals a rebuild of the acknowledged
//! prefix" is checkable byte for byte.

#![warn(missing_docs)]

use crate::error::NeuroError;
use neurospatial_geom::Aabb;
use neurospatial_model::NeuronSegment;
use neurospatial_storage::StorageError;
use std::collections::{HashMap, HashSet};

/// Serialized size of one [`NeuronSegment`] in WAL payloads — identical
/// to the wire protocol's segment frame (id, neuron, section,
/// index-on-section, two endpoints, radius; all little-endian).
pub const SEGMENT_BYTES: usize = 8 + 4 + 4 + 4 + 24 + 24 + 8;

/// WAL payload tag for an insert op.
const OP_INSERT: u8 = 1;
/// WAL payload tag for a remove op.
const OP_REMOVE: u8 = 2;

/// One logical write against a live database.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Add a segment (its `id` must be new).
    Insert(NeuronSegment),
    /// Remove the segment with this id (must currently exist).
    Remove(u64),
}

impl WriteOp {
    /// The id this op targets.
    pub fn id(&self) -> u64 {
        match self {
            WriteOp::Insert(s) => s.id,
            WriteOp::Remove(id) => *id,
        }
    }
}

fn put_segment(out: &mut Vec<u8>, s: &NeuronSegment) {
    out.extend_from_slice(&s.id.to_le_bytes());
    out.extend_from_slice(&s.neuron.to_le_bytes());
    out.extend_from_slice(&s.section.to_le_bytes());
    out.extend_from_slice(&s.index_on_section.to_le_bytes());
    for v in [s.geom.p0, s.geom.p1] {
        out.extend_from_slice(&v.x.to_le_bytes());
        out.extend_from_slice(&v.y.to_le_bytes());
        out.extend_from_slice(&v.z.to_le_bytes());
    }
    out.extend_from_slice(&s.geom.radius.to_le_bytes());
}

fn corrupt(what: &str) -> NeuroError {
    NeuroError::Storage(StorageError::Corrupt(format!("WAL payload: {what}")))
}

fn read_segment(bytes: &[u8]) -> Result<NeuronSegment, NeuroError> {
    if bytes.len() < SEGMENT_BYTES {
        return Err(corrupt("segment truncated"));
    }
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    let f64_at = |o: usize| f64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
    let vec3_at = |o: usize| neurospatial_geom::Vec3::new(f64_at(o), f64_at(o + 8), f64_at(o + 16));
    Ok(NeuronSegment {
        id: u64_at(0),
        neuron: u32_at(8),
        section: u32_at(12),
        index_on_section: u32_at(16),
        geom: neurospatial_geom::Segment::new(vec3_at(20), vec3_at(44), f64_at(68)),
    })
}

/// Encode one op as a WAL `DATA` payload.
pub fn encode_op(op: &WriteOp) -> Vec<u8> {
    match op {
        WriteOp::Insert(s) => {
            let mut out = Vec::with_capacity(1 + SEGMENT_BYTES);
            out.push(OP_INSERT);
            put_segment(&mut out, s);
            out
        }
        WriteOp::Remove(id) => {
            let mut out = Vec::with_capacity(9);
            out.push(OP_REMOVE);
            out.extend_from_slice(&id.to_le_bytes());
            out
        }
    }
}

/// Decode a WAL `DATA` payload back into the op it was encoded from.
pub fn decode_op(bytes: &[u8]) -> Result<WriteOp, NeuroError> {
    match bytes.first() {
        Some(&OP_INSERT) => {
            if bytes.len() != 1 + SEGMENT_BYTES {
                return Err(corrupt("insert op has wrong length"));
            }
            Ok(WriteOp::Insert(read_segment(&bytes[1..])?))
        }
        Some(&OP_REMOVE) => {
            if bytes.len() != 9 {
                return Err(corrupt("remove op has wrong length"));
            }
            Ok(WriteOp::Remove(u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"))))
        }
        Some(tag) => Err(corrupt(&format!("unknown op tag {tag}"))),
        None => Err(corrupt("empty op")),
    }
}

/// Encode a full segment list as a WAL checkpoint snapshot.
pub fn encode_snapshot(segments: &[NeuronSegment]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + segments.len() * SEGMENT_BYTES);
    out.extend_from_slice(&(segments.len() as u64).to_le_bytes());
    for s in segments {
        put_segment(&mut out, s);
    }
    out
}

/// Decode a checkpoint snapshot back into its segment list.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<NeuronSegment>, NeuroError> {
    if bytes.len() < 8 {
        return Err(corrupt("snapshot shorter than its count"));
    }
    let count = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
    if bytes.len() != 8 + count * SEGMENT_BYTES {
        return Err(corrupt("snapshot length does not match its count"));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(read_segment(&bytes[8 + i * SEGMENT_BYTES..])?);
    }
    Ok(out)
}

/// Fold a sequence of ops into a segment list — the canonical replay
/// semantics shared by refreeze, crash recovery and the chaos tests'
/// reference rebuild. Inserts append; removes are order-preserving
/// filters, so two paths applying the same ops produce byte-identical
/// lists.
pub fn apply_ops(segments: &mut Vec<NeuronSegment>, ops: &[WriteOp]) {
    for op in ops {
        match op {
            WriteOp::Insert(s) => segments.push(*s),
            WriteOp::Remove(id) => segments.retain(|s| s.id != *id),
        }
    }
}

/// One acknowledged insert parked in the delta until the next refreeze.
/// `entries` is append-only, so its order *is* acknowledgement order.
#[derive(Debug, Clone)]
struct DeltaEntry {
    /// The inserted segment.
    seg: NeuronSegment,
    /// Set when a later remove cancelled this insert.
    dead: bool,
}

/// The mutable overlay in front of a frozen base generation.
///
/// Holds acknowledged inserts (grid-bucketed by AABB centre so range
/// queries probe only nearby cells) and a removal mask over base ids.
/// Cleared wholesale when a refreeze folds it into the next frozen
/// generation.
#[derive(Debug)]
pub struct DeltaBuffer {
    /// Grid cell edge length for bucketing insert AABB centres.
    cell: f64,
    /// Every op applied since the last refreeze, in ack order — the
    /// refreeze replays exactly this list over the base segments.
    ops: Vec<WriteOp>,
    /// Live + dead insert entries, in ack order.
    entries: Vec<DeltaEntry>,
    /// id → index into `entries` for the live insert with that id.
    by_id: HashMap<u64, usize>,
    /// Ids removed since the last refreeze (masks base hits).
    removed: HashSet<u64>,
    /// Grid cell → indices into `entries`.
    grid: HashMap<(i64, i64, i64), Vec<usize>>,
    /// Largest half-extent of any buffered insert's AABB — the query
    /// expansion needed so centre-bucketing never misses an overlap.
    max_half_extent: f64,
}

impl DeltaBuffer {
    /// An empty buffer bucketing at `cell` edge length (clamped to a
    /// tiny positive value so degenerate bounds cannot divide by zero).
    pub fn new(cell: f64) -> Self {
        DeltaBuffer {
            cell: if cell.is_finite() && cell > 1e-9 { cell } else { 1.0 },
            ops: Vec::new(),
            entries: Vec::new(),
            by_id: HashMap::new(),
            removed: HashSet::new(),
            grid: HashMap::new(),
            max_half_extent: 0.0,
        }
    }

    /// Number of ops buffered since the last refreeze.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The buffered ops, in ack order.
    pub fn ops(&self) -> &[WriteOp] {
        &self.ops
    }

    /// Net segment-count change versus the base (inserts minus removes
    /// that actually hit something).
    pub fn net_len_delta(&self) -> isize {
        let live = self.entries.iter().filter(|e| !e.dead).count() as isize;
        live - self.removed.len() as isize
    }

    /// Was `id` removed since the last refreeze? Queries use this to
    /// mask base hits. (A delta insert that was later removed is marked
    /// dead instead and never consulted here.)
    pub fn is_removed(&self, id: u64) -> bool {
        self.removed.contains(&id)
    }

    /// Does the delta hold a live insert with this id?
    pub fn contains_insert(&self, id: u64) -> bool {
        self.by_id.contains_key(&id)
    }

    fn cell_of(&self, b: &Aabb) -> (i64, i64, i64) {
        let c = b.center();
        (
            (c.x / self.cell).floor() as i64,
            (c.y / self.cell).floor() as i64,
            (c.z / self.cell).floor() as i64,
        )
    }

    /// Apply one already-validated, already-logged op.
    pub fn apply(&mut self, op: &WriteOp) {
        self.ops.push(op.clone());
        match op {
            WriteOp::Insert(s) => {
                let b = s.aabb();
                let e = b.extent();
                let half = e.x.max(e.y).max(e.z) * 0.5;
                if half.is_finite() {
                    self.max_half_extent = self.max_half_extent.max(half);
                }
                let idx = self.entries.len();
                self.entries.push(DeltaEntry { seg: *s, dead: false });
                self.by_id.insert(s.id, idx);
                self.grid.entry(self.cell_of(&b)).or_default().push(idx);
            }
            WriteOp::Remove(id) => {
                if let Some(idx) = self.by_id.remove(id) {
                    // The remove cancels a buffered insert: the base never
                    // held this id, so it must NOT join the removal mask —
                    // a later refreeze would otherwise re-filter nothing,
                    // but a *recovered* base could legitimately reuse ids.
                    self.entries[idx].dead = true;
                } else {
                    self.removed.insert(*id);
                }
            }
        }
    }

    /// Visit every live buffered insert whose AABB intersects `region`,
    /// in ack order. Probes only grid cells the (expanded) region
    /// covers, falling back to a linear pass when the region spans more
    /// cells than there are entries.
    pub fn for_each_in_range(&self, region: &Aabb, mut f: impl FnMut(&NeuronSegment)) {
        if self.entries.is_empty() {
            return;
        }
        let pad = self.max_half_extent;
        let lo = (
            ((region.lo.x - pad) / self.cell).floor() as i64,
            ((region.lo.y - pad) / self.cell).floor() as i64,
            ((region.lo.z - pad) / self.cell).floor() as i64,
        );
        let hi = (
            ((region.hi.x + pad) / self.cell).floor() as i64,
            ((region.hi.y + pad) / self.cell).floor() as i64,
            ((region.hi.z + pad) / self.cell).floor() as i64,
        );
        let cells =
            (hi.0 - lo.0 + 1) as i128 * (hi.1 - lo.1 + 1) as i128 * (hi.2 - lo.2 + 1) as i128;
        let mut hits: Vec<usize> = Vec::new();
        if cells > self.entries.len() as i128 {
            hits.extend(0..self.entries.len());
        } else {
            for x in lo.0..=hi.0 {
                for y in lo.1..=hi.1 {
                    for z in lo.2..=hi.2 {
                        if let Some(bucket) = self.grid.get(&(x, y, z)) {
                            hits.extend_from_slice(bucket);
                        }
                    }
                }
            }
            hits.sort_unstable();
        }
        for idx in hits {
            let e = &self.entries[idx];
            if !e.dead && e.seg.aabb().intersects(region) {
                f(&e.seg);
            }
        }
    }

    /// Visit every live buffered insert, in ack order (KNN candidates).
    pub fn for_each(&self, mut f: impl FnMut(&NeuronSegment)) {
        for e in &self.entries {
            if !e.dead {
                f(&e.seg);
            }
        }
    }

    /// Drop all buffered state (after a refreeze folded it into the new
    /// frozen generation). The seq counter keeps running.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.entries.clear();
        self.by_id.clear();
        self.removed.clear();
        self.grid.clear();
        self.max_half_extent = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::{Segment, Vec3};

    fn seg(id: u64, x: f64) -> NeuronSegment {
        NeuronSegment {
            id,
            neuron: id as u32,
            section: 0,
            index_on_section: 0,
            geom: Segment::new(Vec3::new(x, 0.0, 0.0), Vec3::new(x + 1.0, 0.0, 0.0), 0.5),
        }
    }

    #[test]
    fn op_codec_round_trips() {
        for op in [WriteOp::Insert(seg(7, 3.25)), WriteOp::Remove(42)] {
            let bytes = encode_op(&op);
            assert_eq!(decode_op(&bytes).expect("round trip"), op);
        }
        assert!(decode_op(&[]).is_err());
        assert!(decode_op(&[9]).is_err());
        assert!(decode_op(&encode_op(&WriteOp::Remove(1))[..5]).is_err());
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let segs = vec![seg(1, 0.0), seg(2, 10.0), seg(3, -4.5)];
        let bytes = encode_snapshot(&segs);
        assert_eq!(decode_snapshot(&bytes).expect("round trip"), segs);
        assert_eq!(decode_snapshot(&encode_snapshot(&[])).expect("empty"), vec![]);
        assert!(decode_snapshot(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_snapshot(&[1, 0, 0]).is_err());
    }

    #[test]
    fn apply_ops_is_order_preserving() {
        let mut segs = vec![seg(1, 0.0), seg(2, 1.0), seg(3, 2.0)];
        apply_ops(
            &mut segs,
            &[WriteOp::Remove(2), WriteOp::Insert(seg(4, 3.0)), WriteOp::Remove(1)],
        );
        let ids: Vec<u64> = segs.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn delta_masks_and_emits() {
        let mut d = DeltaBuffer::new(2.0);
        assert!(d.is_empty());
        d.apply(&WriteOp::Insert(seg(10, 0.0)));
        d.apply(&WriteOp::Insert(seg(11, 100.0)));
        d.apply(&WriteOp::Remove(3)); // base id
        assert!(d.is_removed(3) && !d.is_removed(10));
        assert_eq!(d.len(), 3);
        assert_eq!(d.net_len_delta(), 1); // +2 inserts, −1 base removal

        // Range emission respects the region and ack order.
        let near = Aabb::cube(Vec3::new(0.5, 0.0, 0.0), 5.0);
        let mut got = Vec::new();
        d.for_each_in_range(&near, |s| got.push(s.id));
        assert_eq!(got, vec![10]);
        let everything = Aabb::cube(Vec3::new(50.0, 0.0, 0.0), 200.0);
        got.clear();
        d.for_each_in_range(&everything, |s| got.push(s.id));
        assert_eq!(got, vec![10, 11]);

        // Removing a buffered insert kills it without masking the base.
        d.apply(&WriteOp::Remove(10));
        assert!(!d.is_removed(10), "delta-only removals never mask the base");
        got.clear();
        d.for_each_in_range(&everything, |s| got.push(s.id));
        assert_eq!(got, vec![11]);

        d.clear();
        assert!(d.is_empty() && !d.is_removed(3));
    }
}
