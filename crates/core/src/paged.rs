//! The out-of-core FLAT backend: FLAT's page neighborhoods on the real
//! pager, behind the same [`SpatialIndex`] trait as every in-memory
//! backend.
//!
//! [`PagedFlatIndex`] wraps the scout crate's paged engine
//! ([`OocFlatIndex`]): segments live in a checksummed page file on disk,
//! a bounded frame pool keeps a configurable number of pages resident,
//! and background workers prefetch pages ahead of the crawl. Logical
//! results and seed-and-crawl statistics are **byte-identical** to the
//! in-memory [`FlatIndex`] (property-tested in
//! `tests/ooc_equivalence.rs`); the physical I/O counters surface
//! through the `cache_*` fields of [`QueryStats`].
//!
//! ## Fallibility
//!
//! Disk-backed queries can fail in ways in-memory queries cannot, but
//! the [`SpatialIndex`] trait is infallible by design (in-memory
//! backends would pay an `unwrap` tax on every call otherwise). The
//! split is:
//!
//! * **Open-time**: [`PagedFlatIndex::open`] / [`PagedFlatIndex::create`] validate the
//!   header, metadata and — with [`OocConfig::validate_pages`] (the
//!   default) — every page checksum, returning typed
//!   [`NeuroError::Storage`] errors. A corrupt file never constructs an
//!   index.
//! * **Query-time**: the trait methods `expect` on storage errors,
//!   which after a validated open can only mean the file rotted or was
//!   truncated *while the database was serving*. Callers that want to
//!   survive post-open media failure use the fallible
//!   [`try_range_query_into_scratch`](PagedFlatIndex::try_range_query_into_scratch)
//!   lane instead.

use crate::error::NeuroError;
use crate::index::{IndexParams, IndexPlan, QueryOutput, QueryScratch, QueryStats, SpatialIndex};
use neurospatial_flat::{FlatBuildParams, FlatIndex};
use neurospatial_geom::{Aabb, Flow};
use neurospatial_model::NeuronSegment;
use neurospatial_scout::{write_flat_index, OocConfig, OocFlatIndex, OocQueryStats, OocScratch};
use neurospatial_storage::{FrameStats, StorageError};
use std::any::Any;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lift a paged query's statistics into the unified schema: the logical
/// counters map exactly as the in-memory FLAT conversion does, and the
/// physical I/O counters land in the `cache_*` fields.
pub(crate) fn unified_stats(s: &OocQueryStats) -> QueryStats {
    QueryStats {
        results: s.flat.results,
        nodes_read: s.flat.pages_read + s.flat.seed_nodes_read,
        objects_tested: s.flat.objects_tested,
        reseeds: s.flat.reseeds,
        cache_hits: s.io.cache_hits,
        cache_misses: s.io.cache_misses,
        cache_evictions: s.io.evictions,
        retries: s.io.retries,
        pages_quarantined: s.io.pages_quarantined,
    }
}

/// A page file written by [`PagedFlatIndex::create`] into the system
/// temp directory gets a process-unique name, so concurrent test
/// processes (and concurrent builds within one process) never collide.
fn temp_page_file() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("neurospatial-paged-{}-{n}.flatpages", std::process::id()))
}

/// Out-of-core FLAT: the seed-and-crawl engine over a disk-resident
/// page file and a bounded buffer pool.
///
/// ```
/// use neurospatial::paged::PagedFlatIndex;
/// use neurospatial::prelude::*;
/// use neurospatial::scout::OocConfig;
///
/// let circuit = CircuitBuilder::new(7).neurons(8).build();
/// // Spill to a temp page file, keep at most 4 pages in RAM.
/// let paged = PagedFlatIndex::create_temp(
///     circuit.segments().to_vec(),
///     FlatBuildParams::default().with_page_capacity(32),
///     OocConfig::default().with_frame_budget(4),
/// )
/// .expect("temp dir is writable");
/// let q = Aabb::cube(circuit.bounds().center(), 20.0);
/// let out = paged.range_query(&q);
/// assert_eq!(out.stats.results as usize, out.segments.len());
/// // Physical I/O shows up in the unified statistics.
/// assert!(out.stats.cache_hits + out.stats.cache_misses >= out.stats.nodes_read / 2);
/// ```
pub struct PagedFlatIndex {
    ooc: OocFlatIndex,
}

impl std::fmt::Debug for PagedFlatIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedFlatIndex").field("ooc", &self.ooc).finish()
    }
}

impl PagedFlatIndex {
    /// Build an in-memory FLAT index over `segments`, persist it to
    /// `path` and reopen it out-of-core. The file stays on disk after
    /// drop — this is the "index once, explore many sessions" lane.
    pub fn create(
        segments: Vec<NeuronSegment>,
        params: FlatBuildParams,
        path: &Path,
        config: OocConfig,
    ) -> Result<Self, NeuroError> {
        let index = FlatIndex::build(segments, params);
        write_flat_index(&index, path)?;
        drop(index); // spill complete: RAM cost is now frames + metadata
        Self::open(path, config)
    }

    /// [`create`](Self::create) into a process-unique file in the system
    /// temp directory; the file is deleted when the index drops.
    pub fn create_temp(
        segments: Vec<NeuronSegment>,
        params: FlatBuildParams,
        config: OocConfig,
    ) -> Result<Self, NeuroError> {
        let path = temp_page_file();
        let mut paged = Self::create(segments, params, &path, config)?;
        paged.ooc.set_delete_on_drop(true);
        Ok(paged)
    }

    /// Open an existing page file written by
    /// [`write_flat_index`] / [`create`](Self::create). Corrupt,
    /// truncated or foreign files are rejected with a typed
    /// [`NeuroError::Storage`] — never a panic.
    pub fn open(path: &Path, config: OocConfig) -> Result<Self, NeuroError> {
        Ok(PagedFlatIndex { ooc: OocFlatIndex::open(path, config)? })
    }

    /// The underlying paged engine (frame pool, prefetcher, page-file
    /// metadata).
    pub fn ooc(&self) -> &OocFlatIndex {
        &self.ooc
    }

    /// Snapshot of the frame pool's cumulative counters.
    pub fn frame_stats(&self) -> FrameStats {
        self.ooc.pool().stats()
    }

    /// The backing page file's path.
    pub fn path(&self) -> &Path {
        self.ooc.path()
    }

    /// Number of data pages in the page file.
    pub fn page_count(&self) -> usize {
        self.ooc.page_count()
    }

    /// Pages quarantined after permanent read failures, ascending.
    /// Non-empty means the index is serving degraded: strict queries
    /// touching these pages fail, partial queries skip them.
    pub fn quarantined_pages(&self) -> Vec<u64> {
        self.ooc.quarantined_pages()
    }

    /// Whether any page is quarantined — the health signal the server's
    /// HEALTH opcode reports.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined_pages().is_empty()
    }

    /// Fallible range query for callers that must survive post-open
    /// media failure (a served file truncated or bit-flipped while the
    /// database is live): same results and statistics as
    /// [`SpatialIndex::range_query_into_scratch`], but storage errors
    /// return as [`NeuroError::Storage`] instead of panicking.
    pub fn try_range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> Result<QueryStats, NeuroError> {
        let stats = self.ooc.range_query_stream(
            region,
            &mut scratch.paged,
            |_| {},
            |s| {
                out.push(*s);
                Flow::Emit
            },
        )?;
        Ok(unified_stats(&stats))
    }

    /// Unwrap a query-lane storage result. `open` validated every page
    /// (see the module docs), so an error here means the file changed
    /// underneath a live database — not something the infallible trait
    /// lane can report.
    fn must<T>(r: Result<T, StorageError>) -> T {
        r.unwrap_or_else(|e| {
            panic!("paged FLAT: page file failed after a validated open (did the file change while serving?): {e}")
        })
    }
}

impl SpatialIndex for PagedFlatIndex {
    /// Build via a temp page file with the default out-of-core
    /// configuration (all pages cacheable, checksums validated at open).
    /// Panics if the temp directory is not writable — the registry/trait
    /// build lane has no error channel; use
    /// [`PagedFlatIndex::create`] to handle that case.
    fn build(segments: Vec<NeuronSegment>, params: &IndexParams) -> Self {
        Self::create_temp(
            segments,
            FlatBuildParams::default().with_page_capacity(params.page_capacity.max(1)),
            OocConfig::default(),
        )
        .unwrap_or_else(|e| panic!("paged FLAT build: cannot write the temp page file: {e}"))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn len(&self) -> usize {
        self.ooc.len()
    }

    fn bounds(&self) -> Aabb {
        self.ooc.bounds()
    }

    fn range_query(&self, region: &Aabb) -> QueryOutput {
        let mut segments = Vec::with_capacity(self.ooc.params().page_capacity * 2);
        let mut scratch = OocScratch::new();
        let stats = Self::must(self.ooc.range_query_stream(
            region,
            &mut scratch,
            |_| {},
            |s| {
                segments.push(*s);
                Flow::Emit
            },
        ));
        QueryOutput { segments, stats: unified_stats(&stats) }
    }

    fn range_query_into(&self, region: &Aabb, out: &mut Vec<NeuronSegment>) -> QueryStats {
        let mut scratch = OocScratch::new();
        let stats = Self::must(self.ooc.range_query_stream(
            region,
            &mut scratch,
            |_| {},
            |s| {
                out.push(*s);
                Flow::Emit
            },
        ));
        unified_stats(&stats)
    }

    fn range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        let stats = Self::must(self.ooc.range_query_stream(
            region,
            &mut scratch.paged,
            |_| {},
            |s| {
                out.push(*s);
                Flow::Emit
            },
        ));
        unified_stats(&stats)
    }

    fn for_each_in_range(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn FnMut(&NeuronSegment) -> Flow,
    ) -> QueryStats {
        let stats = Self::must(self.ooc.range_query_stream(
            region,
            &mut scratch.paged,
            |_| {},
            |s| sink(s),
        ));
        unified_stats(&stats)
    }

    fn try_for_each_in_range(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        allow_partial: bool,
        sink: &mut dyn FnMut(&NeuronSegment) -> Flow,
    ) -> Result<QueryStats, NeuroError> {
        let stats = self.ooc.range_query_stream_partial(
            region,
            &mut scratch.paged,
            allow_partial,
            |_| {},
            |s| sink(s),
        )?;
        Ok(unified_stats(&stats))
    }

    fn plan_range(&self, region: &Aabb) -> IndexPlan {
        // Same exact plan as in-memory FLAT: the page MBRs are metadata,
        // resident in RAM, so planning still costs no page I/O.
        let pages = self.ooc.pages_intersecting(region).len() as u64;
        IndexPlan {
            shards_total: 1,
            shards_probed: usize::from(pages > 0),
            estimated_reads: if pages == 0 {
                0
            } else {
                pages + self.ooc.seed_tree_height() as u64
            },
        }
    }

    fn memory_bytes(&self) -> usize {
        self.ooc.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_model::CircuitBuilder;

    fn segments(neurons: u32) -> Vec<NeuronSegment> {
        CircuitBuilder::new(11).neurons(neurons).build().into_segments()
    }

    fn build_paged(neurons: u32, budget: usize) -> PagedFlatIndex {
        PagedFlatIndex::create_temp(
            segments(neurons),
            FlatBuildParams::default().with_page_capacity(32),
            OocConfig::default().with_frame_budget(budget),
        )
        .expect("temp page file")
    }

    #[test]
    fn matches_in_memory_flat_exactly() {
        let segs = segments(10);
        let mem: FlatIndex<NeuronSegment> =
            FlatIndex::build(segs.clone(), FlatBuildParams::default().with_page_capacity(32));
        let paged = PagedFlatIndex::create_temp(
            segs,
            FlatBuildParams::default().with_page_capacity(32),
            OocConfig::default().with_frame_budget(3),
        )
        .expect("temp page file");
        for r in [5.0, 20.0, 60.0] {
            let q = Aabb::cube(mem.bounds().center(), r);
            let want = SpatialIndex::range_query(&mem, &q);
            let got = paged.range_query(&q);
            assert_eq!(want.sorted_ids(), got.sorted_ids());
            // Logical counters agree field by field; only cache_* differ.
            assert_eq!(want.stats.results, got.stats.results);
            assert_eq!(want.stats.nodes_read, got.stats.nodes_read);
            assert_eq!(want.stats.objects_tested, got.stats.objects_tested);
            assert_eq!(want.stats.reseeds, got.stats.reseeds);
            assert_eq!(want.stats.cache_hits + want.stats.cache_misses, 0);
            assert!(got.stats.cache_hits + got.stats.cache_misses > 0);
        }
    }

    #[test]
    fn scratch_and_plan_paths_work() {
        let paged = build_paged(8, 2);
        let q = Aabb::cube(paged.bounds().center(), 30.0);
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let s1 = paged.range_query_into_scratch(&q, &mut scratch, &mut out);
        let buffered = paged.range_query(&q);
        assert_eq!(out.len(), buffered.segments.len());
        assert_eq!(s1.results, buffered.stats.results);
        let plan = paged.plan_range(&q);
        assert!(plan.estimated_reads > 0);
        // KNN rides the trait default over the paged range path.
        let (nn, _) = paged.knn(paged.bounds().center(), 5);
        assert_eq!(nn.len(), 5.min(paged.len()));
    }

    #[test]
    fn open_rejects_garbage_with_typed_error() {
        let path = temp_page_file();
        std::fs::write(&path, b"not a page file at all").expect("write");
        let Err(err) = PagedFlatIndex::open(&path, OocConfig::default()) else {
            panic!("garbage must not open");
        };
        assert!(matches!(err, NeuroError::Storage(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }
}
