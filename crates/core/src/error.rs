//! Typed errors for the `neurospatial` facade.
//!
//! The original facade panicked (or silently returned empty results) on
//! misuse; every fallible public operation now reports a [`NeuroError`]
//! instead, so downstream services can surface precise diagnostics.

use neurospatial_storage::StorageError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong constructing or querying a [`crate::NeuroDb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeuroError {
    /// A backend name did not parse / was not registered.
    UnknownBackend { given: String, known: Vec<String> },
    /// A population name does not exist in this database.
    UnknownPopulation { given: String, known: Vec<String> },
    /// An operation needed at least `needed` populations.
    TooFewPopulations { found: usize, needed: usize },
    /// The builder was finalised without a data source (`circuit` or
    /// `segments`). An *empty* segment list is valid; providing nothing
    /// at all is almost always a bug.
    MissingSegments,
    /// The requested operation needs a paged (FLAT) index but the
    /// database was built with another backend.
    WalkthroughUnsupported { backend: String },
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// The on-disk page store failed: I/O, corruption, truncation or a
    /// foreign/incompatible file. Raised by the paged (out-of-core) FLAT
    /// backend when opening or reading a page file.
    Storage(StorageError),
    /// The query touched pages quarantined after permanent media
    /// failures, and partial results were not requested. The database
    /// keeps serving everything else; opt in with
    /// [`allow_partial`](crate::query::RangeQuery::allow_partial) to get
    /// the surviving results labeled via `stats.pages_quarantined`.
    DegradedResult {
        /// The quarantined pages the query needed, ascending.
        pages: Vec<u64>,
    },
    /// A write (`insert_segment` / `remove_segment`) was issued against
    /// a database opened without [`durable`](crate::NeuroDbBuilder::durable)
    /// mode. Frozen databases are immutable by construction.
    WriteUnsupported,
    /// A write was validated and refused *before* anything was appended
    /// to the WAL: duplicate insert id, removal of an unknown id, or
    /// non-finite geometry. Nothing was acknowledged and nothing needs
    /// to be retried — the request itself is invalid.
    WriteRejected {
        /// Human-readable reason naming the offending op.
        reason: String,
    },
}

impl fmt::Display for NeuroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuroError::UnknownBackend { given, known } => {
                write!(f, "unknown index backend '{given}' (known: {})", known.join(", "))
            }
            NeuroError::UnknownPopulation { given, known } => {
                write!(f, "unknown population '{given}' (known: {})", known.join(", "))
            }
            NeuroError::TooFewPopulations { found, needed } => {
                write!(f, "operation needs {needed} populations, database has {found}")
            }
            NeuroError::MissingSegments => {
                write!(f, "builder finalised without segments; call .circuit() or .segments()")
            }
            NeuroError::WalkthroughUnsupported { backend } => {
                write!(f, "walkthroughs need the paged 'flat' backend, database uses '{backend}'")
            }
            NeuroError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NeuroError::Storage(e) => write!(f, "page store failure: {e}"),
            NeuroError::DegradedResult { pages } => write!(
                f,
                "degraded: query needs quarantined page(s) {pages:?}; \
                 retry with allow_partial to accept labeled partial results"
            ),
            NeuroError::WriteUnsupported => {
                write!(f, "writes need a durable database; open with .durable(path)")
            }
            NeuroError::WriteRejected { reason } => {
                write!(f, "write rejected (nothing was logged): {reason}")
            }
        }
    }
}

impl Error for NeuroError {}

impl From<StorageError> for NeuroError {
    fn from(e: StorageError) -> Self {
        match e {
            // A quarantine refusal is a *degradation* signal, not a raw
            // storage fault: the caller can re-run with partial results.
            StorageError::Quarantined { pages } => NeuroError::DegradedResult { pages },
            other => NeuroError::Storage(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = NeuroError::UnknownBackend {
            given: "btree".into(),
            known: vec!["flat".into(), "rtree".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("btree") && msg.contains("flat"));

        let e = NeuroError::WalkthroughUnsupported { backend: "rplus".into() };
        assert!(e.to_string().contains("rplus"));
    }

    #[test]
    fn storage_errors_convert_and_describe() {
        let e: NeuroError = StorageError::BadVersion(9).into();
        assert_eq!(e, NeuroError::Storage(StorageError::BadVersion(9)));
        let msg = e.to_string();
        assert!(msg.contains("page store") && msg.contains('9'), "{msg}");
    }
}
