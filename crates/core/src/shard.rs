//! The sharded parallel query executor.
//!
//! The demo paper's pitch is *interactive* spatial analytics over
//! brain-scale circuits, which only holds up if queries saturate the
//! hardware. A [`ShardedIndex`] space-partitions one dataset into K
//! shards by Hilbert order (consecutive Hilbert codes are spatially
//! adjacent, so each contiguous run of segments is a compact region of
//! tissue), builds one monolithic backend index per shard, and fans
//! query work out over a scoped-thread worker pool
//! ([`neurospatial_geom::Executor`] — the same primitive the TOUCH join
//! uses for its parallel probe phase).
//!
//! Parallelism is applied where it pays:
//!
//! * **single queries** run the K per-shard probes on the worker pool
//!   (useful for large regions; small regions are dominated by the root
//!   descent each shard repeats);
//! * **batched queries** ([`SpatialIndex::range_query_many`]) split the
//!   *batch* across workers, each worker probing all shards sequentially
//!   for its queries — the throughput configuration the
//!   `experiments --scenario=throughput` race measures;
//! * **KNN** runs each shard's exact expanding-cube search concurrently
//!   and merges the per-shard top-k candidate lists.
//!
//! Because the shards partition the segments (every segment lives in
//! exactly one shard), concatenating per-shard results needs no
//! deduplication, and summing per-shard [`QueryStats`] yields costs
//! directly comparable to a monolithic run. The equivalence suite in
//! `tests/backend_equivalence.rs` property-tests that a sharded executor
//! over every backend returns byte-identical sorted result sets to the
//! monolithic index.
//!
//! ```
//! use neurospatial::prelude::*;
//!
//! let circuit = CircuitBuilder::new(3).neurons(8).build();
//! let params = IndexParams::with_page_capacity(64).sharded(4).threaded(2);
//! let sharded = ShardedIndex::<FlatIndex<NeuronSegment>>::build_with(
//!     circuit.segments().to_vec(),
//!     &params,
//! );
//! let q = Aabb::cube(circuit.bounds().center(), 30.0);
//! let mono = IndexBackend::Flat.build(circuit.segments().to_vec(), &params);
//! assert_eq!(sharded.range_query(&q).sorted_ids(), mono.range_query(&q).sorted_ids());
//! ```

use crate::index::{
    finish_knn, IndexParams, IndexPlan, Neighbor, QueryOutput, QueryScratch, QueryStats,
    SpatialIndex,
};
use neurospatial_flat::FlatIndex;
use neurospatial_geom::{Aabb, Executor, Flow, HilbertSorter, Vec3};
use neurospatial_model::NeuronSegment;
use neurospatial_scout::PagedIndex;

/// A range query's merged result plus the per-shard statistics breakdown
/// (`per_shard[i]` is shard `i`'s contribution; fields sum to
/// `output.stats`).
#[derive(Debug, Clone, Default)]
pub struct ShardedQueryOutput {
    pub output: QueryOutput,
    pub per_shard: Vec<QueryStats>,
}

/// K backend indexes over a Hilbert space partition of one dataset,
/// queried by a scoped-thread worker pool.
///
/// Built via [`build_with`](Self::build_with) (or the [`SpatialIndex`]
/// trait constructor, [`NeuroDbBuilder`](crate::NeuroDbBuilder)'s
/// `.shards(k).threads(t)`, or the registry's `sharded:<backend>`
/// names). Shard and thread counts come from
/// [`IndexParams::shards`] / [`IndexParams::threads`].
pub struct ShardedIndex<I> {
    shards: Vec<I>,
    /// `shard_bounds[i]` = `shards[i].bounds()`, cached so query paths
    /// can prune non-intersecting shards without touching the shard.
    shard_bounds: Vec<Aabb>,
    executor: Executor,
    len: usize,
    bounds: Aabb,
}

impl<I: SpatialIndex> ShardedIndex<I> {
    /// Hilbert-sort `segments`, split them into `params.shards` balanced
    /// contiguous shards, and build one `I` per shard (shard builds run
    /// on the worker pool).
    pub fn build_with(mut segments: Vec<NeuronSegment>, params: &IndexParams) -> Self {
        let k = params.shards.max(1);
        let executor = Executor::new(params.threads);
        // Hilbert-order by segment centre so each contiguous run — and
        // therefore each shard — is a spatially compact region.
        let centers = Aabb::from_points(segments.iter().map(|s| s.geom.center()));
        if segments.len() > 1 {
            let sorter = HilbertSorter::new(centers);
            // Cached keys: the Hilbert transform is ~100 ops per point,
            // far too hot to recompute per comparison.
            segments.sort_by_cached_key(|s| sorter.key(s.geom.center()));
        }
        let bounds = segments.iter().fold(Aabb::EMPTY, |acc, s| acc.union(&s.aabb()));
        let n = segments.len();
        let segments = &segments;
        // Balanced split: shard i holds segments[i*n/k .. (i+1)*n/k]
        // (sizes differ by at most one; shards beyond n are empty).
        let shards: Vec<I> = executor
            .map_chunks(k, |shard_range| {
                shard_range
                    .map(|i| I::build(segments[i * n / k..(i + 1) * n / k].to_vec(), params))
                    .collect::<Vec<I>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let shard_bounds = shards.iter().map(|s| s.bounds()).collect();
        ShardedIndex { shards, shard_bounds, executor, len: n, bounds }
    }

    /// Number of indexed segments across all shards. (Inherent so calls
    /// stay unambiguous when both [`SpatialIndex`] and
    /// [`PagedIndex`] are in scope.)
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads used for query execution.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// The per-shard backend indexes, in Hilbert partition order.
    pub fn shards(&self) -> &[I] {
        &self.shards
    }

    /// Segment counts per shard (sums to [`len`](SpatialIndex::len)).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Range query returning the merged output *and* the per-shard
    /// statistics breakdown — the sharded analogue of the demo's
    /// "disk pages retrieved" panel. Shards whose bounds miss the region
    /// are pruned without being touched (all-zero statistics), so a
    /// well-partitioned dataset answers a local query from one or two
    /// shards.
    pub fn range_query_breakdown(&self, region: &Aabb) -> ShardedQueryOutput {
        let shards = &self.shards;
        let partials = self
            .executor
            .map_chunks(shards.len(), |r| {
                r.map(|i| {
                    if self.shard_bounds[i].intersects(region) {
                        shards[i].range_query(region)
                    } else {
                        QueryOutput::default()
                    }
                })
                .collect::<Vec<QueryOutput>>()
            })
            .into_iter()
            .flatten();
        let mut out = ShardedQueryOutput::default();
        for shard_out in partials {
            out.output.stats.merge(&shard_out.stats);
            out.per_shard.push(shard_out.stats);
            out.output.segments.extend(shard_out.segments);
        }
        out
    }

    /// Append the results of every intersecting shard to `out`,
    /// sequentially on the calling thread, and return the merged
    /// statistics. The one pruned shard loop behind both the sequential
    /// `range_query_into` path and the inner loop of batched execution
    /// (where the worker pool is already saturated at the batch level).
    fn range_query_sequential_into(
        &self,
        region: &Aabb,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        let mut stats = QueryStats::default();
        for (shard, bounds) in self.shards.iter().zip(&self.shard_bounds) {
            if bounds.intersects(region) {
                stats.merge(&shard.range_query_into(region, out));
            }
        }
        stats
    }

    /// The scratch-threading twin of
    /// [`range_query_sequential_into`](Self::range_query_sequential_into):
    /// the inner loop of batched execution, where each worker owns one
    /// [`QueryScratch`] for its whole slice of the batch.
    fn range_query_sequential_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        let mut stats = QueryStats::default();
        for (shard, bounds) in self.shards.iter().zip(&self.shard_bounds) {
            if bounds.intersects(region) {
                stats.merge(&shard.range_query_into_scratch(region, scratch, out));
            }
        }
        stats
    }
}

impl<I: SpatialIndex> SpatialIndex for ShardedIndex<I> {
    fn build(segments: Vec<NeuronSegment>, params: &IndexParams) -> Self {
        ShardedIndex::build_with(segments, params)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bounds(&self) -> Aabb {
        self.bounds
    }

    fn range_query(&self, region: &Aabb) -> QueryOutput {
        self.range_query_breakdown(region).output
    }

    fn range_query_into(&self, region: &Aabb, out: &mut Vec<NeuronSegment>) -> QueryStats {
        if self.executor.threads() == 1 {
            self.range_query_sequential_into(region, out)
        } else {
            let o = self.range_query(region);
            out.extend_from_slice(&o.segments);
            o.stats
        }
    }

    /// Sequential scratch path: probes the intersecting shards on the
    /// calling thread, threading one [`QueryScratch`] through all of
    /// them. Same results, order and statistics as
    /// [`range_query`](Self::range_query) (shard order is deterministic
    /// either way); the worker pool is deliberately not engaged — this
    /// is the form the batched executor runs *inside* each worker.
    fn range_query_into_scratch(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        out: &mut Vec<NeuronSegment>,
    ) -> QueryStats {
        self.range_query_sequential_scratch(region, scratch, out)
    }

    /// Streaming execution over the shards. At one worker thread the
    /// intersecting shards stream *sequentially* through the caller's
    /// sink (one scratch threaded through all of them, a [`Flow::Last`]
    /// verdict stops before later shards are even probed — the fully
    /// pushed-down, allocation-free lane). With multiple workers each
    /// shard streams into a per-worker sink buffer on the pool (bounds
    /// pruning still applies below the fan-out) and the buffers replay
    /// through the caller's sink in shard order — a deterministic merge,
    /// so emission order is identical to the sequential lane. Statistics
    /// under a `Last` early-exit differ between the lanes (parallel
    /// probes every intersecting shard before the verdict can stop the
    /// replay); without an early exit both report the same merged stats.
    fn for_each_in_range(
        &self,
        region: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn FnMut(&NeuronSegment) -> Flow,
    ) -> QueryStats {
        if self.executor.threads() == 1 {
            let mut stats = QueryStats::default();
            let mut stopped = false;
            for (shard, bounds) in self.shards.iter().zip(&self.shard_bounds) {
                if !bounds.intersects(region) {
                    continue;
                }
                let s = shard.for_each_in_range(region, scratch, &mut |o| {
                    let f = sink(o);
                    if f == Flow::Last {
                        stopped = true;
                    }
                    f
                });
                stats.merge(&s);
                if stopped {
                    break;
                }
            }
            return stats;
        }
        let shards = &self.shards;
        let partials = self
            .executor
            .map_chunks(shards.len(), |r| {
                let mut worker_scratch = QueryScratch::default();
                r.map(|i| {
                    let mut buf = Vec::new();
                    let stats = if self.shard_bounds[i].intersects(region) {
                        shards[i].range_query_into_scratch(region, &mut worker_scratch, &mut buf)
                    } else {
                        QueryStats::default()
                    };
                    (buf, stats)
                })
                .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten();
        let mut stats = QueryStats::default();
        let mut results = 0u64;
        let mut stopped = false;
        for (buf, shard_stats) in partials {
            stats.nodes_read += shard_stats.nodes_read;
            stats.objects_tested += shard_stats.objects_tested;
            stats.reseeds += shard_stats.reseeds;
            if stopped {
                continue;
            }
            for o in &buf {
                match sink(o) {
                    Flow::Emit => results += 1,
                    Flow::Skip => {}
                    Flow::Last => {
                        results += 1;
                        stopped = true;
                        break;
                    }
                }
            }
        }
        stats.results = results;
        stats
    }

    /// Real shard-pruning numbers for [`crate::query::RangeQuery::explain`]:
    /// how many of the K shards the region actually touches, and the sum
    /// of their per-shard read estimates.
    fn plan_range(&self, region: &Aabb) -> IndexPlan {
        let mut plan =
            IndexPlan { shards_total: self.shards.len(), shards_probed: 0, estimated_reads: 0 };
        for (shard, bounds) in self.shards.iter().zip(&self.shard_bounds) {
            if bounds.intersects(region) {
                plan.shards_probed += 1;
                plan.estimated_reads += shard.plan_range(region).estimated_reads;
            }
        }
        plan
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    /// Batched execution splits the *batch* across workers; each worker
    /// probes all shards sequentially for its queries, reusing **one**
    /// [`QueryScratch`] across its whole slice of the batch. Outputs keep
    /// the input order.
    fn range_query_many(&self, regions: &[Aabb]) -> Vec<QueryOutput> {
        self.executor
            .map_chunks(regions.len(), |r| {
                let mut scratch = QueryScratch::default();
                regions[r]
                    .iter()
                    .map(|q| {
                        let mut segments = Vec::new();
                        let stats =
                            self.range_query_sequential_scratch(q, &mut scratch, &mut segments);
                        QueryOutput { segments, stats }
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Exact cross-shard KNN: each shard's top-k candidates (computed
    /// concurrently) merge into the global canonical top-k. Correctness:
    /// every shard returns *its* k nearest, and the global k nearest are
    /// each the nearest within their own shard, so the union of per-shard
    /// top-k lists contains the global answer.
    fn knn(&self, p: Vec3, k: usize) -> (Vec<Neighbor>, QueryStats) {
        let mut stats = QueryStats::default();
        if k == 0 || self.len == 0 {
            return (Vec::new(), stats);
        }
        let shards = &self.shards;
        let partials = self
            .executor
            .map_chunks(shards.len(), |r| {
                r.map(|i| shards[i].knn(p, k)).collect::<Vec<(Vec<Neighbor>, QueryStats)>>()
            })
            .into_iter()
            .flatten();
        let mut candidates = Vec::new();
        for (neighbors, shard_stats) in partials {
            stats.nodes_read += shard_stats.nodes_read;
            stats.objects_tested += shard_stats.objects_tested;
            stats.reseeds += shard_stats.reseeds;
            candidates.extend(neighbors);
        }
        let merged = finish_knn(candidates, k, &mut stats);
        (merged, stats)
    }

    /// Allocation-free cross-shard KNN. A scratch cannot be shared
    /// across worker threads, so the scratch form runs the per-shard
    /// searches sequentially (one scratch threaded through all of them,
    /// cross-shard merge in `scratch.knn_merge`) and only multi-threaded
    /// executors fall back to the parallel allocating path. Candidate
    /// order, canonical merge and statistics match [`knn`](Self::knn)
    /// exactly either way.
    fn knn_into_scratch(
        &self,
        p: Vec3,
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Neighbor>,
    ) -> QueryStats {
        let mut stats = QueryStats::default();
        if k == 0 || self.len == 0 {
            return stats;
        }
        if self.executor.threads() > 1 {
            let (neighbors, s) = self.knn(p, k);
            out.extend_from_slice(&neighbors);
            return s;
        }
        let mut merge = std::mem::take(&mut scratch.knn_merge);
        merge.clear();
        for shard in &self.shards {
            let shard_stats = shard.knn_into_scratch(p, k, scratch, &mut merge);
            stats.nodes_read += shard_stats.nodes_read;
            stats.objects_tested += shard_stats.objects_tested;
            stats.reseeds += shard_stats.reseeds;
        }
        let merged = finish_knn(merge, k, &mut stats);
        out.extend_from_slice(&merged);
        scratch.knn_merge = merged;
        stats
    }

    fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum::<usize>()
            + self.shards.len() * std::mem::size_of::<I>()
    }
}

/// A sharded FLAT executor is still page-granular, so it can drive a
/// SCOUT [`ExplorationSession`](neurospatial_scout::ExplorationSession):
/// global page ids are shard-local ids offset by the page counts of the
/// preceding shards.
impl PagedIndex for ShardedIndex<FlatIndex<NeuronSegment>> {
    /// One FLAT scratch serves every shard in turn: each shard's crawl
    /// re-sizes the visited marks to its own page count on entry.
    type Scratch = neurospatial_flat::FlatScratch;

    fn len(&self) -> usize {
        self.len
    }

    fn page_count(&self) -> usize {
        self.shards.iter().map(|s| s.page_count()).sum()
    }

    fn pages_intersecting(&self, region: &Aabb) -> Vec<u32> {
        let mut pages = Vec::new();
        let mut offset = 0u32;
        for shard in &self.shards {
            pages.extend(shard.pages_intersecting(region).into_iter().map(|p| p + offset));
            offset += shard.page_count() as u32;
        }
        pages
    }

    fn paged_range_query<'a>(
        &'a self,
        region: &Aabb,
        on_page: &mut dyn FnMut(u32),
    ) -> Vec<&'a NeuronSegment> {
        let mut hits = Vec::new();
        let mut offset = 0u32;
        for shard in &self.shards {
            hits.extend(shard.paged_range_query(region, &mut |p| on_page(p + offset)));
            offset += shard.page_count() as u32;
        }
        hits
    }

    fn paged_range_query_scratch<'a>(
        &'a self,
        region: &Aabb,
        scratch: &mut Self::Scratch,
        on_page: &mut dyn FnMut(u32),
        out: &mut Vec<&'a NeuronSegment>,
    ) {
        let mut offset = 0u32;
        for shard in &self.shards {
            shard.paged_range_query_scratch(region, scratch, &mut |p| on_page(p + offset), out);
            offset += shard.page_count() as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{DynamicRTree, IndexBackend};
    use neurospatial_model::CircuitBuilder;
    use neurospatial_rtree::{RPlusTree, RTree};
    use neurospatial_scout::{ExplorationSession, ScoutPrefetcher, SessionConfig};

    fn circuit_segments() -> Vec<NeuronSegment> {
        CircuitBuilder::new(17).neurons(8).build().segments().to_vec()
    }

    fn params(shards: usize, threads: usize) -> IndexParams {
        IndexParams::with_page_capacity(32).sharded(shards).threaded(threads)
    }

    #[test]
    fn shards_partition_the_dataset() {
        let segments = circuit_segments();
        for k in [1usize, 2, 3, 7, 16] {
            let idx = ShardedIndex::<FlatIndex<NeuronSegment>>::build_with(
                segments.clone(),
                &params(k, 2),
            );
            assert_eq!(idx.shard_count(), k);
            assert_eq!(idx.shard_lens().iter().sum::<usize>(), segments.len());
            assert_eq!(idx.len(), segments.len());
            // Balanced: sizes differ by at most one.
            let lens = idx.shard_lens();
            let (min, max) =
                (lens.iter().min().expect("k >= 1"), lens.iter().max().expect("k >= 1"));
            assert!(max - min <= 1, "k={k} lens={lens:?}");
        }
    }

    #[test]
    fn matches_monolithic_on_every_backend() {
        let segments = circuit_segments();
        let bounds = segments.iter().fold(Aabb::EMPTY, |a, s| a.union(&s.aabb()));
        let queries = [
            Aabb::cube(bounds.center(), 30.0),
            Aabb::cube(bounds.lo, 15.0),
            bounds,                            // everything
            Aabb::cube(Vec3::splat(1e6), 5.0), // nothing
        ];
        let p = params(5, 3);
        for backend in IndexBackend::ALL {
            let mono = backend.build(segments.clone(), &p);
            let sharded = backend.build_sharded(segments.clone(), &p);
            assert_eq!(sharded.len(), mono.len(), "{backend}");
            assert_eq!(sharded.bounds(), mono.bounds(), "{backend} bounds");
            for q in &queries {
                assert_eq!(
                    sharded.range_query(q).sorted_ids(),
                    mono.range_query(q).sorted_ids(),
                    "{backend} at {q}"
                );
            }
        }
    }

    #[test]
    fn batched_queries_match_singles_and_keep_order() {
        let segments = circuit_segments();
        let idx = ShardedIndex::<RTree<NeuronSegment>>::build_with(segments.clone(), &params(4, 4));
        let regions: Vec<Aabb> =
            (0..9).map(|i| Aabb::cube(segments[i * 13].geom.center(), 8.0 + i as f64)).collect();
        let batch = idx.range_query_many(&regions);
        assert_eq!(batch.len(), regions.len());
        for (out, q) in batch.iter().zip(&regions) {
            assert_eq!(out.sorted_ids(), idx.range_query(q).sorted_ids());
            assert_eq!(out.stats, idx.range_query(q).stats, "stats deterministic");
        }
    }

    #[test]
    fn knn_matches_monolithic_across_thread_counts() {
        let segments = circuit_segments();
        let mono =
            ShardedIndex::<RPlusTree<NeuronSegment>>::build_with(segments.clone(), &params(1, 1));
        let p = segments[7].geom.center() + Vec3::splat(3.0);
        for (k_shards, threads) in [(2usize, 1usize), (5, 4), (9, 2)] {
            let sharded = ShardedIndex::<RPlusTree<NeuronSegment>>::build_with(
                segments.clone(),
                &params(k_shards, threads),
            );
            for k in [1usize, 4, 25] {
                let (got, stats) = sharded.knn(p, k);
                let (want, _) = mono.knn(p, k);
                let got_ids: Vec<u64> = got.iter().map(|n| n.segment.id).collect();
                let want_ids: Vec<u64> = want.iter().map(|n| n.segment.id).collect();
                assert_eq!(got_ids, want_ids, "shards={k_shards} k={k}");
                assert_eq!(stats.results as usize, got.len());
            }
        }
    }

    /// Satellite: sharded statistics must sum consistently across
    /// K ∈ {1, 2, 7} shards, including shards that hold no segments.
    #[test]
    fn stats_merge_consistently_across_shard_counts() {
        let segments = circuit_segments();
        let bounds = segments.iter().fold(Aabb::EMPTY, |a, s| a.union(&s.aabb()));
        let q = Aabb::cube(bounds.center(), 40.0);
        for k in [1usize, 2, 7] {
            let idx = ShardedIndex::<DynamicRTree>::build_with(segments.clone(), &params(k, 2));
            let breakdown = idx.range_query_breakdown(&q);
            assert_eq!(breakdown.per_shard.len(), k);
            let summed = QueryStats::merged(breakdown.per_shard.iter());
            assert_eq!(summed, breakdown.output.stats, "k={k}: breakdown sums to merged stats");
            assert_eq!(
                breakdown.output.stats.results as usize,
                breakdown.output.segments.len(),
                "k={k}: results counts segments"
            );
            // The trait-level query reports the identical merged stats.
            assert_eq!(idx.range_query(&q).stats, breakdown.output.stats, "k={k}");
        }
    }

    #[test]
    fn empty_shards_contribute_zero_stats() {
        // 3 segments over 7 shards: four shards are empty.
        let segments: Vec<NeuronSegment> = circuit_segments().into_iter().take(3).collect();
        let idx =
            ShardedIndex::<FlatIndex<NeuronSegment>>::build_with(segments.clone(), &params(7, 3));
        assert_eq!(idx.shard_count(), 7);
        assert_eq!(idx.shard_lens().iter().filter(|&&l| l == 0).count(), 4);
        let q = idx.bounds();
        let breakdown = idx.range_query_breakdown(&q);
        assert_eq!(breakdown.output.segments.len(), segments.len());
        assert_eq!(QueryStats::merged(breakdown.per_shard.iter()), breakdown.output.stats);
        for (lens, stats) in idx.shard_lens().iter().zip(&breakdown.per_shard) {
            if *lens == 0 {
                assert_eq!(*stats, QueryStats::default(), "empty shard reports zero work");
            }
        }
    }

    #[test]
    fn empty_dataset_and_zero_shards_are_total() {
        // shards = 0 clamps to 1; an empty dataset builds K empty shards.
        let empty = ShardedIndex::<FlatIndex<NeuronSegment>>::build_with(Vec::new(), &params(0, 0));
        assert_eq!(empty.shard_count(), 1);
        assert!(empty.is_empty());
        let idx = ShardedIndex::<FlatIndex<NeuronSegment>>::build_with(Vec::new(), &params(4, 2));
        assert_eq!(idx.shard_count(), 4);
        assert!(idx.range_query(&Aabb::cube(Vec3::ZERO, 10.0)).is_empty());
        assert!(idx.knn(Vec3::ZERO, 5).0.is_empty());
    }

    #[test]
    fn sharded_flat_drives_a_scout_session() {
        let circuit = CircuitBuilder::new(5).neurons(10).build();
        let sharded = ShardedIndex::<FlatIndex<NeuronSegment>>::build_with(
            circuit.segments().to_vec(),
            &IndexParams::with_page_capacity(64).sharded(4).threaded(2),
        );
        // Page-id space is contiguous across shards.
        let everything = PagedIndex::pages_intersecting(&sharded, &SpatialIndex::bounds(&sharded));
        let mut sorted = everything.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), everything.len(), "no duplicate page ids");
        assert!(everything.iter().all(|&p| (p as usize) < PagedIndex::page_count(&sharded)));

        let session = ExplorationSession::from_index(sharded, SessionConfig::default());
        let path = neurospatial_model::NavigationPath::along_random_branch(&circuit, 3, 20.0, 8.0)
            .expect("path exists");
        let mut scout = ScoutPrefetcher::default();
        let stats = session.run(&path, &mut scout);
        assert_eq!(stats.steps.len(), path.queries.len());
    }
}
