//! Convenience re-exports for typical use of the library.
//!
//! ```
//! use neurospatial::prelude::*;
//!
//! let circuit = CircuitBuilder::new(1).neurons(3).build();
//! let db = NeuroDb::from_circuit(&circuit);
//! let out = db.range_query(&Aabb::cube(circuit.bounds().center(), 10.0));
//! assert!(out.len() <= circuit.segments().len());
//! ```

pub use crate::db::{
    NeuroDb, NeuroDbBuilder, NeuroDbConfig, Population, RegionStats, WalHealth, WalkthroughMethod,
    WriteAck,
};
pub use crate::delta::WriteOp;
pub use crate::error::NeuroError;
pub use crate::index::{
    BackendRegistry, DynamicRTree, IndexBackend, IndexParams, IndexPlan, Neighbor, QueryOutput,
    QueryScratch, QueryStats, SpatialIndex,
};
pub use crate::paged::PagedFlatIndex;
pub use crate::query::{
    KnnQuery, PathQuery, Plan, Query, QuerySession, RangeQuery, SegmentPredicate, TouchingQuery,
};
pub use crate::shard::{ShardedIndex, ShardedQueryOutput};

pub use neurospatial_geom::{Aabb, Flow, Segment, Vec3};

pub use neurospatial_model::{
    Circuit, CircuitBuilder, DensityStats, Morphology, MorphologyParams, NavigationPath,
    NeuronSegment, QueryPlacement, RangeQueryWorkload, SomaPlacement,
};

pub use neurospatial_flat::{FlatBuildParams, FlatIndex, FlatQueryStats, PackingStrategy};

pub use neurospatial_rtree::{RPlusTree, RTree, RTreeObject, RTreeParams, SplitStrategy};

pub use neurospatial_scout::{
    ExplorationSession, ExtrapolationPrefetcher, HilbertPrefetcher, MarkovPrefetcher, NoPrefetch,
    OocConfig, OocFlatIndex, Prefetcher, ScoutPrefetcher, SessionConfig, SessionStats,
};

pub use neurospatial_storage::{
    BufferPool, CostModel, DiskSim, EvictionPolicy, FaultPlan, FrameStats, IoStats, PageId,
    StorageError, Wal, WalRecovery,
};

pub use neurospatial_touch::{
    ClassicTouchJoin, JoinObject, JoinResult, JoinScratch, JoinStats, NestedLoopJoin, PbsmJoin,
    PlaneSweepJoin, S3Join, SpatialJoin, TouchEngine, TouchJoin,
};
