//! # neurospatial
//!
//! Spatial data management for dense neuroscience models — a faithful
//! open-source reproduction of the systems demonstrated in *"Data-driven
//! Neuroscience: Enabling Breakthroughs Via Innovative Data Management"*
//! (Stougiannis et al., SIGMOD 2013):
//!
//! * **FLAT** ([`flat`]) — range-query execution whose cost is
//!   independent of data density: seed with a tiny R-Tree over page MBRs,
//!   then crawl precomputed page-neighborhood links (§2 of the paper).
//! * **SCOUT** ([`scout`]) — content-aware prefetching for
//!   structure-following query sequences: reconstruct the topological
//!   skeleton of each result, prune candidate structures across queries,
//!   extrapolate exit edges (§3).
//! * **TOUCH** ([`touch`]) — in-memory spatial distance join by
//!   hierarchical data-oriented partitioning, with nested-loop,
//!   plane-sweep, PBSM and S3 baselines (§4).
//!
//! Substrates built for the reproduction: geometric primitives and
//! space-filling curves ([`geom`]), a synthetic neural-tissue generator
//! replacing the proprietary Blue Brain datasets ([`model`]), an R-Tree
//! with STR bulk loading ([`rtree`]) and a paged-storage simulator that
//! reports the paper's "disk pages retrieved / time" statistics
//! reproducibly ([`storage`]).
//!
//! ## Quickstart
//!
//! ```
//! use neurospatial::prelude::*;
//!
//! // 1. Generate a microcircuit (substitute for BBP data).
//! let circuit = CircuitBuilder::new(7).neurons(20).build();
//!
//! // 2. Open a database over its segments.
//! let db = NeuroDb::from_circuit(&circuit);
//!
//! // 3. Spatial range query (FLAT under the hood).
//! let region = Aabb::cube(circuit.bounds().center(), 30.0);
//! let (segments, stats) = db.range_query(&region);
//! assert_eq!(segments.len(), stats.results as usize);
//!
//! // 4. Synapse candidates between the even/odd neuron populations
//! //    (TOUCH distance join).
//! let synapses = db.find_synapse_candidates(3.0);
//! assert!(synapses.stats.results == synapses.pairs.len() as u64);
//!
//! // 5. Replay a branch-following walkthrough with SCOUT prefetching.
//! if let Some(path) = db.navigation_path(&circuit, 1, 20.0, 8.0) {
//!     let report = db.walkthrough(&path, WalkthroughMethod::Scout);
//!     assert!(report.steps.len() == path.queries.len());
//! }
//! ```

pub use neurospatial_flat as flat;
pub use neurospatial_geom as geom;
pub use neurospatial_model as model;
pub use neurospatial_rtree as rtree;
pub use neurospatial_scout as scout;
pub use neurospatial_storage as storage;
pub use neurospatial_touch as touch;

pub mod db;
pub mod prelude;

pub use db::{NeuroDb, NeuroDbConfig, RegionStats, WalkthroughMethod};
