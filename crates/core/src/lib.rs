//! # neurospatial
//!
//! Spatial data management for dense neuroscience models — a faithful
//! open-source reproduction of the systems demonstrated in *"Data-driven
//! Neuroscience: Enabling Breakthroughs Via Innovative Data Management"*
//! (Stougiannis et al., SIGMOD 2013):
//!
//! * **FLAT** ([`flat`]) — range-query execution whose cost is
//!   independent of data density: seed with a tiny R-Tree over page MBRs,
//!   then crawl precomputed page-neighborhood links (§2 of the paper).
//! * **SCOUT** ([`scout`]) — content-aware prefetching for
//!   structure-following query sequences: reconstruct the topological
//!   skeleton of each result, prune candidate structures across queries,
//!   extrapolate exit edges (§3).
//! * **TOUCH** ([`touch`]) — in-memory spatial distance join by
//!   hierarchical data-oriented partitioning, with nested-loop,
//!   plane-sweep, PBSM and S3 baselines (§4).
//!
//! Substrates built for the reproduction: geometric primitives and
//! space-filling curves ([`geom`]), a synthetic neural-tissue generator
//! replacing the proprietary Blue Brain datasets ([`model`]), an R-Tree
//! with STR bulk loading ([`rtree`]) and a paged-storage simulator that
//! reports the paper's "disk pages retrieved / time" statistics
//! reproducibly ([`storage`]).
//!
//! ## Quickstart
//!
//! Databases are opened through [`NeuroDbBuilder`]: pick a data source,
//! an index backend (by value or by name) and how segments split into
//! named populations.
//!
//! ```
//! use neurospatial::prelude::*;
//!
//! // 1. Generate a microcircuit (substitute for BBP data).
//! let circuit = CircuitBuilder::new(7).neurons(20).build();
//!
//! // 2. Open a database: FLAT backend, named populations.
//! let db = NeuroDb::builder()
//!     .circuit(&circuit)
//!     .backend(IndexBackend::Flat) // or .backend_named("rtree"), …
//!     .split_populations("axons", "dendrites", |s| s.neuron % 2 == 0)
//!     .build()
//!     .expect("valid configuration");
//!
//! // 3. Spatial range query through the pluggable SpatialIndex API.
//! let region = Aabb::cube(circuit.bounds().center(), 30.0);
//! let out = db.range_query(&region);
//! assert_eq!(out.segments.len(), out.stats.results as usize);
//!
//! // 4. Synapse candidates between the two populations (TOUCH join).
//! let synapses = db.find_synapse_candidates(3.0).expect("two populations");
//! assert!(synapses.stats.results == synapses.pairs.len() as u64);
//!
//! // 5. Replay a branch-following walkthrough with SCOUT prefetching
//! //    (FLAT backend only — walkthroughs are page-granular).
//! if let Some(path) = db.navigation_path(&circuit, 1, 20.0, 8.0) {
//!     let report = db.walkthrough(&path, WalkthroughMethod::Scout).expect("flat");
//!     assert!(report.steps.len() == path.queries.len());
//! }
//! ```
//!
//! Backends are comparable through one API — build the same data under
//! every [`IndexBackend`] and race them:
//!
//! ```
//! use neurospatial::prelude::*;
//!
//! let circuit = CircuitBuilder::new(1).neurons(6).build();
//! let q = Aabb::cube(circuit.bounds().center(), 25.0);
//! let outputs: Vec<QueryOutput> = IndexBackend::ALL
//!     .iter()
//!     .map(|b| b.build(circuit.segments().to_vec(), &IndexParams::default()).range_query(&q))
//!     .collect();
//! // All four backends return the identical result set.
//! assert!(outputs.windows(2).all(|w| w[0].sorted_ids() == w[1].sorted_ids()));
//! ```

pub use neurospatial_flat as flat;
pub use neurospatial_geom as geom;
pub use neurospatial_model as model;
pub use neurospatial_obs as obs;
pub use neurospatial_rtree as rtree;
pub use neurospatial_scout as scout;
pub use neurospatial_storage as storage;
pub use neurospatial_touch as touch;

pub mod db;
pub mod delta;
pub mod error;
pub mod index;
pub mod metrics;
pub mod paged;
pub mod prelude;
pub mod query;
pub mod shard;

pub use db::{
    NeuroDb, NeuroDbBuilder, NeuroDbConfig, Population, RegionStats, WalHealth, WalkthroughMethod,
    WriteAck,
};
pub use delta::WriteOp;
pub use error::NeuroError;
pub use index::{
    BackendFactory, BackendRegistry, DynamicRTree, IndexBackend, IndexParams, IndexPlan, Neighbor,
    QueryOutput, QueryScratch, QueryStats, SpatialIndex,
};
pub use neurospatial_geom::Flow;
pub use paged::PagedFlatIndex;
pub use query::{
    KnnQuery, PathQuery, Plan, Query, QuerySession, RangeQuery, SegmentPredicate, TouchingQuery,
};
pub use shard::{ShardedIndex, ShardedQueryOutput};
