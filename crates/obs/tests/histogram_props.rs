//! Property tests: histogram quantiles against exact sorted-sample
//! quantiles, and merge-of-shards equivalence.

use neurospatial_obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// The estimate for quantile `q` must land inside the bucket that holds
/// the exact rank-`ceil(q·n)` sorted sample — the "error bounded by
/// bucket width" contract.
fn assert_quantile_in_exact_bucket(snap: &HistogramSnapshot, sorted: &[u64], q: f64) {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    let exact = sorted[rank - 1];
    let est = snap.quantile(q);
    let (lo, hi) = bucket_bounds(bucket_index(exact));
    assert!(
        est >= lo && est <= hi,
        "q={q}: estimate {est} outside bucket [{lo}, {hi}] of exact sample {exact}"
    );
}

proptest! {
    /// Quantiles p50/p90/p99/p99.9 and the extremes stay within one
    /// bucket of the exact sorted-sample answer, across magnitudes.
    #[test]
    fn quantiles_bounded_by_bucket_width(
        values in prop::collection::vec(0u64..=1 << 40, 1..400),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_quantile_in_exact_bucket(&snap, &sorted, q);
        }
    }

    /// Splitting the sample across shards and merging the snapshots is
    /// byte-identical to recording everything into one histogram.
    #[test]
    fn merge_of_shards_equals_single_histogram(
        values in prop::collection::vec(0u64..=1 << 36, 1..300),
        shards in 2usize..6,
    ) {
        let single = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = parts[0].snapshot();
        for p in &parts[1..] {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(merged.clone(), single.snapshot());

        // Merged quantiles obey the same bucket-width bound.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.99, 0.999] {
            assert_quantile_in_exact_bucket(&merged, &sorted, q);
        }
    }

    /// The wire codec is lossless for arbitrary recorded content.
    #[test]
    fn snapshot_encoding_roundtrips(
        values in prop::collection::vec(0u64..=1 << 44, 0..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let reg = neurospatial_obs::MetricsRegistry::new();
        reg.counter("c_total").add(values.len() as u64);
        let snap_h = h.snapshot();
        let mut snap = reg.snapshot();
        snap.histograms.push(("h_ns".to_string(), snap_h));
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        let back = neurospatial_obs::MetricsSnapshot::decode(&bytes).expect("roundtrip decodes");
        prop_assert_eq!(back, snap);
    }
}
