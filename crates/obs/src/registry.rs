//! Metric handles and the registry that owns them.
//!
//! Registration is the only allocating operation: it takes a lock, interns
//! the handle, and returns an `Arc` the caller keeps. Recording through a
//! handle is a single relaxed atomic op. Reads (snapshot / render) merge
//! histogram stripes and clone names — they are off the hot path by design.

use crate::hist::{Histogram, HistogramSnapshot};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a free-standing counter (prefer registry registration).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Compatibility shim for call sites migrated from raw `AtomicU64`
    /// fields; the ordering argument is ignored (counters are relaxed).
    #[inline]
    pub fn load(&self, _order: Ordering) -> u64 {
        self.get()
    }
}

/// Instantaneous signed level (resident frames, queue depth, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a free-standing gauge (prefer registry registration).
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Replaces the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct Inner {
    counters: Vec<(&'static str, Arc<Counter>)>,
    gauges: Vec<(&'static str, Arc<Gauge>)>,
    histograms: Vec<(&'static str, Arc<Histogram>)>,
}

/// A set of named metrics. Registration is idempotent by name: asking
/// twice for `"wal_commits_total"` yields the same `Arc`.
///
/// Most code uses the process-wide [`global`] registry; the server also
/// keeps a private registry per listener so its counters reset with each
/// server instance.
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> Self {
        MetricsRegistry {
            inner: Mutex::new(Inner {
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
            }),
        }
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Allocates only on the creating call.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner.counters.push((name, Arc::clone(&c)));
        c
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| *n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        inner.gauges.push((name, Arc::clone(&g)));
        g
    }

    /// Returns the histogram registered under `name`, creating (and
    /// preallocating all buckets for) it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.push((name, Arc::clone(&h)));
        h
    }

    /// Point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot {
            counters: inner.counters.iter().map(|(n, c)| (n.to_string(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(n, g)| (n.to_string(), g.get())).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.to_string(), h.snapshot()))
                .collect(),
        };
        drop(inner);
        snap.sort();
        snap
    }
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry. Subsystems below the server (storage, scout,
/// core query pipeline) register here once at construction time.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// Owned, transportable view of a registry (or a merge of several).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` gauge pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` histogram pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Wire-format version emitted by [`MetricsSnapshot::encode_into`].
pub const SNAPSHOT_VERSION: u16 = 1;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotDecodeError {
    /// The payload ended before the structure it promised.
    Truncated,
    /// The version field is newer than this build understands.
    UnsupportedVersion(u16),
    /// A metric name was not valid UTF-8.
    BadName,
    /// Trailing bytes after the final histogram.
    TrailingBytes(usize),
}

impl std::fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotDecodeError::Truncated => write!(f, "metrics snapshot truncated"),
            SnapshotDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported metrics snapshot version {v}")
            }
            SnapshotDecodeError::BadName => write!(f, "metric name is not valid UTF-8"),
            SnapshotDecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after metrics snapshot")
            }
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotDecodeError> {
        let end = self.at.checked_add(n).ok_or(SnapshotDecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotDecodeError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, SnapshotDecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, SnapshotDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn name(&mut self) -> Result<String, SnapshotDecodeError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotDecodeError::BadName)
    }
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

impl MetricsSnapshot {
    fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Folds `other` into `self`. Same-named counters sum, gauges take
    /// `other`'s level, histograms merge; new names are inserted sorted.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.gauges[i].1 = *v,
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (name.clone(), h.clone())),
            }
        }
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge level by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Appends the versioned binary encoding to `out`.
    ///
    /// Layout (all little-endian): `u16 version`, then three sections
    /// (counters, gauges, histograms), each `u32 n` followed by `n`
    /// entries. Entries carry `u16 name_len + name bytes`; histogram
    /// entries add `count/sum/min/max` and sparse `(u16 bucket, u64 n)`
    /// pairs.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, v) in &self.counters {
            put_name(out, name);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for (name, v) in &self.gauges {
            put_name(out, name);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.histograms.len() as u32).to_le_bytes());
        for (name, h) in &self.histograms {
            put_name(out, name);
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&h.min.to_le_bytes());
            out.extend_from_slice(&h.max.to_le_bytes());
            out.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
            for (idx, c) in &h.buckets {
                out.extend_from_slice(&idx.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }

    /// Decodes a payload produced by [`encode_into`](Self::encode_into),
    /// rejecting truncation, version skew, and trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<MetricsSnapshot, SnapshotDecodeError> {
        let mut cur = Cur { buf, at: 0 };
        let version = cur.u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotDecodeError::UnsupportedVersion(version));
        }
        let n = cur.u32()? as usize;
        let mut counters = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = cur.name()?;
            counters.push((name, cur.u64()?));
        }
        let n = cur.u32()? as usize;
        let mut gauges = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = cur.name()?;
            gauges.push((name, cur.u64()? as i64));
        }
        let n = cur.u32()? as usize;
        let mut histograms = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = cur.name()?;
            let count = cur.u64()?;
            let sum = cur.u64()?;
            let min = cur.u64()?;
            let max = cur.u64()?;
            let nb = cur.u32()? as usize;
            let mut buckets = Vec::with_capacity(nb.min(4096));
            for _ in 0..nb {
                let idx = cur.u16()?;
                buckets.push((idx, cur.u64()?));
            }
            histograms.push((name, HistogramSnapshot { count, sum, min, max, buckets }));
        }
        if cur.at != buf.len() {
            return Err(SnapshotDecodeError::TrailingBytes(buf.len() - cur.at));
        }
        Ok(MetricsSnapshot { counters, gauges, histograms })
    }

    /// Prometheus-style text exposition. Counters and gauges render as
    /// single samples; histograms render as summaries with `quantile`
    /// labels plus `_sum`, `_count`, and `_max` samples. Every family is
    /// prefixed `neurospatial_`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE neurospatial_{name} counter");
            let _ = writeln!(out, "neurospatial_{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE neurospatial_{name} gauge");
            let _ = writeln!(out, "neurospatial_{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE neurospatial_{name} summary");
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)] {
                let _ =
                    writeln!(out, "neurospatial_{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "neurospatial_{name}_sum {}", h.sum);
            let _ = writeln!(out, "neurospatial_{name}_count {}", h.count);
            let _ = writeln!(out, "neurospatial_{name}_max {}", h.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&r.histogram("h_ns"), &r.histogram("h_ns")));
        assert!(Arc::ptr_eq(&r.gauge("g"), &r.gauge("g")));
    }

    #[test]
    fn snapshot_roundtrips_through_wire_format() {
        let r = MetricsRegistry::new();
        r.counter("b_total").add(7);
        r.counter("a_total").add(3);
        r.gauge("level").set(-4);
        let h = r.histogram("lat_ns");
        for v in [10u64, 100, 1000, 123_456] {
            h.record(v);
        }
        let snap = r.snapshot();
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        let back = MetricsSnapshot::decode(&bytes).expect("decodes");
        assert_eq!(back, snap);
        assert_eq!(back.counter("a_total"), Some(3));
        assert_eq!(back.gauge("level"), Some(-4));
        assert_eq!(back.histogram("lat_ns").unwrap().count, 4);

        // Truncation at every prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(MetricsSnapshot::decode(&bytes[..cut]).is_err());
        }
        // Trailing garbage is rejected.
        bytes.push(0);
        assert_eq!(MetricsSnapshot::decode(&bytes), Err(SnapshotDecodeError::TrailingBytes(1)));
    }

    #[test]
    fn merge_sums_counters_and_merges_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("shared_total").add(2);
        b.counter("shared_total").add(5);
        b.counter("only_b_total").add(1);
        a.histogram("h_ns").record(50);
        b.histogram("h_ns").record(5_000);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("shared_total"), Some(7));
        assert_eq!(snap.counter("only_b_total"), Some(1));
        let h = snap.histogram("h_ns").unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 50, 5_000));
    }

    #[test]
    fn render_text_exposes_families() {
        let r = MetricsRegistry::new();
        r.counter("requests_total").add(9);
        r.histogram("latency_ns").record(1500);
        let text = r.snapshot().render_text();
        assert!(text.contains("# TYPE neurospatial_requests_total counter"));
        assert!(text.contains("neurospatial_requests_total 9"));
        assert!(text.contains("neurospatial_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("neurospatial_latency_ns_count 1"));
    }
}
