//! Log-linear bucket latency histogram.
//!
//! The value domain is `u64` (nanoseconds by convention). Buckets are
//! HdrHistogram-style log-linear: values below [`SUB`] get exact unit
//! buckets; above that, each power-of-two octave is split into [`SUB`]
//! linear sub-buckets, bounding relative error by `1 / SUB` (6.25%).
//! Quantile estimates therefore land inside the bucket that holds the
//! exact sorted-sample quantile — "error bounded by bucket width".
//!
//! Recording is wait-free: one relaxed `fetch_add` on a bucket plus
//! relaxed `fetch_add`/`fetch_max`/`fetch_min` for the moment counters,
//! spread over a small number of stripes so concurrent workers do not
//! share cache lines. All allocation happens in [`Histogram::new`];
//! `record` never allocates.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Sub-bucket resolution bits: each octave splits into `2^SUB_BITS`
/// linear buckets.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (and the width of the exact region).
pub const SUB: usize = 1 << SUB_BITS;
/// Values are clamped to `2^MAX_EXP - 1` (~4.9 hours in nanoseconds).
pub const MAX_EXP: u32 = 44;
/// Total bucket count for one stripe.
pub const BUCKETS: usize = SUB + (MAX_EXP - SUB_BITS) as usize * SUB;

/// Number of independently-updated stripes; merged on snapshot.
const STRIPES: usize = 8;

/// Maps a value to its bucket index. Monotone in `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let v = v.min((1u64 << MAX_EXP) - 1);
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
        (exp - SUB_BITS) as usize * SUB + SUB + sub
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `idx`.
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    debug_assert!(idx < BUCKETS);
    if idx < SUB {
        (idx as u64, idx as u64)
    } else {
        let exp = (idx - SUB) as u32 / SUB as u32 + SUB_BITS;
        let sub = ((idx - SUB) % SUB) as u64;
        let width = 1u64 << (exp - SUB_BITS);
        let lo = (1u64 << exp) + sub * width;
        (lo, lo + width - 1)
    }
}

/// One stripe of buckets plus its moment counters.
struct Stripe {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Stripe {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

// Each thread picks a stripe once (round-robin at first use) and sticks
// with it. The cell is const-initialised: no lazy allocation on the
// recording path.
thread_local! {
    static STRIPE_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn stripe_id() -> usize {
    STRIPE_ID.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
            c.set(v);
            v
        }
    })
}

/// Concurrent log-linear histogram. Cheap to record into from many
/// threads; snapshot merges the stripes.
pub struct Histogram {
    stripes: Box<[Stripe]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Allocates the full bucket matrix up front; the only allocating
    /// call on this type.
    pub fn new() -> Self {
        Histogram { stripes: (0..STRIPES).map(|_| Stripe::new()).collect() }
    }

    /// Records one observation. Wait-free, never allocates.
    #[inline]
    pub fn record(&self, value: u64) {
        let s = &self.stripes[stripe_id()];
        s.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(value, Ordering::Relaxed);
        s.min.fetch_min(value, Ordering::Relaxed);
        s.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at the clamp).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merges all stripes into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<(u16, u64)> = Vec::new();
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut dense = [0u64; BUCKETS];
        for s in self.stripes.iter() {
            for (i, b) in s.buckets.iter().enumerate() {
                dense[i] += b.load(Ordering::Relaxed);
            }
            count += s.count.load(Ordering::Relaxed);
            sum = sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            min = min.min(s.min.load(Ordering::Relaxed));
            max = max.max(s.max.load(Ordering::Relaxed));
        }
        for (i, &c) in dense.iter().enumerate() {
            if c != 0 {
                buckets.push((i as u16, c));
            }
        }
        if count == 0 {
            min = 0;
        }
        HistogramSnapshot { count, sum, min, max, buckets }
    }
}

/// Point-in-time, mergeable view of a [`Histogram`]: sparse nonzero
/// buckets plus exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, sorted by index.
    pub buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// Quantile estimate for `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the rank-`ceil(q * count)` sample, clamped to
    /// the exact observed `[min, max]`. Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                // `min` sits in the first nonzero bucket and `max` in the
                // last, so this clamp cannot leave the selected bucket.
                let (_lo, hi) = bucket_bounds(idx as usize);
                return hi.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`; equivalent to having recorded both
    /// sets of observations into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u16, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.buckets.len() || b < other.buckets.len() {
            match (self.buckets.get(a), other.buckets.get(b)) {
                (Some(&(ia, ca)), Some(&(ib, cb))) => {
                    if ia == ib {
                        merged.push((ia, ca + cb));
                        a += 1;
                        b += 1;
                    } else if ia < ib {
                        merged.push((ia, ca));
                        a += 1;
                    } else {
                        merged.push((ib, cb));
                        b += 1;
                    }
                }
                (Some(&p), None) => {
                    merged.push(p);
                    a += 1;
                }
                (None, Some(&p)) => {
                    merged.push(p);
                    b += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_are_consistent() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "index must be monotone at v={v}");
            prev = i;
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} outside bucket [{lo}, {hi}]");
        }
        // Spot-check the large end and the clamp.
        for v in [1u64 << 30, (1 << 40) + 12345, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            let (lo, hi) = bucket_bounds(i);
            let clamped = v.min((1 << MAX_EXP) - 1);
            assert!(lo <= clamped && clamped <= hi);
        }
    }

    #[test]
    fn relative_error_is_bounded_by_sub_resolution() {
        for v in [100u64, 1_000, 65_537, 1 << 20, (1 << 33) + 7] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = (hi - lo + 1) as f64;
            assert!(width / lo.max(1) as f64 <= 1.0 / SUB as f64 + 1e-9);
        }
    }

    #[test]
    fn quantiles_track_exact_samples() {
        let h = Histogram::new();
        let vals: Vec<u64> = (1..=10_000u64).map(|i| i * 37 % 500_000).collect();
        for &v in &vals {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, vals.len() as u64);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(snap.min, sorted[0]);
        assert_eq!(snap.max, *sorted.last().unwrap());
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = snap.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(
                est >= lo && est <= hi,
                "q={q}: est {est} outside exact sample's bucket [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 80_000);
    }

    #[test]
    fn merge_equals_union() {
        let (a, b, c) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..5_000u64 {
            let v = i * i % 1_000_003;
            c.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, c.snapshot());
    }
}
