//! Request-stage spans recorded into a fixed per-thread ring buffer.
//!
//! A span is an RAII guard: constructing it stamps a start time, dropping
//! it writes one [`SpanEvent`] into the current thread's ring (and
//! optionally records the duration into a [`Histogram`]). The ring is a
//! const-initialised `thread_local` array — entering and leaving a span
//! never allocates, so spans are safe on the zero-alloc hot path.
//!
//! The ring holds the last [`RING_CAPACITY`] events per thread; older
//! events are overwritten. Reading the ring is a debugging affordance,
//! not a transport: use [`with_recent_spans`] (no allocation) or
//! [`recent_spans`] (allocates a `Vec`, test/tool use only).

use crate::hist::Histogram;
use std::cell::RefCell;
use std::sync::OnceLock;
use std::time::Instant;

/// Pipeline stage a span attributes its time to, in request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Wire frame parsing and request validation.
    Decode = 0,
    /// Admission control: queue hand-off or BUSY shedding.
    Admission = 1,
    /// Index traversal and predicate evaluation.
    Traversal = 2,
    /// Page fetch through the frame pool (miss path I/O).
    PageIo = 3,
    /// WAL group-commit append + fsync.
    WalCommit = 4,
    /// Response encoding and socket write.
    Encode = 5,
}

impl Stage {
    /// Stable lower-case name (matches metric naming).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::Traversal => "traversal",
            Stage::PageIo => "page_io",
            Stage::WalCommit => "wal_commit",
            Stage::Encode => "encode",
        }
    }
}

/// One completed span: stage, start offset from process origin, duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which pipeline stage the time belongs to.
    pub stage: Stage,
    /// Nanoseconds since the process's first span-clock read.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Events retained per thread before the ring wraps.
pub const RING_CAPACITY: usize = 256;

struct Ring {
    events: [SpanEvent; RING_CAPACITY],
    /// Next write position.
    head: usize,
    /// Number of valid events (saturates at capacity).
    len: usize,
}

const EMPTY_EVENT: SpanEvent = SpanEvent { stage: Stage::Decode, start_ns: 0, dur_ns: 0 };

thread_local! {
    static RING: RefCell<Ring> =
        const { RefCell::new(Ring { events: [EMPTY_EVENT; RING_CAPACITY], head: 0, len: 0 }) };
}

static ORIGIN: OnceLock<Instant> = OnceLock::new();

#[inline]
fn origin() -> Instant {
    *ORIGIN.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process span-clock origin.
#[inline]
pub fn now_ns() -> u64 {
    origin().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Live span guard; the event is committed on drop.
pub struct Span<'a> {
    stage: Stage,
    start_ns: u64,
    hist: Option<&'a Histogram>,
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        if let Some(h) = self.hist {
            h.record(dur_ns);
        }
        let ev = SpanEvent { stage: self.stage, start_ns: self.start_ns, dur_ns };
        // `try_with` so spans held across thread teardown degrade to
        // dropping the event instead of aborting.
        let _ = RING.try_with(|ring| {
            let mut ring = ring.borrow_mut();
            let head = ring.head;
            ring.events[head] = ev;
            ring.head = (head + 1) % RING_CAPACITY;
            if ring.len < RING_CAPACITY {
                ring.len += 1;
            }
        });
    }
}

/// Opens a span for `stage` on the current thread.
#[inline]
pub fn span(stage: Stage) -> Span<'static> {
    Span { stage, start_ns: now_ns(), hist: None }
}

/// Opens a span that also records its duration into `hist` when dropped.
#[inline]
pub fn span_timed(stage: Stage, hist: &Histogram) -> Span<'_> {
    Span { stage, start_ns: now_ns(), hist: Some(hist) }
}

/// Opens a span guard; bind it to keep the stage open:
/// `let _span = obs::span!(Stage::Traversal);` — optionally pass a
/// histogram to time the stage: `obs::span!(Stage::WalCommit, &hist)`.
#[macro_export]
macro_rules! span {
    ($stage:expr) => {
        $crate::span($stage)
    };
    ($stage:expr, $hist:expr) => {
        $crate::span_timed($stage, $hist)
    };
}

/// Runs `f` over the current thread's retained spans, oldest first. The
/// two slices are the chronological halves of the ring; no allocation.
pub fn with_recent_spans<R>(f: impl FnOnce(&[SpanEvent], &[SpanEvent]) -> R) -> R {
    RING.with(|ring| {
        let ring = ring.borrow();
        if ring.len < RING_CAPACITY {
            f(&ring.events[..ring.len], &[])
        } else {
            f(&ring.events[ring.head..], &ring.events[..ring.head])
        }
    })
}

/// Copies the current thread's retained spans, oldest first. Allocates;
/// intended for tests and debug dumps, not the hot path.
pub fn recent_spans() -> Vec<SpanEvent> {
    with_recent_spans(|a, b| {
        let mut out = Vec::with_capacity(a.len() + b.len());
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        out
    })
}

/// Clears the current thread's span ring (test isolation helper).
pub fn clear_spans() {
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        ring.head = 0;
        ring.len = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_commit_in_order_on_drop() {
        clear_spans();
        {
            let _outer = span(Stage::Decode);
            let _inner = span(Stage::Traversal);
            // inner drops first, then outer
        }
        let events = recent_spans();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, Stage::Traversal);
        assert_eq!(events[1].stage, Stage::Decode);
        assert!(events[1].start_ns <= events[0].start_ns);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        clear_spans();
        for _ in 0..RING_CAPACITY + 10 {
            let _s = span(Stage::Encode);
        }
        let events = recent_spans();
        assert_eq!(events.len(), RING_CAPACITY);
        for w in events.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns, "ring must stay chronological");
        }
    }

    #[test]
    fn timed_span_feeds_histogram() {
        let h = Histogram::new();
        {
            let _s = span_timed(Stage::WalCommit, &h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max >= 1_000_000, "slept 1ms, recorded {}ns", snap.max);
    }
}
