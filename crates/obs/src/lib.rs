//! `neurospatial-obs`: zero-allocation metrics and tracing for the
//! neurospatial stack.
//!
//! Three primitives, hand-rolled on `std` (the build is offline):
//!
//! * **Counters and gauges** — relaxed atomics behind `Arc` handles,
//!   registered by name in a [`MetricsRegistry`].
//! * **[`Histogram`]** — log-linear buckets (16 sub-buckets per octave,
//!   ≤ 6.25% relative error) with per-thread stripes, yielding
//!   p50/p90/p99/p99.9 and exact min/max, mergeable across workers via
//!   [`HistogramSnapshot::merge`].
//! * **Spans** — [`span!`] RAII guards writing into a fixed per-thread
//!   ring buffer, attributing request time to pipeline
//!   [`Stage`]s (decode → admission → traversal → page I/O →
//!   WAL commit → encode).
//!
//! The allocation discipline is strict: registration (startup) allocates;
//! recording is one-to-five relaxed atomic ops and never allocates, so
//! instrumented hot paths keep their 0 allocs/request guarantee. Reads —
//! [`MetricsRegistry::snapshot`], [`MetricsSnapshot::render_text`], the
//! binary wire codec — allocate freely because they run off the hot path.

#![warn(missing_docs)]

mod hist;
mod registry;
mod span;

pub use hist::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS, MAX_EXP, SUB, SUB_BITS,
};
pub use registry::{
    global, Counter, Gauge, MetricsRegistry, MetricsSnapshot, SnapshotDecodeError, SNAPSHOT_VERSION,
};
pub use span::{
    clear_spans, now_ns, recent_spans, span, span_timed, with_recent_spans, Span, SpanEvent, Stage,
    RING_CAPACITY,
};
