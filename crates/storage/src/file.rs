//! The on-disk page file: a versioned, checksummed page-array format.
//!
//! This is the persistence half of the out-of-core stack. A *page file*
//! is a fixed-size header, a dense array of equally-sized pages, and a
//! trailing variable-length metadata blob. Index structures (FLAT's page
//! neighborhoods, in `neurospatial-scout`) serialize their per-page
//! payloads into the page array and their page-level metadata (MBRs,
//! neighbor links, build parameters) into the blob; at query time pages
//! are read back one at a time through the pinning
//! [`FramePool`](crate::FramePool).
//!
//! ## Byte layout
//!
//! All integers are little-endian. Checksums are 64-bit FNV-1a
//! ([`checksum64`]).
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"NSPF"` |
//! | 4      | 4    | format version (`u32`, currently 1) |
//! | 8      | 4    | page size in bytes (`u32`, incl. the per-page header) |
//! | 12     | 4    | reserved (0) |
//! | 16     | 8    | page count (`u64`) |
//! | 24     | 8    | metadata length (`u64`) |
//! | 32     | 8    | metadata checksum (`u64`) |
//! | 40     | 8    | header checksum (`u64`, over bytes 0..40) |
//! | 48     | 16   | reserved (0) |
//! | 64     | `page_count × page_size` | the page array |
//! | …      | `meta_len` | metadata blob |
//!
//! Each page starts with its own 16-byte header:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | payload length (`u32`, ≤ `page_size − 16`) |
//! | 4      | 4    | page index (`u32`, must equal the page's position) |
//! | 8      | 8    | page checksum (`u64`, over the 8 header bytes above + payload) |
//! | 16     | payload length | payload |
//! | …      | —    | zero padding up to `page_size` |
//!
//! Storing the page's own index under the checksum catches misdirected
//! reads (a page written to — or read from — the wrong slot) in addition
//! to bit rot.
//!
//! ## Totality
//!
//! [`PageFile::open`] and [`PageFile::read_page_into`] never panic on
//! untrusted input: every malformed byte sequence — short file, wrong
//! magic, unknown version, absurd page size, bad checksum, out-of-range
//! page index — maps to a typed [`StorageError`]. The checksum is
//! re-verified on **every** page read, so a page that rots after `open`
//! still surfaces as [`StorageError::PageChecksum`] rather than silent
//! wrong answers.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic of the page-file format.
pub const PAGE_FILE_MAGIC: [u8; 4] = *b"NSPF";
/// Current page-file format version.
pub const PAGE_FILE_VERSION: u32 = 1;
/// Size of the file header in bytes.
pub const FILE_HEADER_BYTES: usize = 64;
/// Size of the per-page header in bytes.
pub const PAGE_HEADER_BYTES: usize = 16;
/// Smallest accepted page size (header + at least some payload room).
pub const MIN_PAGE_SIZE: usize = PAGE_HEADER_BYTES + 16;
/// Largest accepted page size (1 GiB — anything beyond this in a header
/// is treated as corruption, not ambition).
pub const MAX_PAGE_SIZE: usize = 1 << 30;

/// 64-bit FNV-1a over `bytes`.
///
/// Not cryptographic — this guards against bit rot, truncation and
/// misdirected I/O, not adversaries. It is public so tests (and external
/// tooling) can craft files with *valid* checksums over deliberately
/// invalid fields, proving the field validation itself fires.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = Checksum64::new();
    h.update(bytes);
    h.finish()
}

/// Streaming form of [`checksum64`], for checksumming discontiguous
/// parts (page header + payload) without concatenating them.
#[derive(Debug, Clone, Copy)]
pub struct Checksum64 {
    state: u64,
}

impl Default for Checksum64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksum64 {
    /// A fresh hasher (FNV-1a offset basis).
    pub fn new() -> Self {
        Checksum64 { state: 0xcbf2_9ce4_8422_2325 }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Typed failures of the on-disk storage stack.
///
/// Every reader in this module is *total*: corrupt, truncated or
/// hostile input maps to one of these variants, never a panic. The enum
/// is `Clone + PartialEq + Eq` so higher layers
/// (`neurospatial-core`'s `NeuroError`) can embed it while keeping their
/// own derives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operating-system I/O error (file missing, permission denied,
    /// disk full, …). Carries the [`std::io::ErrorKind`] plus a static
    /// note saying which operation failed; the full `std::io::Error` is
    /// not stored because it is neither `Clone` nor `Eq`.
    Io {
        /// Kind of the underlying OS error.
        kind: std::io::ErrorKind,
        /// Which operation failed (e.g. `"open"`, `"read page"`).
        context: &'static str,
    },
    /// The file does not start with the page-file magic.
    BadMagic,
    /// The header declares a format version this build cannot read.
    BadVersion(u32),
    /// The file is shorter than its header says it should be.
    Truncated {
        /// Bytes the header implies the file must hold.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The file header's self-checksum does not match — the header
    /// itself is corrupt, so none of its fields can be trusted.
    HeaderChecksum,
    /// A page's stored checksum does not match its contents, or its
    /// stored index does not match the slot it was read from.
    PageChecksum {
        /// Index of the corrupt page.
        page: u64,
    },
    /// A page index at or beyond the file's page count was requested.
    PageOutOfRange {
        /// The requested page index.
        page: u64,
        /// Number of pages in the file.
        count: u64,
    },
    /// The header's fields are structurally invalid (absurd page size),
    /// or the metadata blob failed its checksum or its consumer's
    /// decoder. The string says what was wrong.
    Corrupt(String),
    /// Every frame in the buffer pool is pinned — the frame budget is
    /// too small for the number of pages the caller holds pinned at
    /// once.
    FrameBudgetExhausted {
        /// The pool's frame capacity.
        frames: usize,
    },
    /// The requested pages sit in the frame pool's quarantine set: a
    /// previous read failed permanently (bit rot, torn write) and the
    /// page was fenced off so one bad sector cannot take down the whole
    /// process. Queries that opt into partial results skip these pages
    /// instead of failing.
    Quarantined {
        /// The quarantined pages the operation touched, ascending.
        pages: Vec<u64>,
    },
    /// Open-time validation swept the whole page array and found these
    /// corrupt pages. Unlike [`PageChecksum`](Self::PageChecksum) (one
    /// page, detected lazily) this reports the full blast radius in a
    /// single pass so operators see every bad page at once.
    BadPages {
        /// Every page that failed validation, ascending.
        pages: Vec<u64>,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { kind, context } => write!(f, "i/o error during {context}: {kind}"),
            StorageError::BadMagic => write!(f, "not a neurospatial page file"),
            StorageError::BadVersion(v) => write!(f, "unsupported page-file version {v}"),
            StorageError::Truncated { expected, got } => {
                write!(f, "truncated page file: expected {expected} bytes, got {got}")
            }
            StorageError::HeaderChecksum => write!(f, "page-file header failed its checksum"),
            StorageError::PageChecksum { page } => {
                write!(f, "page {page} failed its checksum")
            }
            StorageError::PageOutOfRange { page, count } => {
                write!(f, "page {page} out of range (file holds {count})")
            }
            StorageError::Corrupt(what) => write!(f, "corrupt page file: {what}"),
            StorageError::FrameBudgetExhausted { frames } => {
                write!(f, "all {frames} buffer frames are pinned")
            }
            StorageError::Quarantined { pages } => {
                write!(f, "quarantined page(s) {pages:?} (permanent read failures)")
            }
            StorageError::BadPages { pages } => {
                write!(f, "{} corrupt page(s): {pages:?}", pages.len())
            }
        }
    }
}

impl StorageError {
    /// Whether retrying the failed operation can plausibly succeed.
    ///
    /// Transient failures are interrupted/blocked/timed-out OS reads
    /// (`EINTR`-class errors) and a momentarily exhausted frame budget;
    /// everything else — corruption, truncation, version skew, missing
    /// files, quarantine — is permanent and **must not** be retried
    /// (retrying a checksum failure re-reads the same rotten bytes).
    /// This classification drives the bounded-retry path in
    /// [`crate::fault::with_retry`] and the client-side retry policy.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io { kind, .. } => matches!(
                kind,
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            ),
            StorageError::FrameBudgetExhausted { .. } => true,
            _ => false,
        }
    }
}

impl std::error::Error for StorageError {}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> StorageError {
    move |e| StorageError::Io { kind: e.kind(), context }
}

/// Writes a page file: create, append pages, then [`finish`](PageFileWriter::finish) with the
/// metadata blob to stamp the header.
///
/// The header is written last (the page count is only known then); a
/// writer that is dropped without `finish` leaves a file with a zeroed
/// header, which readers reject as [`StorageError::BadMagic`] — a
/// half-written file can never be mistaken for a complete one.
///
/// ```no_run
/// use neurospatial_storage::{PageFile, PageFileWriter};
///
/// let mut w = PageFileWriter::create("circuit.flat", 4096)?;
/// w.append_page(b"first page payload")?;
/// w.append_page(b"second page payload")?;
/// w.finish(b"index metadata")?;
/// let f = PageFile::open("circuit.flat")?;
/// assert_eq!(f.page_count(), 2);
/// # Ok::<(), neurospatial_storage::StorageError>(())
/// ```
#[derive(Debug)]
pub struct PageFileWriter {
    file: File,
    page_size: usize,
    pages: u64,
    buf: Vec<u8>,
}

impl PageFileWriter {
    /// Create (truncating) `path` with the given page size.
    ///
    /// `page_size` must lie in [`MIN_PAGE_SIZE`]`..=`[`MAX_PAGE_SIZE`];
    /// payloads of up to `page_size − 16` bytes fit on a page.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self, StorageError> {
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            return Err(StorageError::Corrupt(format!(
                "page size {page_size} outside [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]"
            )));
        }
        let mut file = File::create(path).map_err(io_err("create"))?;
        // Placeholder header — zeroed, so it fails the magic check until
        // finish() overwrites it.
        file.write_all(&[0u8; FILE_HEADER_BYTES]).map_err(io_err("write header"))?;
        Ok(PageFileWriter { file, page_size, pages: 0, buf: vec![0u8; page_size] })
    }

    /// Number of pages appended so far.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// The page size this writer was created with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Append one page holding `payload`.
    ///
    /// Fails with [`StorageError::Corrupt`] if the payload does not fit
    /// in `page_size − 16` bytes.
    pub fn append_page(&mut self, payload: &[u8]) -> Result<(), StorageError> {
        let cap = self.page_size - PAGE_HEADER_BYTES;
        if payload.len() > cap {
            return Err(StorageError::Corrupt(format!(
                "payload of {} bytes exceeds page capacity {cap}",
                payload.len()
            )));
        }
        let index = u32::try_from(self.pages)
            .map_err(|_| StorageError::Corrupt("more than u32::MAX pages".into()))?;
        self.buf.fill(0);
        self.buf[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf[4..8].copy_from_slice(&index.to_le_bytes());
        let mut h = Checksum64::new();
        h.update(&self.buf[0..8]);
        h.update(payload);
        self.buf[8..16].copy_from_slice(&h.finish().to_le_bytes());
        self.buf[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + payload.len()].copy_from_slice(payload);
        self.file.write_all(&self.buf).map_err(io_err("write page"))?;
        self.pages += 1;
        Ok(())
    }

    /// Write the metadata blob, stamp the header, and sync to disk.
    pub fn finish(mut self, meta: &[u8]) -> Result<(), StorageError> {
        self.file.write_all(meta).map_err(io_err("write metadata"))?;

        let mut header = [0u8; FILE_HEADER_BYTES];
        header[0..4].copy_from_slice(&PAGE_FILE_MAGIC);
        header[4..8].copy_from_slice(&PAGE_FILE_VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&(self.page_size as u32).to_le_bytes());
        // 12..16 reserved.
        header[16..24].copy_from_slice(&self.pages.to_le_bytes());
        header[24..32].copy_from_slice(&(meta.len() as u64).to_le_bytes());
        header[32..40].copy_from_slice(&checksum64(meta).to_le_bytes());
        let hsum = checksum64(&header[0..40]);
        header[40..48].copy_from_slice(&hsum.to_le_bytes());

        self.file.seek(SeekFrom::Start(0)).map_err(io_err("seek to header"))?;
        self.file.write_all(&header).map_err(io_err("write header"))?;
        self.file.sync_all().map_err(io_err("sync"))?;
        Ok(())
    }
}

/// A validated, read-only page file.
///
/// `open` verifies the header (magic, version, page-size sanity, header
/// checksum, exact file length) and the metadata blob's checksum; after
/// that, [`read_page_into`](Self::read_page_into) serves positioned
/// page reads — concurrently from any number of threads — verifying
/// each page's checksum and stored index on **every** read.
#[derive(Debug)]
pub struct PageFile {
    file: FileReader,
    page_size: usize,
    page_count: u64,
    meta: Vec<u8>,
}

/// Positioned-read wrapper: lock-free `read_at` on unix, a mutexed
/// seek+read fallback elsewhere.
#[derive(Debug)]
struct FileReader {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl FileReader {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            FileReader { file }
        }
        #[cfg(not(unix))]
        {
            FileReader { file: std::sync::Mutex::new(file) }
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            let mut f = self.file.lock().unwrap_or_else(|p| p.into_inner());
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }
}

impl PageFile {
    /// Open and validate `path`.
    ///
    /// Total on untrusted input: every way the file can be malformed —
    /// missing, shorter than a header, wrong magic, unknown version,
    /// nonsensical page size, corrupt header checksum, truncated page
    /// array or metadata, metadata checksum mismatch — returns the
    /// corresponding typed [`StorageError`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        let mut file = File::open(path).map_err(io_err("open"))?;
        let file_len = file.metadata().map_err(io_err("stat"))?.len();

        let mut header = [0u8; FILE_HEADER_BYTES];
        if file_len < FILE_HEADER_BYTES as u64 {
            return Err(StorageError::Truncated {
                expected: FILE_HEADER_BYTES as u64,
                got: file_len,
            });
        }
        file.read_exact(&mut header).map_err(io_err("read header"))?;
        if header[0..4] != PAGE_FILE_MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != PAGE_FILE_VERSION {
            return Err(StorageError::BadVersion(version));
        }
        // Checksum before trusting the remaining fields: a bit-flipped
        // page count or meta length would otherwise drive the length
        // check with garbage.
        let stored_hsum = u64::from_le_bytes(header[40..48].try_into().expect("8 bytes"));
        if checksum64(&header[0..40]) != stored_hsum {
            return Err(StorageError::HeaderChecksum);
        }
        let page_size = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            return Err(StorageError::Corrupt(format!("page size {page_size} out of range")));
        }
        let page_count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let meta_len = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        let meta_sum = u64::from_le_bytes(header[32..40].try_into().expect("8 bytes"));

        let expected = (FILE_HEADER_BYTES as u64)
            .checked_add(
                page_count
                    .checked_mul(page_size as u64)
                    .ok_or(StorageError::Corrupt("page count × page size overflows".to_string()))?,
            )
            .and_then(|n| n.checked_add(meta_len))
            .ok_or(StorageError::Corrupt("declared size overflows".to_string()))?;
        if file_len != expected {
            return Err(StorageError::Truncated { expected, got: file_len });
        }
        if meta_len > (1 << 32) {
            return Err(StorageError::Corrupt(format!("metadata blob of {meta_len} bytes")));
        }

        let mut meta = vec![0u8; meta_len as usize];
        file.seek(SeekFrom::Start(FILE_HEADER_BYTES as u64 + page_count * page_size as u64))
            .map_err(io_err("seek to metadata"))?;
        file.read_exact(&mut meta).map_err(io_err("read metadata"))?;
        if checksum64(&meta) != meta_sum {
            return Err(StorageError::Corrupt("metadata failed its checksum".to_string()));
        }

        Ok(PageFile { file: FileReader::new(file), page_size, page_count, meta })
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// The page size (including the 16-byte per-page header).
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Largest payload a page of this file can hold.
    pub fn payload_capacity(&self) -> usize {
        self.page_size - PAGE_HEADER_BYTES
    }

    /// The metadata blob (checksum-verified at open).
    pub fn meta(&self) -> &[u8] {
        &self.meta
    }

    /// Read page `page`'s payload into `buf` (cleared and refilled),
    /// verifying the page checksum and stored page index.
    ///
    /// Thread-safe: concurrent reads of different (or the same) pages
    /// need no external locking.
    pub fn read_page_into(&self, page: u64, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        if page >= self.page_count {
            return Err(StorageError::PageOutOfRange { page, count: self.page_count });
        }
        buf.clear();
        buf.resize(self.page_size, 0);
        let offset = FILE_HEADER_BYTES as u64 + page * self.page_size as u64;
        self.file.read_exact_at(buf, offset).map_err(io_err("read page"))?;

        let payload_len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
        let stored_index = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        let stored_sum = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        if payload_len > self.page_size - PAGE_HEADER_BYTES {
            return Err(StorageError::PageChecksum { page });
        }
        let mut h = Checksum64::new();
        h.update(&buf[0..8]);
        h.update(&buf[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + payload_len]);
        if h.finish() != stored_sum || u64::from(stored_index) != page {
            return Err(StorageError::PageChecksum { page });
        }
        // Shrink to the payload alone: rotate it to the front, truncate.
        buf.drain(..PAGE_HEADER_BYTES);
        buf.truncate(payload_len);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("nspf-test-{}-{tag}-{n}", std::process::id()))
    }

    struct TempFile(PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn write_sample(path: &Path, pages: &[&[u8]], meta: &[u8]) {
        let mut w = PageFileWriter::create(path, 64).expect("create");
        for p in pages {
            w.append_page(p).expect("append");
        }
        w.finish(meta).expect("finish");
    }

    #[test]
    fn roundtrip() {
        let t = TempFile(temp_path("roundtrip"));
        write_sample(&t.0, &[b"alpha", b"beta-beta", b""], b"the metadata");
        let f = PageFile::open(&t.0).expect("open");
        assert_eq!(f.page_count(), 3);
        assert_eq!(f.page_size(), 64);
        assert_eq!(f.meta(), b"the metadata");
        let mut buf = Vec::new();
        f.read_page_into(0, &mut buf).expect("page 0");
        assert_eq!(buf, b"alpha");
        f.read_page_into(1, &mut buf).expect("page 1");
        assert_eq!(buf, b"beta-beta");
        f.read_page_into(2, &mut buf).expect("page 2");
        assert!(buf.is_empty());
        assert_eq!(
            f.read_page_into(3, &mut buf),
            Err(StorageError::PageOutOfRange { page: 3, count: 3 })
        );
    }

    #[test]
    fn oversized_payload_rejected() {
        let t = TempFile(temp_path("oversize"));
        let mut w = PageFileWriter::create(&t.0, 64).expect("create");
        let err = w.append_page(&[0u8; 64]).expect_err("must not fit");
        assert!(matches!(err, StorageError::Corrupt(_)));
        assert!(w.append_page(&[0u8; 48]).is_ok(), "exactly page_size - 16 fits");
    }

    #[test]
    fn unfinished_file_is_rejected() {
        let t = TempFile(temp_path("unfinished"));
        let mut w = PageFileWriter::create(&t.0, 64).expect("create");
        w.append_page(b"x").expect("append");
        drop(w); // never finished: header stays zeroed
        assert_eq!(PageFile::open(&t.0).expect_err("unfinished"), StorageError::BadMagic);
    }

    #[test]
    fn truncation_detected() {
        let t = TempFile(temp_path("trunc"));
        write_sample(&t.0, &[b"one", b"two"], b"meta");
        let bytes = std::fs::read(&t.0).expect("read");
        for cut in [bytes.len() - 1, bytes.len() - 4, FILE_HEADER_BYTES + 10, 10, 0] {
            std::fs::write(&t.0, &bytes[..cut]).expect("write");
            let err = PageFile::open(&t.0).expect_err("truncated");
            assert!(matches!(err, StorageError::Truncated { .. }), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn bit_flips_detected_where_they_land() {
        let t = TempFile(temp_path("bitflip"));
        write_sample(&t.0, &[b"payload-zero", b"payload-one"], b"metadata!");
        let bytes = std::fs::read(&t.0).expect("read");
        // Flip a bit in page 1's payload: open succeeds (pages are
        // verified lazily), the read of page 1 fails, page 0 still reads.
        let mut flipped = bytes.clone();
        flipped[FILE_HEADER_BYTES + 64 + PAGE_HEADER_BYTES + 3] ^= 0x10;
        std::fs::write(&t.0, &flipped).expect("write");
        let f = PageFile::open(&t.0).expect("open");
        let mut buf = Vec::new();
        f.read_page_into(0, &mut buf).expect("page 0 intact");
        assert_eq!(f.read_page_into(1, &mut buf), Err(StorageError::PageChecksum { page: 1 }));

        // Flip a bit in the header: nothing can be trusted.
        let mut flipped = bytes.clone();
        flipped[17] ^= 0x01; // page count
        std::fs::write(&t.0, &flipped).expect("write");
        assert_eq!(PageFile::open(&t.0).expect_err("header"), StorageError::HeaderChecksum);

        // Flip a bit in the metadata: caught at open.
        let mut flipped = bytes;
        let meta_off = FILE_HEADER_BYTES + 2 * 64;
        flipped[meta_off + 2] ^= 0x40;
        std::fs::write(&t.0, &flipped).expect("write");
        assert!(matches!(PageFile::open(&t.0), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn wrong_version_with_valid_checksum() {
        let t = TempFile(temp_path("version"));
        write_sample(&t.0, &[b"x"], b"");
        let mut bytes = std::fs::read(&t.0).expect("read");
        // A future version with a *correct* checksum must still be
        // rejected as BadVersion, not HeaderChecksum.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let sum = checksum64(&bytes[0..40]);
        bytes[40..48].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&t.0, &bytes).expect("write");
        assert_eq!(PageFile::open(&t.0).expect_err("version"), StorageError::BadVersion(99));
    }

    #[test]
    fn swapped_pages_detected_by_stored_index() {
        let t = TempFile(temp_path("swap"));
        write_sample(&t.0, &[b"aaaa", b"bbbb"], b"");
        let mut bytes = std::fs::read(&t.0).expect("read");
        // Swap the two page slots wholesale: each page's checksum is
        // intact, but the stored index no longer matches the slot.
        let (a, b) = (FILE_HEADER_BYTES, FILE_HEADER_BYTES + 64);
        for i in 0..64 {
            bytes.swap(a + i, b + i);
        }
        std::fs::write(&t.0, &bytes).expect("write");
        let f = PageFile::open(&t.0).expect("open");
        let mut buf = Vec::new();
        assert_eq!(f.read_page_into(0, &mut buf), Err(StorageError::PageChecksum { page: 0 }));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = PageFile::open("/nonexistent/nspf").expect_err("missing");
        assert!(matches!(err, StorageError::Io { context: "open", .. }));
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        let t = TempFile(temp_path("garbage"));
        let mut payload = Vec::new();
        for seed in 0..200u64 {
            // Deterministic pseudo-random garbage of varying lengths.
            payload.clear();
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..(seed * 7 % 300) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                payload.push(x as u8);
            }
            std::fs::write(&t.0, &payload).expect("write");
            let _ = PageFile::open(&t.0); // must return, not panic
        }
    }

    #[test]
    fn checksum_is_stable_fnv1a() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(checksum64(b""), 0xcbf29ce484222325);
        assert_eq!(checksum64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(checksum64(b"foobar"), 0x85944171f73967e8);
        let mut h = Checksum64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), checksum64(b"foobar"));
    }
}
