//! The pinning buffer pool: a bounded set of in-memory page frames over
//! a [`crate::PageFile`].
//!
//! This is the *real* buffer manager of the out-of-core stack (the
//! simulation-era [`BufferPool`](crate::BufferPool) remains for the
//! deterministic cost-model experiments). A [`FramePool`] owns a fixed
//! budget of frames; [`get`](FramePool::get) returns a [`FrameGuard`]
//! that **pins** the frame for as long as the guard lives, and
//! [`prefetch`](FramePool::prefetch) loads pages in the background
//! without pinning them.
//!
//! ## Pin-guard invariants
//!
//! - A pinned frame is **never** evicted: victim selection skips any
//!   frame with a nonzero pin count (and any frame mid-load).
//! - Dropping the guard unpins. Guards also hold their own reference to
//!   the frame's data (`Arc`), so even a hypothetical eviction bug could
//!   not invalidate the bytes a guard dereferences — the safety story
//!   needs no `unsafe`.
//! - If every frame is pinned and a new page is demanded, `get` fails
//!   with [`StorageError::FrameBudgetExhausted`] rather than deadlock:
//!   the budget bounds how many pages a caller may hold pinned at once.
//!   (FLAT's crawl pins exactly one page at a time, which is why even a
//!   one-frame budget executes queries correctly.)
//!
//! ## Eviction
//!
//! Two policies, chosen at construction ([`EvictionPolicy`]):
//!
//! - **CLOCK** (the default): frames get a reference bit on every hit;
//!   the clock hand sweeps, clearing bits, and evicts the first
//!   unreferenced, unpinned frame. One bit per frame, no list
//!   maintenance on the hit path — the classic second-chance
//!   approximation of LRU.
//! - **LRU**: exact least-recently-used by access tick, `O(frames)` per
//!   eviction. Useful as the reference policy in tests.
//!
//! ## Concurrent loading
//!
//! A frame being filled from disk is marked *loading*; the lock is
//! **not** held across the read. A second thread demanding the same
//! page waits on a condvar instead of issuing a duplicate read — this
//! is also how a demand read overlaps with an in-flight prefetch of the
//! same page (the demand request waits only for the remainder of the
//! read, which is the stall-hiding effect the SCOUT benchmarks
//! measure).

use crate::fault::PageIo;
use crate::file::StorageError;
use std::collections::{HashMap, HashSet};
use std::ops::Deref;
use std::sync::{Arc, Condvar, Mutex};

/// Replacement policy of a [`FramePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Second-chance CLOCK sweep (default).
    #[default]
    Clock,
    /// Exact least-recently-used.
    Lru,
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictionPolicy::Clock => write!(f, "clock"),
            EvictionPolicy::Lru => write!(f, "lru"),
        }
    }
}

impl std::str::FromStr for EvictionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "clock" => Ok(EvictionPolicy::Clock),
            "lru" => Ok(EvictionPolicy::Lru),
            other => Err(format!("unknown eviction policy `{other}` (expected clock|lru)")),
        }
    }
}

/// Cumulative counters of a [`FramePool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Demand requests served without a disk read (resident or
    /// already in flight).
    pub hits: u64,
    /// Demand requests that had to read from disk.
    pub misses: u64,
    /// Resident pages dropped to make room.
    pub evictions: u64,
    /// Pages loaded by [`FramePool::prefetch`] (not counted as hits or
    /// misses).
    pub prefetched: u64,
    /// Demand hits whose frame was originally loaded by a prefetch —
    /// the "useful prefetch" count (each prefetched frame is counted at
    /// most once).
    pub prefetch_hits: u64,
}

#[derive(Debug)]
struct Frame {
    page: u64,
    /// Payload bytes; `None` while loading.
    data: Option<Arc<Vec<u8>>>,
    pins: u32,
    /// CLOCK reference bit.
    referenced: bool,
    /// LRU access tick.
    used: u64,
    loading: bool,
    /// Set when the frame was filled by a prefetch and not yet claimed
    /// by a demand hit.
    from_prefetch: bool,
}

#[derive(Debug, Default)]
struct Inner {
    /// page id → frame slot.
    map: HashMap<u64, usize>,
    frames: Vec<Frame>,
    /// Slots never used or fully released.
    free: Vec<usize>,
    /// CLOCK hand.
    hand: usize,
    /// LRU tick source.
    tick: u64,
    stats: FrameStats,
    /// Pages that failed permanently: demands are refused with
    /// [`StorageError::Quarantined`] instead of re-reading known-bad
    /// bytes, and prefetch skips them. Populated explicitly by the
    /// engine above (the pool never self-quarantines — a failed load
    /// may be transient, and retrying it is the caller's decision).
    quarantined: HashSet<u64>,
}

/// A pinning buffer pool with a fixed frame budget.
///
/// See the [module docs](self) for the invariants. All methods take
/// `&self`; the pool is safe to share across threads (`Arc<FramePool>`).
#[derive(Debug)]
pub struct FramePool {
    inner: Mutex<Inner>,
    loaded: Condvar,
    policy: EvictionPolicy,
    capacity: usize,
}

impl FramePool {
    /// A pool of `frames` frames (clamped to at least 1) using `policy`.
    pub fn new(frames: usize, policy: EvictionPolicy) -> Self {
        FramePool {
            inner: Mutex::new(Inner::default()),
            loaded: Condvar::new(),
            policy,
            capacity: frames.max(1),
        }
    }

    /// The frame budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> FrameStats {
        self.lock().stats
    }

    /// Number of resident (loaded) pages.
    pub fn resident(&self) -> usize {
        self.lock().map.len()
    }

    /// Drop every unpinned frame and reset the counters. Pinned frames
    /// stay resident (their guards remain valid) but their statistics
    /// history is gone.
    pub fn clear(&self) {
        let mut inner = self.lock();
        let mut keep = Vec::new();
        for (&page, &slot) in inner.map.iter() {
            if inner.frames[slot].pins > 0 || inner.frames[slot].loading {
                keep.push((page, slot));
            }
        }
        let kept: HashMap<u64, usize> = keep.into_iter().collect();
        for slot in 0..inner.frames.len() {
            if !kept.values().any(|&s| s == slot) {
                inner.frames[slot].data = None;
                if !inner.free.contains(&slot) {
                    inner.free.push(slot);
                }
            }
        }
        inner.map = kept;
        inner.stats = FrameStats::default();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Pin `page`, reading it from `file` on a miss. The returned guard
    /// dereferences to the page payload and unpins on drop.
    ///
    /// `file` is any [`PageIo`] — the production [`crate::PageFile`] or a
    /// fault-injecting wrapper.
    pub fn get<'p, F>(&'p self, page: u64, file: &F) -> Result<FrameGuard<'p>, StorageError>
    where
        F: PageIo + ?Sized,
    {
        self.get_with(page, |buf| file.read_page_into(page, buf))
    }

    /// Move `page` into the quarantine set: subsequent demands fail fast
    /// with [`StorageError::Quarantined`] and prefetch skips it. Any
    /// resident unpinned copy is dropped (a pinned copy stays valid for
    /// its guards and is refused to *new* demands).
    pub fn quarantine_page(&self, page: u64) {
        let mut inner = self.lock();
        if !inner.quarantined.insert(page) {
            return;
        }
        crate::metrics::frame_obs().quarantined.inc();
        if let Some(&slot) = inner.map.get(&page) {
            if inner.frames[slot].pins == 0 && !inner.frames[slot].loading {
                inner.map.remove(&page);
                inner.frames[slot].data = None;
                inner.free.push(slot);
            }
        }
    }

    /// Whether `page` is quarantined.
    pub fn is_quarantined(&self, page: u64) -> bool {
        self.lock().quarantined.contains(&page)
    }

    /// The quarantined pages, ascending. Empty in a healthy pool.
    pub fn quarantined(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self.lock().quarantined.iter().copied().collect();
        pages.sort_unstable();
        pages
    }

    /// Like [`get`](Self::get) with a caller-supplied loader — the hook
    /// unit tests use to observe and fail loads deterministically.
    pub fn get_with<'p, F>(&'p self, page: u64, load: F) -> Result<FrameGuard<'p>, StorageError>
    where
        F: FnOnce(&mut Vec<u8>) -> Result<(), StorageError>,
    {
        let mut inner = self.lock();
        if inner.quarantined.contains(&page) {
            return Err(StorageError::Quarantined { pages: vec![page] });
        }
        // Classify hit/miss exactly once, on first observation.
        let mut counted = false;
        loop {
            if let Some(&slot) = inner.map.get(&page) {
                if !counted {
                    inner.stats.hits += 1;
                    crate::metrics::frame_obs().hits.inc();
                    counted = true;
                }
                if inner.frames[slot].loading {
                    // Someone else (a prefetch worker, usually) is mid-read:
                    // wait for the remainder instead of duplicating the I/O.
                    inner = self.loaded.wait(inner).unwrap_or_else(|p| p.into_inner());
                    continue;
                }
                let fr = &mut inner.frames[slot];
                if fr.from_prefetch {
                    fr.from_prefetch = false;
                    inner.stats.prefetch_hits += 1;
                    crate::metrics::frame_obs().prefetch_hits.inc();
                }
                return Ok(self.pin(&mut inner, slot));
            }
            if !counted {
                inner.stats.misses += 1;
                crate::metrics::frame_obs().misses.inc();
                counted = true;
            }
            match self.acquire_slot(&mut inner) {
                Slot::Free(slot) => {
                    // Reserve the slot as loading, read without the lock.
                    inner.frames[slot].page = page;
                    inner.frames[slot].loading = true;
                    inner.frames[slot].data = None;
                    inner.map.insert(page, slot);
                    drop(inner);

                    let mut buf = Vec::new();
                    let res = {
                        let fobs = crate::metrics::frame_obs();
                        let _io = neurospatial_obs::span_timed(
                            neurospatial_obs::Stage::PageIo,
                            &fobs.read_latency,
                        );
                        load(&mut buf)
                    };
                    let mut inner = self.lock();
                    match res {
                        Ok(()) => {
                            let fr = &mut inner.frames[slot];
                            fr.data = Some(Arc::new(buf));
                            fr.loading = false;
                            fr.from_prefetch = false;
                            let guard = self.pin(&mut inner, slot);
                            drop(inner);
                            self.loaded.notify_all();
                            return Ok(guard);
                        }
                        Err(e) => {
                            inner.map.remove(&page);
                            let fr = &mut inner.frames[slot];
                            fr.loading = false;
                            fr.data = None;
                            inner.free.push(slot);
                            drop(inner);
                            self.loaded.notify_all();
                            return Err(e);
                        }
                    }
                }
                Slot::Wait => {
                    inner = self.loaded.wait(inner).unwrap_or_else(|p| p.into_inner());
                }
                Slot::Exhausted => {
                    return Err(StorageError::FrameBudgetExhausted { frames: self.capacity });
                }
            }
        }
    }

    /// Load `page` into the pool without pinning it — best-effort, for
    /// background prefetch workers. Returns `Ok(true)` if a read was
    /// issued, `Ok(false)` if the page was already resident/in flight or
    /// no frame could be reclaimed without waiting (prefetching never
    /// waits and never evicts under pressure it cannot see).
    pub fn prefetch<F>(&self, page: u64, file: &F) -> Result<bool, StorageError>
    where
        F: PageIo + ?Sized,
    {
        self.prefetch_with(page, |buf| file.read_page_into(page, buf))
    }

    /// Like [`prefetch`](Self::prefetch) with a caller-supplied loader.
    pub fn prefetch_with<F>(&self, page: u64, load: F) -> Result<bool, StorageError>
    where
        F: FnOnce(&mut Vec<u8>) -> Result<(), StorageError>,
    {
        let mut inner = self.lock();
        if inner.quarantined.contains(&page) || inner.map.contains_key(&page) {
            return Ok(false);
        }
        let slot = match self.acquire_slot(&mut inner) {
            Slot::Free(slot) => slot,
            Slot::Wait | Slot::Exhausted => return Ok(false),
        };
        inner.frames[slot].page = page;
        inner.frames[slot].loading = true;
        inner.frames[slot].data = None;
        inner.map.insert(page, slot);
        drop(inner);

        let mut buf = Vec::new();
        let res = load(&mut buf);
        let mut inner = self.lock();
        match res {
            Ok(()) => {
                inner.stats.prefetched += 1;
                let fobs = crate::metrics::frame_obs();
                fobs.prefetched.inc();
                fobs.resident.set(inner.map.len() as i64);
                inner.tick += 1;
                let tick = inner.tick;
                let fr = &mut inner.frames[slot];
                fr.data = Some(Arc::new(buf));
                fr.loading = false;
                fr.from_prefetch = true;
                fr.referenced = true;
                fr.used = tick;
                drop(inner);
                self.loaded.notify_all();
                Ok(true)
            }
            Err(e) => {
                inner.map.remove(&page);
                let fr = &mut inner.frames[slot];
                fr.loading = false;
                fr.data = None;
                inner.free.push(slot);
                drop(inner);
                self.loaded.notify_all();
                Err(e)
            }
        }
    }

    fn pin<'p>(&'p self, inner: &mut Inner, slot: usize) -> FrameGuard<'p> {
        crate::metrics::frame_obs().resident.set(inner.map.len() as i64);
        inner.tick += 1;
        let tick = inner.tick;
        let fr = &mut inner.frames[slot];
        fr.pins += 1;
        fr.referenced = true;
        fr.used = tick;
        let data = Arc::clone(fr.data.as_ref().expect("pinning a loaded frame"));
        FrameGuard { pool: self, slot, data }
    }

    /// Find a frame to (re)use: a never-used slot, a freed slot, or an
    /// evicted victim.
    fn acquire_slot(&self, inner: &mut Inner) -> Slot {
        if inner.frames.len() < self.capacity {
            inner.frames.push(Frame {
                page: 0,
                data: None,
                pins: 0,
                referenced: false,
                used: 0,
                loading: false,
                from_prefetch: false,
            });
            return Slot::Free(inner.frames.len() - 1);
        }
        if let Some(slot) = inner.free.pop() {
            return Slot::Free(slot);
        }
        let victim = match self.policy {
            EvictionPolicy::Clock => Self::clock_victim(inner),
            EvictionPolicy::Lru => Self::lru_victim(inner),
        };
        match victim {
            Some(slot) => {
                let page = inner.frames[slot].page;
                inner.map.remove(&page);
                inner.frames[slot].data = None;
                inner.stats.evictions += 1;
                crate::metrics::frame_obs().evictions.inc();
                Slot::Free(slot)
            }
            None => {
                // Nothing evictable. If a load is in flight it will finish
                // and become evictable; otherwise every frame is pinned.
                if inner.frames.iter().any(|f| f.loading) {
                    Slot::Wait
                } else {
                    Slot::Exhausted
                }
            }
        }
    }

    fn clock_victim(inner: &mut Inner) -> Option<usize> {
        let n = inner.frames.len();
        // Two full sweeps: the first clears reference bits, the second
        // must then find any evictable frame.
        for _ in 0..2 * n {
            let slot = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let fr = &mut inner.frames[slot];
            if fr.pins > 0 || fr.loading || fr.data.is_none() {
                continue;
            }
            if fr.referenced {
                fr.referenced = false;
            } else {
                return Some(slot);
            }
        }
        None
    }

    fn lru_victim(inner: &mut Inner) -> Option<usize> {
        inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pins == 0 && !f.loading && f.data.is_some())
            .min_by_key(|(_, f)| f.used)
            .map(|(slot, _)| slot)
    }
}

enum Slot {
    Free(usize),
    Wait,
    Exhausted,
}

/// A pinned page: dereferences to the page payload, unpins on drop.
///
/// The guard owns its own `Arc` to the bytes, so the data it exposes
/// stays valid for the guard's whole lifetime regardless of what the
/// pool does (the pin additionally guarantees the pool keeps the page
/// *resident*, so re-`get`ting it is free).
#[derive(Debug)]
pub struct FrameGuard<'p> {
    pool: &'p FramePool,
    slot: usize,
    data: Arc<Vec<u8>>,
}

impl Deref for FrameGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for FrameGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.pool.lock();
        let fr = &mut inner.frames[self.slot];
        fr.pins = fr.pins.saturating_sub(1);
        drop(inner);
        // A waiter blocked on Slot::Wait may now find an evictable frame.
        self.pool.loaded.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_ok(bytes: &'static [u8]) -> impl FnOnce(&mut Vec<u8>) -> Result<(), StorageError> {
        move |buf| {
            buf.clear();
            buf.extend_from_slice(bytes);
            Ok(())
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let pool = FramePool::new(4, EvictionPolicy::Clock);
        {
            let g = pool.get_with(7, load_ok(b"seven")).expect("load");
            assert_eq!(&*g, b"seven");
        }
        let g = pool.get_with(7, load_ok(b"must not reload")).expect("hit");
        assert_eq!(&*g, b"seven", "hit serves the cached bytes");
        drop(g);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn eviction_never_reclaims_a_pinned_frame() {
        for policy in [EvictionPolicy::Clock, EvictionPolicy::Lru] {
            let pool = FramePool::new(2, policy);
            let pinned = pool.get_with(0, load_ok(b"pinned")).expect("load");
            // Cycle many pages through the remaining frame.
            for page in 1..20u64 {
                let g = pool.get_with(page, load_ok(b"transient")).expect("load");
                drop(g);
            }
            // The pinned page never left the pool: re-get is a hit.
            assert_eq!(&*pinned, b"pinned");
            let before = pool.stats().misses;
            let again = pool.get_with(0, load_ok(b"reload means eviction happened")).expect("hit");
            assert_eq!(&*again, b"pinned", "policy {policy}");
            assert_eq!(pool.stats().misses, before, "no reload for the pinned page");
            assert_eq!(pool.stats().evictions, 18, "the transient pages evicted each other");
        }
    }

    #[test]
    fn all_pinned_is_a_typed_error_not_a_deadlock() {
        let pool = FramePool::new(1, EvictionPolicy::Clock);
        let _g = pool.get_with(0, load_ok(b"only frame")).expect("load");
        let err = pool.get_with(1, load_ok(b"no room")).expect_err("budget exhausted");
        assert_eq!(err, StorageError::FrameBudgetExhausted { frames: 1 });
        // After unpinning, the demand succeeds.
        drop(_g);
        assert!(pool.get_with(1, load_ok(b"fits now")).is_ok());
    }

    #[test]
    fn budget_of_one_frame_still_serves_sequential_demands() {
        let pool = FramePool::new(1, EvictionPolicy::Lru);
        for page in 0..10u64 {
            let g = pool.get_with(page, load_ok(b"x")).expect("load");
            drop(g);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 10);
        assert_eq!(s.evictions, 9);
    }

    #[test]
    fn failed_load_propagates_and_frees_the_slot() {
        let pool = FramePool::new(2, EvictionPolicy::Clock);
        let err = pool
            .get_with(5, |_| Err(StorageError::PageChecksum { page: 5 }))
            .expect_err("load fails");
        assert_eq!(err, StorageError::PageChecksum { page: 5 });
        assert_eq!(pool.resident(), 0);
        // The slot is reusable and a later load of the same page retries.
        let g = pool.get_with(5, load_ok(b"second try")).expect("retry");
        assert_eq!(&*g, b"second try");
    }

    #[test]
    fn prefetch_counts_separately_and_turns_misses_into_hits() {
        let pool = FramePool::new(4, EvictionPolicy::Clock);
        assert!(pool.prefetch_with(3, load_ok(b"pre")).expect("prefetch"));
        assert!(!pool.prefetch_with(3, load_ok(b"dup")).expect("resident skip"));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.prefetched), (0, 0, 1));
        let g = pool.get_with(3, load_ok(b"never runs")).expect("hit");
        assert_eq!(&*g, b"pre");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.prefetch_hits), (1, 0, 1));
        drop(g);
        // A second demand hit is no longer a *prefetch* hit.
        let _ = pool.get_with(3, load_ok(b"never")).expect("hit");
        assert_eq!(pool.stats().prefetch_hits, 1);
    }

    #[test]
    fn prefetch_never_errors_on_a_full_pinned_pool() {
        let pool = FramePool::new(1, EvictionPolicy::Clock);
        let _g = pool.get_with(0, load_ok(b"pinned")).expect("load");
        assert!(!pool.prefetch_with(1, load_ok(b"skip")).expect("best effort"));
        assert_eq!(pool.stats().prefetched, 0);
    }

    #[test]
    fn clock_gives_referenced_frames_a_second_chance() {
        let pool = FramePool::new(2, EvictionPolicy::Clock);
        drop(pool.get_with(0, load_ok(b"a")).expect("load"));
        drop(pool.get_with(1, load_ok(b"b")).expect("load"));
        // Re-reference page 0, then demand page 2: the sweep clears both
        // bits and evicts page... the first unreferenced slot after the
        // hand. Re-referencing 0 means 1 is evicted first under LRU; the
        // CLOCK result depends on the hand, so just assert the pinned
        // invariant indirectly: page 0 stays when it is the only
        // referenced one at sweep start.
        drop(pool.get_with(0, load_ok(b"a")).expect("hit"));
        drop(pool.get_with(2, load_ok(b"c")).expect("load"));
        // Pool holds 2 of {0, 1, 2}; exactly one eviction happened.
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let pool = FramePool::new(2, EvictionPolicy::Lru);
        drop(pool.get_with(0, load_ok(b"a")).expect("load"));
        drop(pool.get_with(1, load_ok(b"b")).expect("load"));
        drop(pool.get_with(0, load_ok(b"a")).expect("hit")); // 1 is now LRU
        drop(pool.get_with(2, load_ok(b"c")).expect("load")); // evicts 1
        let before = pool.stats().misses;
        drop(pool.get_with(0, load_ok(b"a")).expect("still a hit"));
        assert_eq!(pool.stats().misses, before, "page 0 survived the eviction");
    }

    #[test]
    fn concurrent_same_page_demands_read_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = Arc::new(FramePool::new(4, EvictionPolicy::Clock));
        let reads = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let reads = Arc::clone(&reads);
                scope.spawn(move || {
                    let g = pool
                        .get_with(9, |buf| {
                            reads.fetch_add(1, Ordering::Relaxed);
                            // Make the load window wide enough to overlap.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            buf.extend_from_slice(b"once");
                            Ok(())
                        })
                        .expect("load");
                    assert_eq!(&*g, b"once");
                });
            }
        });
        assert_eq!(reads.load(Ordering::Relaxed), 1, "one read served all eight threads");
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn quarantined_pages_fail_fast_and_are_never_prefetched() {
        let pool = FramePool::new(4, EvictionPolicy::Clock);
        drop(pool.get_with(2, load_ok(b"resident")).expect("load"));
        pool.quarantine_page(2);
        pool.quarantine_page(2); // idempotent
        assert!(pool.is_quarantined(2));
        assert_eq!(pool.quarantined(), vec![2]);
        assert_eq!(pool.resident(), 0, "the resident copy was dropped");
        let err = pool
            .get_with(2, |_| panic!("quarantine must refuse before loading"))
            .expect_err("quarantined");
        assert_eq!(err, StorageError::Quarantined { pages: vec![2] });
        assert!(
            !pool.prefetch_with(2, |_| panic!("prefetch must skip")).expect("best effort"),
            "prefetch silently skips quarantined pages"
        );
        // Healthy pages are unaffected.
        assert_eq!(&*pool.get_with(3, load_ok(b"fine")).expect("load"), b"fine");
    }

    #[test]
    fn quarantine_keeps_pinned_frames_valid_for_existing_guards() {
        let pool = FramePool::new(2, EvictionPolicy::Clock);
        let g = pool.get_with(0, load_ok(b"pinned")).expect("load");
        pool.quarantine_page(0);
        assert_eq!(&*g, b"pinned", "existing guards keep their bytes");
        // New demands are refused even while the old guard lives.
        assert_eq!(
            pool.get_with(0, load_ok(b"no")).expect_err("refused"),
            StorageError::Quarantined { pages: vec![0] }
        );
        drop(g);
    }

    #[test]
    fn prefetch_yields_silently_while_every_frame_is_pinned() {
        // Satellite contract: background prefetch against a fully pinned
        // pool must neither error the foreground query nor deadlock — it
        // yields, and the stats prove nothing was force-loaded.
        let pool = Arc::new(FramePool::new(2, EvictionPolicy::Clock));
        let g0 = pool.get_with(0, load_ok(b"zero")).expect("load");
        let g1 = pool.get_with(1, load_ok(b"one")).expect("load");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for page in 2..12u64 {
                        let issued = pool
                            .prefetch_with(page ^ (t << 32), load_ok(b"never loads"))
                            .expect("prefetch never errors under pinning pressure");
                        assert!(!issued, "no frame was reclaimable");
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.prefetched, 0, "nothing was loaded");
        assert_eq!(s.evictions, 0, "nothing was evicted");
        // The foreground guards were untouched throughout.
        assert_eq!((&*g0, &*g1), (&b"zero"[..], &b"one"[..]));
        drop((g0, g1));
        // Once pins release, prefetch works again.
        assert!(pool.prefetch_with(2, load_ok(b"pre")).expect("prefetch"));
        assert_eq!(pool.stats().prefetched, 1);
    }

    #[test]
    fn clear_resets_counters_but_keeps_pinned_frames() {
        let pool = FramePool::new(3, EvictionPolicy::Clock);
        let g = pool.get_with(0, load_ok(b"keep")).expect("load");
        drop(pool.get_with(1, load_ok(b"drop")).expect("load"));
        pool.clear();
        assert_eq!(pool.stats(), FrameStats::default());
        assert_eq!(pool.resident(), 1, "only the pinned frame survives");
        assert_eq!(&*g, b"keep");
    }
}
