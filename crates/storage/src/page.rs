//! Page identifiers and sizing.

/// Simulated page size. 8 KiB holds ~128 serialized neuron segments
/// (64 B each: 7 × f64 geometry + ids), matching the leaf fan-outs used by
/// the original FLAT/R-Tree experiments.
pub const PAGE_SIZE_BYTES: usize = 8192;

/// Identifier of a simulated disk page.
///
/// Pages are laid out in one linear address space; consecutive ids are
/// physically consecutive, which is what lets the disk simulator detect
/// sequential access patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Physical distance (in pages) between two pages.
    #[inline]
    pub fn distance(self, other: PageId) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// True if `other` is the page physically following `self`.
    #[inline]
    pub fn is_successor_of(self, other: PageId) -> bool {
        other.0 + 1 == self.0
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_succession() {
        assert_eq!(PageId(5).distance(PageId(9)), 4);
        assert_eq!(PageId(9).distance(PageId(5)), 4);
        assert_eq!(PageId(5).distance(PageId(5)), 0);
        assert!(PageId(6).is_successor_of(PageId(5)));
        assert!(!PageId(5).is_successor_of(PageId(6)));
        assert!(!PageId(5).is_successor_of(PageId(5)));
    }

    #[test]
    fn display() {
        assert_eq!(PageId(42).to_string(), "P42");
    }
}
