//! Write-ahead log: durable, checksummed, replayable.
//!
//! The live-ingest path of the facade needs one guarantee from storage:
//! **an acknowledged write survives a crash, an unacknowledged write
//! vanishes cleanly**. This module provides it with a deliberately
//! small, payload-agnostic log — the WAL neither knows nor cares that
//! the payloads are encoded segment operations; it stores opaque byte
//! records, so the format is testable in isolation and reusable.
//!
//! ## On-disk format
//!
//! ```text
//! [magic "NSWL"][version u32][reserved u64]                -- 16-byte header
//! [len u32][kind u8][lsn u64][fnv1a u64][payload len B]    -- repeated records
//! ```
//!
//! All integers little-endian. `fnv1a` is the 64-bit FNV-1a checksum
//! ([`crate::checksum64`]) over `kind || lsn || payload`. LSNs are
//! strictly monotonic across the whole file; replay rejects regressions
//! as corruption.
//!
//! Three record kinds:
//!
//! - **DATA** — one opaque operation payload. Buffered, *not* durable
//!   on its own.
//! - **COMMIT** — group-commit marker: every DATA record since the
//!   previous COMMIT becomes durable exactly when the COMMIT record is
//!   on disk. [`Wal::commit`] writes buffered DATA records plus the
//!   COMMIT marker in a single append and then fsyncs — the log's one
//!   explicit fsync point, which is what makes the ack boundary sharp.
//! - **CHECKPOINT** — a full-state snapshot that bounds replay: replay
//!   starts from the last CHECKPOINT and only applies committed DATA
//!   records after it. [`Wal::checkpoint`] rewrites the log as
//!   `header + CHECKPOINT` through an atomic whole-file replace, so a
//!   crash mid-checkpoint leaves the previous log intact.
//!
//! ## Replay and the torn tail
//!
//! [`Wal::open`] scans the file front to back, verifying every record.
//! A record that fails verification *and extends to end-of-file* is a
//! **torn tail** — the expected signature of a crash mid-append — and
//! is silently truncated. A bad record with valid bytes *after* it is
//! not a crash artifact, it is bit rot inside acknowledged history, and
//! replay refuses with [`StorageError::Corrupt`] rather than serve
//! silently wrong data. Valid-but-uncommitted DATA records at the tail
//! (crash between append and commit) are truncated too: they were never
//! acknowledged, and leaving them would splice them into the *next*
//! commit's batch.
//!
//! ## Fault injection
//!
//! All writes go through the [`LogIo`] seam — the write-side analogue of
//! [`crate::PageIo`] — so [`crate::FaultLog`] can drop bytes at an exact
//! offset (a simulated crash, torn record included), flip bits in
//! acknowledged history, and prove the recovery contract under the same
//! seeded [`crate::FaultPlan`] discipline the read path uses.

#![warn(missing_docs)]

use crate::file::{Checksum64, StorageError};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"NSWL";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Bytes of the file header (magic + version + reserved).
pub const WAL_HEADER_BYTES: usize = 16;
/// Bytes of every record header (`len + kind + lsn + checksum`).
pub const WAL_RECORD_HEADER_BYTES: usize = 21;

/// Record kind: one opaque operation payload (durable only once a
/// COMMIT record follows it).
pub const WAL_KIND_DATA: u8 = 1;
/// Record kind: group-commit marker (empty payload).
pub const WAL_KIND_COMMIT: u8 = 2;
/// Record kind: full-state snapshot bounding replay.
pub const WAL_KIND_CHECKPOINT: u8 = 3;

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> StorageError {
    move |e| StorageError::Io { kind: e.kind(), context }
}

// ---------------------------------------------------------------------
// The write seam
// ---------------------------------------------------------------------

/// Append-oriented log I/O — the injectable seam between [`Wal`] and the
/// physical file, mirroring what [`crate::PageIo`] is for page reads.
///
/// Implemented by [`FileLog`] (the production file) and
/// [`crate::FaultLog`] (the chaos harness, which can drop a write's tail
/// at an exact byte offset or flip bits before they reach the disk).
pub trait LogIo: Send {
    /// The entire current file contents (header included), for replay.
    fn read_all(&mut self, buf: &mut Vec<u8>) -> Result<(), StorageError>;

    /// Append `bytes` at the end of the log. Not durable until
    /// [`sync`](Self::sync) returns.
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Make every appended byte durable (the fsync point).
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Discard everything past `len` bytes (torn-tail cleanup at open).
    fn truncate(&mut self, len: u64) -> Result<(), StorageError>;

    /// Atomically replace the whole file with `contents` (checkpoint).
    /// All-or-nothing: after a crash either the old or the new contents
    /// are intact, never a mix.
    fn replace(&mut self, contents: &[u8]) -> Result<(), StorageError>;

    /// Current file length in bytes.
    fn len(&self) -> u64;

    /// Whether the log holds no bytes at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The production [`LogIo`]: a real file, appended with `write_all`,
/// made durable with `sync_data`, checkpointed via write-temp + rename
/// (the classic atomic-replace idiom).
pub struct FileLog {
    file: std::fs::File,
    path: PathBuf,
    len: u64,
}

impl FileLog {
    /// Open (or create) the log file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err("open wal"))?;
        let len = file.metadata().map_err(io_err("stat wal"))?.len();
        Ok(FileLog { file, path, len })
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl LogIo for FileLog {
    fn read_all(&mut self, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        buf.clear();
        self.file.seek(SeekFrom::Start(0)).map_err(io_err("seek wal start"))?;
        self.file.read_to_end(buf).map_err(io_err("read wal"))?;
        self.file.seek(SeekFrom::End(0)).map_err(io_err("seek wal end"))?;
        Ok(())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.file.seek(SeekFrom::Start(self.len)).map_err(io_err("seek wal append"))?;
        self.file.write_all(bytes).map_err(io_err("append wal"))?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data().map_err(io_err("sync wal"))
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.file.set_len(len).map_err(io_err("truncate wal"))?;
        self.len = len;
        self.file.seek(SeekFrom::Start(len)).map_err(io_err("seek wal end"))?;
        Ok(())
    }

    fn replace(&mut self, contents: &[u8]) -> Result<(), StorageError> {
        let tmp = self.path.with_extension("wal-tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(io_err("create wal tmp"))?;
            f.write_all(contents).map_err(io_err("write wal tmp"))?;
            f.sync_data().map_err(io_err("sync wal tmp"))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(io_err("rename wal tmp"))?;
        self.file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(io_err("reopen wal"))?;
        self.file.seek(SeekFrom::End(0)).map_err(io_err("seek wal end"))?;
        self.len = contents.len() as u64;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// What [`Wal::open`] reconstructed: the durable state as of the crash
/// (or clean shutdown) — exactly the acknowledged prefix, nothing more.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// The last CHECKPOINT's payload, if any checkpoint was written.
    pub snapshot: Option<Vec<u8>>,
    /// Committed DATA payloads after the last checkpoint, in append
    /// order. Uncommitted records are never included.
    pub ops: Vec<Vec<u8>>,
    /// Highest LSN among the records kept (0 for an empty log).
    pub last_lsn: u64,
    /// Whether open discarded a tail (torn record or valid-but-
    /// uncommitted records) — the expected signature of a crash.
    pub truncated_tail: bool,
    /// Bytes discarded from the tail (0 on clean shutdown).
    pub truncated_bytes: u64,
}

/// The write-ahead log: buffered appends, group commit with one fsync
/// per commit, atomic checkpoints, verified replay. Payloads are opaque
/// bytes; callers own the encoding.
pub struct Wal {
    log: Box<dyn LogIo>,
    /// Encoded records awaiting the next commit.
    pending: Vec<u8>,
    pending_records: u64,
    next_lsn: u64,
    commits: u64,
    checkpoints: u64,
}

fn encode_record(out: &mut Vec<u8>, kind: u8, lsn: u64, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&lsn.to_le_bytes());
    let mut h = Checksum64::new();
    h.update(&[kind]);
    h.update(&lsn.to_le_bytes());
    h.update(payload);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(payload);
}

impl Wal {
    /// Open (or create) the log at `path` through the production
    /// [`FileLog`], replaying whatever is on disk.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(Self, WalRecovery), StorageError> {
        Self::open_log(Box::new(FileLog::open(path)?))
    }

    /// Open the log over an arbitrary [`LogIo`] — the fault-injection
    /// entry point ([`crate::FaultLog`]) and the unit-test seam.
    pub fn open_log(mut log: Box<dyn LogIo>) -> Result<(Self, WalRecovery), StorageError> {
        let mut bytes = Vec::new();
        log.read_all(&mut bytes)?;
        if bytes.is_empty() {
            let mut header = Vec::with_capacity(WAL_HEADER_BYTES);
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            header.extend_from_slice(&0u64.to_le_bytes());
            log.append(&header)?;
            log.sync()?;
            let wal = Wal {
                log,
                pending: Vec::new(),
                pending_records: 0,
                next_lsn: 1,
                commits: 0,
                checkpoints: 0,
            };
            return Ok((wal, WalRecovery::default()));
        }
        if bytes.len() < WAL_HEADER_BYTES || bytes[0..4] != WAL_MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != WAL_VERSION {
            return Err(StorageError::BadVersion(version));
        }

        let mut off = WAL_HEADER_BYTES;
        let mut snapshot: Option<Vec<u8>> = None;
        let mut committed: Vec<Vec<u8>> = Vec::new();
        let mut uncommitted: Vec<Vec<u8>> = Vec::new();
        let mut last_lsn_seen = 0u64;
        // State as of the last COMMIT / CHECKPOINT boundary — the only
        // state replay is allowed to surface.
        let mut committed_end = off;
        let mut last_lsn_kept = 0u64;
        while off < bytes.len() {
            let rem = bytes.len() - off;
            if rem < WAL_RECORD_HEADER_BYTES {
                break; // torn mid-header: tail
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            let kind = bytes[off + 4];
            let lsn = u64::from_le_bytes(bytes[off + 5..off + 13].try_into().expect("8 bytes"));
            let stored = u64::from_le_bytes(bytes[off + 13..off + 21].try_into().expect("8 bytes"));
            let body_end = off + WAL_RECORD_HEADER_BYTES + len;
            if body_end > bytes.len() {
                break; // torn mid-payload: tail
            }
            let payload = &bytes[off + WAL_RECORD_HEADER_BYTES..body_end];
            let mut h = Checksum64::new();
            h.update(&[kind]);
            h.update(&lsn.to_le_bytes());
            h.update(payload);
            let valid = h.finish() == stored
                && matches!(kind, WAL_KIND_DATA | WAL_KIND_COMMIT | WAL_KIND_CHECKPOINT)
                && lsn > last_lsn_seen;
            if !valid {
                if body_end == bytes.len() {
                    break; // damaged final record: torn tail
                }
                // Damaged record with intact history after it: this is
                // not a crash artifact, it is corruption inside
                // acknowledged data. Refuse loudly.
                return Err(StorageError::Corrupt(format!(
                    "wal record at byte {off} fails verification with {} intact bytes after it",
                    bytes.len() - body_end
                )));
            }
            last_lsn_seen = lsn;
            match kind {
                WAL_KIND_DATA => uncommitted.push(payload.to_vec()),
                WAL_KIND_COMMIT => {
                    committed.append(&mut uncommitted);
                    committed_end = body_end;
                    last_lsn_kept = lsn;
                }
                _ => {
                    snapshot = Some(payload.to_vec());
                    committed.clear();
                    uncommitted.clear();
                    committed_end = body_end;
                    last_lsn_kept = lsn;
                }
            }
            off = body_end;
        }
        let truncated_bytes = log.len() - committed_end as u64;
        if truncated_bytes > 0 {
            log.truncate(committed_end as u64)?;
            log.sync()?;
        }
        let recovery = WalRecovery {
            snapshot,
            last_lsn: last_lsn_kept,
            ops: committed,
            truncated_tail: truncated_bytes > 0,
            truncated_bytes,
        };
        let wal = Wal {
            log,
            pending: Vec::new(),
            pending_records: 0,
            next_lsn: last_lsn_kept + 1,
            commits: 0,
            checkpoints: 0,
        };
        Ok((wal, recovery))
    }

    /// Buffer one opaque DATA record and return its LSN. **Not durable**
    /// until [`commit`](Self::commit) succeeds; a crash before the
    /// commit erases it on replay.
    pub fn append(&mut self, payload: &[u8]) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        encode_record(&mut self.pending, WAL_KIND_DATA, lsn, payload);
        self.pending_records += 1;
        lsn
    }

    /// Group commit: write every buffered record plus a COMMIT marker in
    /// one append, then fsync. On success the returned LSN (the COMMIT
    /// marker's) is the caller's acknowledgement token. On failure the
    /// buffered records are discarded — they were never acknowledged and
    /// replay is guaranteed to drop whatever fraction reached the disk.
    pub fn commit(&mut self) -> Result<u64, StorageError> {
        let wobs = crate::metrics::wal_obs();
        let _commit_span =
            neurospatial_obs::span_timed(neurospatial_obs::Stage::WalCommit, &wobs.commit_latency);
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        encode_record(&mut self.pending, WAL_KIND_COMMIT, lsn, &[]);
        let group = self.pending_records;
        let batch = std::mem::take(&mut self.pending);
        self.pending_records = 0;
        self.log.append(&batch)?;
        self.log.sync()?;
        self.commits += 1;
        wobs.commits.inc();
        wobs.fsyncs.inc();
        wobs.append_bytes.record(batch.len() as u64);
        wobs.group_records.record(group);
        Ok(lsn)
    }

    /// Atomically replace the log with `header + CHECKPOINT(snapshot)`,
    /// bounding every future replay to the snapshot plus whatever
    /// commits follow it. Callers must ensure `snapshot` reflects every
    /// committed record (the facade drains its delta under the writer
    /// lock first). Crash-safe: the replace is all-or-nothing, so a
    /// failed checkpoint leaves the previous log fully intact.
    pub fn checkpoint(&mut self, snapshot: &[u8]) -> Result<u64, StorageError> {
        let lsn = self.next_lsn;
        let mut contents =
            Vec::with_capacity(WAL_HEADER_BYTES + WAL_RECORD_HEADER_BYTES + snapshot.len());
        contents.extend_from_slice(&WAL_MAGIC);
        contents.extend_from_slice(&WAL_VERSION.to_le_bytes());
        contents.extend_from_slice(&0u64.to_le_bytes());
        encode_record(&mut contents, WAL_KIND_CHECKPOINT, lsn, snapshot);
        self.log.replace(&contents)?;
        self.log.sync()?;
        let wobs = crate::metrics::wal_obs();
        wobs.checkpoints.inc();
        wobs.fsyncs.inc();
        self.next_lsn += 1;
        self.checkpoints += 1;
        self.pending.clear();
        self.pending_records = 0;
        Ok(lsn)
    }

    /// Current log length in bytes (excluding the unflushed buffer).
    pub fn bytes(&self) -> u64 {
        self.log.len()
    }

    /// The LSN the next record will take.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Highest LSN handed out so far (0 before the first append).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Buffered (appended, uncommitted) records.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Successful commits since open.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Successful checkpoints since open.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultLog, FaultPlan};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("nswal-{}-{tag}-{n}", std::process::id()))
    }

    struct TempFile(PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
            let _ = std::fs::remove_file(self.0.with_extension("wal-tmp"));
        }
    }

    #[test]
    fn fresh_log_round_trips_committed_ops() {
        let t = TempFile(temp_path("roundtrip"));
        {
            let (mut wal, rec) = Wal::open(&t.0).expect("create");
            assert_eq!(rec, WalRecovery::default());
            let a = wal.append(b"op-a");
            let b = wal.append(b"op-b");
            assert!(b > a);
            let c = wal.commit().expect("commit");
            assert!(c > b);
            wal.append(b"op-c");
            wal.commit().expect("commit 2");
        }
        let (wal, rec) = Wal::open(&t.0).expect("reopen");
        assert_eq!(rec.ops, vec![b"op-a".to_vec(), b"op-b".to_vec(), b"op-c".to_vec()]);
        assert!(rec.snapshot.is_none());
        assert!(!rec.truncated_tail);
        assert!(wal.next_lsn() > rec.last_lsn);
    }

    #[test]
    fn uncommitted_appends_do_not_survive() {
        let t = TempFile(temp_path("uncommitted"));
        {
            let (mut wal, _) = Wal::open(&t.0).expect("create");
            wal.append(b"durable");
            wal.commit().expect("commit");
            wal.append(b"buffered only, never committed");
            // Dropped without commit: the record never reaches the disk.
        }
        let (_, rec) = Wal::open(&t.0).expect("reopen");
        assert_eq!(rec.ops, vec![b"durable".to_vec()]);
        assert!(!rec.truncated_tail, "nothing was on disk to truncate");
    }

    #[test]
    fn checkpoint_bounds_replay_and_lsn_stays_monotonic() {
        let t = TempFile(temp_path("checkpoint"));
        {
            let (mut wal, _) = Wal::open(&t.0).expect("create");
            wal.append(b"pre-1");
            wal.append(b"pre-2");
            wal.commit().expect("commit");
            wal.checkpoint(b"snapshot-state").expect("checkpoint");
            wal.append(b"post-1");
            wal.commit().expect("commit");
        }
        let (wal, rec) = Wal::open(&t.0).expect("reopen");
        assert_eq!(rec.snapshot.as_deref(), Some(&b"snapshot-state"[..]));
        assert_eq!(rec.ops, vec![b"post-1".to_vec()]);
        assert!(rec.last_lsn >= 5, "lsn continues across the checkpoint");
        assert_eq!(wal.next_lsn(), rec.last_lsn + 1);
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let t = TempFile(temp_path("torn"));
        {
            let (mut wal, _) = Wal::open(&t.0).expect("create");
            wal.append(b"kept");
            wal.commit().expect("commit");
        }
        // Simulate a crash mid-append: half a record of garbage.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&t.0).expect("open for tear");
            f.write_all(&[0xAB; 11]).expect("tear");
        }
        let (mut wal, rec) = Wal::open(&t.0).expect("reopen");
        assert_eq!(rec.ops, vec![b"kept".to_vec()]);
        assert!(rec.truncated_tail);
        assert_eq!(rec.truncated_bytes, 11);
        wal.append(b"after-recovery");
        wal.commit().expect("commit after recovery");
        let (_, rec2) = Wal::open(&t.0).expect("reopen 2");
        assert_eq!(rec2.ops, vec![b"kept".to_vec(), b"after-recovery".to_vec()]);
        assert!(!rec2.truncated_tail);
    }

    #[test]
    fn mid_log_corruption_is_refused_not_truncated() {
        let t = TempFile(temp_path("midrot"));
        {
            let (mut wal, _) = Wal::open(&t.0).expect("create");
            wal.append(b"first");
            wal.commit().expect("commit");
            wal.append(b"second");
            wal.commit().expect("commit");
        }
        // Flip one payload byte of the *first* record: valid bytes
        // follow, so this is bit rot, not a torn tail.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f =
                std::fs::OpenOptions::new().read(true).write(true).open(&t.0).expect("open");
            f.seek(SeekFrom::Start((WAL_HEADER_BYTES + WAL_RECORD_HEADER_BYTES) as u64))
                .expect("seek");
            f.write_all(&[0xFF]).expect("flip");
        }
        match Wal::open(&t.0) {
            Err(StorageError::Corrupt(msg)) => {
                assert!(msg.contains("fails verification"), "{msg}")
            }
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn injected_crash_mid_commit_drops_exactly_the_unacked_batch() {
        let t = TempFile(temp_path("crash"));
        let acked;
        {
            let (mut wal, _) =
                Wal::open_log(Box::new(FileLog::open(&t.0).expect("filelog"))).expect("create");
            wal.append(b"acked-op");
            wal.commit().expect("commit");
            acked = wal.bytes();
        }
        // Reopen through a FaultLog that crashes 10 bytes into the next
        // batch: the torn fragment must vanish on recovery.
        {
            let inner = FileLog::open(&t.0).expect("filelog");
            let plan = FaultPlan::new(1).with_write_crash_at(10);
            let (mut wal, rec) =
                Wal::open_log(Box::new(FaultLog::new(inner, plan))).expect("open faulted");
            assert!(!rec.truncated_tail);
            wal.append(b"never-acked");
            let err = wal.commit().expect_err("crash point reached");
            assert!(!err.is_transient(), "a crash is not retryable: {err:?}");
            // Post-crash, the log is dead: further commits fail too.
            wal.append(b"also dead");
            wal.commit().expect_err("still crashed");
        }
        let (wal, rec) = Wal::open(&t.0).expect("recover");
        assert_eq!(rec.ops, vec![b"acked-op".to_vec()]);
        assert!(rec.truncated_tail, "the torn fragment was on disk");
        assert_eq!(wal.bytes(), acked, "recovery trims back to the acked prefix");
    }

    #[test]
    fn injected_flip_in_committed_history_surfaces_as_corruption() {
        let t = TempFile(temp_path("flip"));
        {
            let inner = FileLog::open(&t.0).expect("filelog");
            // Flip a payload byte of the first DATA record as it is
            // written; two commits follow, so history continues past it.
            let flip_at = (WAL_HEADER_BYTES + WAL_RECORD_HEADER_BYTES) as u64;
            let plan = FaultPlan::new(2).with_write_flip(flip_at, 0x40);
            let (mut wal, _) =
                Wal::open_log(Box::new(FaultLog::new(inner, plan))).expect("open faulted");
            wal.append(b"rotting");
            wal.commit().expect("commit still succeeds: fsync lied");
            wal.append(b"healthy");
            wal.commit().expect("commit 2");
        }
        assert!(
            matches!(Wal::open(&t.0), Err(StorageError::Corrupt(_))),
            "flip inside acknowledged history must refuse replay"
        );
    }

    #[test]
    fn crash_during_checkpoint_leaves_previous_log_intact() {
        let t = TempFile(temp_path("ckptcrash"));
        {
            let (mut wal, _) = Wal::open(&t.0).expect("create");
            wal.append(b"survives");
            wal.commit().expect("commit");
        }
        {
            let inner = FileLog::open(&t.0).expect("filelog");
            // Crash far enough ahead that appends succeed, but inside
            // the checkpoint's replace window.
            let plan = FaultPlan::new(3).with_write_crash_at(8);
            let (mut wal, _) = Wal::open_log(Box::new(FaultLog::new(inner, plan))).expect("open");
            wal.checkpoint(b"lost-snapshot").expect_err("replace crashes");
        }
        let (_, rec) = Wal::open(&t.0).expect("recover");
        assert!(rec.snapshot.is_none(), "failed checkpoint must not half-apply");
        assert_eq!(rec.ops, vec![b"survives".to_vec()]);
    }

    #[test]
    fn foreign_bytes_are_rejected() {
        let t = TempFile(temp_path("magic"));
        std::fs::write(&t.0, b"definitely not a wal file").expect("write");
        assert!(matches!(Wal::open(&t.0), Err(StorageError::BadMagic)));
        let mut versioned = Vec::new();
        versioned.extend_from_slice(&WAL_MAGIC);
        versioned.extend_from_slice(&99u32.to_le_bytes());
        versioned.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&t.0, &versioned).expect("write");
        assert!(matches!(Wal::open(&t.0), Err(StorageError::BadVersion(99))));
    }
}
