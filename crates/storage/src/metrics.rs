//! Observability handles for the storage layer.
//!
//! All handles live in the process-wide [`neurospatial_obs::global`]
//! registry and are registered lazily, once, on first touch — always from
//! a construction or I/O path, never inside the lock-free fast paths.
//! Recording through them is a relaxed atomic op and does not allocate,
//! preserving the storage layer's alloc-free steady-state guarantees.

use neurospatial_obs::{global, Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

/// Frame-pool counters mirrored from [`crate::FrameStats`], plus demand
/// read latency. Cumulative across every pool in the process (per-pool
/// numbers stay available via [`crate::FramePool::stats`]).
pub struct FrameObs {
    /// Demand requests served without a disk read.
    pub hits: Arc<Counter>,
    /// Demand requests that paid a disk read.
    pub misses: Arc<Counter>,
    /// Frames dropped to make room.
    pub evictions: Arc<Counter>,
    /// Pages loaded by background prefetch.
    pub prefetched: Arc<Counter>,
    /// Demand hits on prefetched frames (useful prefetch).
    pub prefetch_hits: Arc<Counter>,
    /// Pages moved into the quarantine set.
    pub quarantined: Arc<Counter>,
    /// Resident pages in the most recently active pool.
    pub resident: Arc<Gauge>,
    /// Demand-miss page read latency (load closure wall time), ns.
    pub read_latency: Arc<Histogram>,
}

/// WAL durability counters and latency/size distributions. Cumulative
/// across every [`crate::Wal`] in the process.
pub struct WalObs {
    /// Successful group commits.
    pub commits: Arc<Counter>,
    /// Checkpoint rewrites.
    pub checkpoints: Arc<Counter>,
    /// fsync calls issued by commits and checkpoints.
    pub fsyncs: Arc<Counter>,
    /// Wall time of one commit (batch append + fsync), ns.
    pub commit_latency: Arc<Histogram>,
    /// Bytes handed to the log per commit batch.
    pub append_bytes: Arc<Histogram>,
    /// DATA records riding each COMMIT (group-commit size).
    pub group_records: Arc<Histogram>,
}

/// Fault-injection and retry counters from the I/O resilience layer.
pub struct FaultObs {
    /// Transient I/O failures absorbed by a retry loop.
    pub retries: Arc<Counter>,
    /// Operations that exhausted retries or failed permanently.
    pub exhausted: Arc<Counter>,
}

static FRAME_OBS: OnceLock<FrameObs> = OnceLock::new();
static WAL_OBS: OnceLock<WalObs> = OnceLock::new();
static FAULT_OBS: OnceLock<FaultObs> = OnceLock::new();

/// Frame-pool handles (registered on first call).
pub fn frame_obs() -> &'static FrameObs {
    FRAME_OBS.get_or_init(|| {
        let r = global();
        FrameObs {
            hits: r.counter("storage_frame_hits_total"),
            misses: r.counter("storage_frame_misses_total"),
            evictions: r.counter("storage_frame_evictions_total"),
            prefetched: r.counter("storage_frame_prefetched_total"),
            prefetch_hits: r.counter("storage_frame_prefetch_hits_total"),
            quarantined: r.counter("storage_pages_quarantined_total"),
            resident: r.gauge("storage_frames_resident"),
            read_latency: r.histogram("storage_page_read_latency_ns"),
        }
    })
}

/// WAL handles (registered on first call).
pub fn wal_obs() -> &'static WalObs {
    WAL_OBS.get_or_init(|| {
        let r = global();
        WalObs {
            commits: r.counter("wal_commits_total"),
            checkpoints: r.counter("wal_checkpoints_total"),
            fsyncs: r.counter("wal_fsyncs_total"),
            commit_latency: r.histogram("wal_commit_latency_ns"),
            append_bytes: r.histogram("wal_append_bytes"),
            group_records: r.histogram("wal_group_commit_records"),
        }
    })
}

/// Retry/fault handles (registered on first call).
pub fn fault_obs() -> &'static FaultObs {
    FAULT_OBS.get_or_init(|| {
        let r = global();
        FaultObs {
            retries: r.counter("storage_io_retries_total"),
            exhausted: r.counter("storage_io_retry_exhausted_total"),
        }
    })
}
