//! LRU buffer pool over the disk simulator.
//!
//! SCOUT's whole point is to have pages already *in the buffer pool* when
//! the user's next query arrives; the exploration-session simulator
//! models both the demand path (miss → disk read → stall) and the
//! prefetch path (background read → no stall) through this pool.

use crate::disk::{DiskSim, IoError};
use crate::page::PageId;
use std::collections::HashMap;

/// Buffer pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Demand accesses served from the pool.
    pub hits: u64,
    /// Demand accesses that went to the (simulated) disk.
    pub misses: u64,
    /// Pages dropped to make room.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit ratio in [0, 1]; 0 when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU page cache.
///
/// Implementation: intrusive doubly-linked list over a slab of entries,
/// O(1) touch/insert/evict, `HashMap` for lookup. Capacities in the
/// experiments are in the thousands, so constant factors matter more than
/// asymptotics, but O(1) keeps the simulator honest for the scaling runs.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    map: HashMap<PageId, usize>,
    entries: Vec<Entry>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    stats: PoolStats,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    page: PageId,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl BufferPool {
    /// Pool holding at most `capacity` pages (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            map: HashMap::with_capacity(capacity * 2),
            entries: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// The frame budget this pool was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no page is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// True if the page is resident (does not touch LRU order or stats).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Demand-fetch `page`: on a hit the page is touched; on a miss it is
    /// read from `disk` and cached. Returns the simulated latency charged
    /// to the *caller* (0 on hit).
    pub fn get(&mut self, page: PageId, disk: &DiskSim) -> Result<f64, IoError> {
        if let Some(&slot) = self.map.get(&page) {
            self.stats.hits += 1;
            self.touch(slot);
            return Ok(0.0);
        }
        self.stats.misses += 1;
        let cost = disk.read(page)?;
        self.insert(page);
        Ok(cost)
    }

    /// Prefetch `page` into the pool. The read still happens on the
    /// simulated disk (its cost appears in the disk stats — prefetching
    /// is not free bandwidth), but the caller is not charged: returns the
    /// background cost for bookkeeping. No-op on resident pages.
    pub fn prefetch(&mut self, page: PageId, disk: &DiskSim) -> Result<f64, IoError> {
        if let Some(&slot) = self.map.get(&page) {
            // Deliberately *not* a hit: prefetching must not distort the
            // demand hit ratio, and not touching keeps useless prefetches
            // from pinning stale pages.
            let _ = slot;
            return Ok(0.0);
        }
        let cost = disk.read(page)?;
        self.insert(page);
        Ok(cost)
    }

    /// Drop everything (statistics are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Resident pages from most- to least-recently used (test/debug aid).
    pub fn lru_order(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.entries[cur].page);
            cur = self.entries[cur].next;
        }
        out
    }

    fn insert(&mut self, page: PageId) {
        if self.map.len() == self.capacity {
            self.evict_lru();
        }
        let slot = if let Some(s) = self.free.pop() {
            self.entries[s] = Entry { page, prev: NIL, next: self.head };
            s
        } else {
            self.entries.push(Entry { page, prev: NIL, next: self.head });
            self.entries.len() - 1
        };
        if self.head != NIL {
            self.entries[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
        self.map.insert(page, slot);
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert!(victim != NIL, "evict called on empty pool");
        let page = self.entries[victim].page;
        self.unlink(victim);
        self.map.remove(&page);
        self.free.push(victim);
        self.stats.evictions += 1;
    }

    fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.entries[slot].prev = NIL;
        self.entries[slot].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let Entry { prev, next, .. } = self.entries[slot];
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::CostModel;

    fn disk() -> DiskSim {
        DiskSim::new(u64::MAX, CostModel::default())
    }

    #[test]
    fn hit_after_miss() {
        let d = disk();
        let mut p = BufferPool::new(4);
        let c1 = p.get(PageId(1), &d).unwrap();
        assert!(c1 > 0.0);
        let c2 = p.get(PageId(1), &d).unwrap();
        assert_eq!(c2, 0.0);
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.stats().hit_ratio(), 0.5);
        assert_eq!(d.stats().total_reads(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let d = disk();
        let mut p = BufferPool::new(3);
        for i in 0..3 {
            p.get(PageId(i), &d).unwrap();
        }
        // Touch 0 so 1 becomes LRU.
        p.get(PageId(0), &d).unwrap();
        p.get(PageId(3), &d).unwrap(); // evicts 1
        assert!(p.contains(PageId(0)));
        assert!(!p.contains(PageId(1)));
        assert!(p.contains(PageId(2)));
        assert!(p.contains(PageId(3)));
        assert_eq!(p.stats().evictions, 1);
        assert_eq!(p.lru_order(), vec![PageId(3), PageId(0), PageId(2)]);
    }

    #[test]
    fn never_exceeds_capacity() {
        let d = disk();
        let mut p = BufferPool::new(8);
        for i in 0..100 {
            p.get(PageId(i), &d).unwrap();
            assert!(p.len() <= 8);
        }
        assert_eq!(p.len(), 8);
        assert_eq!(p.stats().evictions, 92);
    }

    #[test]
    fn prefetch_absorbs_future_demand() {
        let d = disk();
        let mut p = BufferPool::new(4);
        let bg = p.prefetch(PageId(9), &d).unwrap();
        assert!(bg > 0.0); // background read happened on the disk...
        let fg = p.get(PageId(9), &d).unwrap();
        assert_eq!(fg, 0.0); // ...but the demand access stalls for nothing
        assert_eq!(p.stats().hits, 1);
        // Prefetching a resident page is a no-op.
        assert_eq!(p.prefetch(PageId(9), &d).unwrap(), 0.0);
        assert_eq!(d.stats().total_reads(), 1);
    }

    #[test]
    fn prefetch_does_not_count_as_demand_hit() {
        let d = disk();
        let mut p = BufferPool::new(4);
        p.prefetch(PageId(1), &d).unwrap();
        p.prefetch(PageId(1), &d).unwrap();
        assert_eq!(p.stats().hits, 0);
        assert_eq!(p.stats().misses, 0);
    }

    #[test]
    fn capacity_one() {
        let d = disk();
        let mut p = BufferPool::new(1);
        p.get(PageId(1), &d).unwrap();
        p.get(PageId(2), &d).unwrap();
        assert!(!p.contains(PageId(1)));
        assert!(p.contains(PageId(2)));
        p.get(PageId(2), &d).unwrap();
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.lru_order(), vec![PageId(2)]);
    }

    #[test]
    fn clear_keeps_stats() {
        let d = disk();
        let mut p = BufferPool::new(4);
        p.get(PageId(1), &d).unwrap();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.stats().misses, 1);
        // Usable after clear.
        p.get(PageId(1), &d).unwrap();
        assert_eq!(p.stats().misses, 2);
    }

    #[test]
    fn propagates_disk_errors() {
        let d = DiskSim::new(5, CostModel::default());
        let mut p = BufferPool::new(2);
        assert!(matches!(p.get(PageId(99), &d), Err(IoError::OutOfRange(_))));
        // Error reads do not pollute the pool.
        assert!(!p.contains(PageId(99)));
        d.inject_faults(Some(1));
        assert!(matches!(p.get(PageId(1), &d), Err(IoError::InjectedFault(_))));
        assert!(!p.contains(PageId(1)));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(0);
    }
}
