//! The disk simulator: page-access accounting and a two-parameter cost
//! model (random seek + sequential transfer), the classic first-order
//! model of rotating storage used throughout the spatial indexing
//! literature the paper builds on.

use crate::page::PageId;

/// Minimal stand-in for `parking_lot::Mutex` (unavailable offline): a
/// `std::sync::Mutex` whose `lock()` returns the guard directly. The
/// simulator never holds a guard across a panic-prone region, so poisoning
/// is treated as unreachable.
#[derive(Debug, Default)]
struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Cost model parameters, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of a random page read (seek + rotation + transfer).
    pub random_read_ms: f64,
    /// Cost of reading the page physically following the previous one.
    pub sequential_read_ms: f64,
}

impl Default for CostModel {
    /// 2007-era enterprise disk: ~8 ms random, ~0.1 ms sequential per 8 KiB
    /// page — the hardware class of the original FLAT experiments. The
    /// absolute values only scale reported stall times; all comparisons in
    /// the experiments are ratios.
    fn default() -> Self {
        CostModel { random_read_ms: 8.0, sequential_read_ms: 0.1 }
    }
}

impl CostModel {
    /// An SSD-like model (uniform, fast reads) for sensitivity analysis.
    pub fn ssd() -> Self {
        CostModel { random_read_ms: 0.15, sequential_read_ms: 0.05 }
    }
}

/// Aggregate I/O statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    /// Reads charged at the random-access cost.
    pub random_reads: u64,
    /// Reads of the page physically following the previous one.
    pub sequential_reads: u64,
    /// Total simulated read latency (ms).
    pub total_cost_ms: f64,
}

impl IoStats {
    /// Random plus sequential reads.
    pub fn total_reads(&self) -> u64 {
        self.random_reads + self.sequential_reads
    }

    /// Merge two stat blocks (e.g. per-query into per-experiment).
    pub fn merge(&mut self, o: &IoStats) {
        self.random_reads += o.random_reads;
        self.sequential_reads += o.sequential_reads;
        self.total_cost_ms += o.total_cost_ms;
    }
}

/// Error type for the simulator's fault-injection mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The page id lies beyond the simulated device capacity.
    OutOfRange(PageId),
    /// Fault injection: the read failed (used to exercise error paths).
    InjectedFault(PageId),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::OutOfRange(p) => write!(f, "page {p} out of range"),
            IoError::InjectedFault(p) => write!(f, "injected I/O fault reading {p}"),
        }
    }
}

impl std::error::Error for IoError {}

#[derive(Debug, Default)]
struct DiskState {
    stats: IoStats,
    last_page: Option<PageId>,
    /// Fail every n-th read when set (fault injection).
    fault_every: Option<u64>,
    reads_since_fault: u64,
}

/// The simulated disk. Thread-safe: index structures share it by
/// reference, and the TOUCH parallel variant reads from worker threads.
#[derive(Debug)]
pub struct DiskSim {
    cost: CostModel,
    capacity: u64,
    state: Mutex<DiskState>,
}

impl DiskSim {
    /// A device of `capacity` pages with the given cost model.
    pub fn new(capacity: u64, cost: CostModel) -> Self {
        DiskSim { cost, capacity, state: Mutex::new(DiskState::default()) }
    }

    /// Convenience: effectively unbounded device, default cost model.
    pub fn unbounded() -> Self {
        Self::new(u64::MAX, CostModel::default())
    }

    /// The cost model this device was created with.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Device capacity in pages.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Simulate reading `page`: classifies the access, accumulates cost,
    /// and returns the latency charged for this read (ms).
    pub fn read(&self, page: PageId) -> Result<f64, IoError> {
        if page.0 >= self.capacity {
            return Err(IoError::OutOfRange(page));
        }
        let mut st = self.state.lock();
        if let Some(n) = st.fault_every {
            st.reads_since_fault += 1;
            if st.reads_since_fault >= n {
                st.reads_since_fault = 0;
                return Err(IoError::InjectedFault(page));
            }
        }
        let sequential = st.last_page.map(|lp| page.is_successor_of(lp)).unwrap_or(false);
        let cost = if sequential {
            st.stats.sequential_reads += 1;
            self.cost.sequential_read_ms
        } else {
            st.stats.random_reads += 1;
            self.cost.random_read_ms
        };
        st.stats.total_cost_ms += cost;
        st.last_page = Some(page);
        Ok(cost)
    }

    /// Current accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Reset counters (between experiment phases). The head position is
    /// also forgotten so the first subsequent read is random.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.stats = IoStats::default();
        st.last_page = None;
    }

    /// Enable fault injection: every `n`-th read fails. `None` disables.
    pub fn inject_faults(&self, every: Option<u64>) {
        let mut st = self.state.lock();
        st.fault_every = every.filter(|&n| n > 0);
        st.reads_since_fault = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_sequential_vs_random() {
        let d = DiskSim::new(1000, CostModel::default());
        d.read(PageId(10)).unwrap(); // first read: random
        d.read(PageId(11)).unwrap(); // sequential
        d.read(PageId(12)).unwrap(); // sequential
        d.read(PageId(5)).unwrap(); // random (backwards)
        d.read(PageId(7)).unwrap(); // random (gap)
        let s = d.stats();
        assert_eq!(s.sequential_reads, 2);
        assert_eq!(s.random_reads, 3);
        assert_eq!(s.total_reads(), 5);
        let expect = 3.0 * 8.0 + 2.0 * 0.1;
        assert!((s.total_cost_ms - expect).abs() < 1e-9);
    }

    #[test]
    fn rereading_same_page_is_random() {
        // Same page again is not "successor", so it costs a random read
        // (a buffer pool is what's supposed to absorb these).
        let d = DiskSim::new(10, CostModel::default());
        d.read(PageId(3)).unwrap();
        d.read(PageId(3)).unwrap();
        assert_eq!(d.stats().random_reads, 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let d = DiskSim::new(10, CostModel::default());
        assert_eq!(d.read(PageId(10)), Err(IoError::OutOfRange(PageId(10))));
        assert!(d.read(PageId(9)).is_ok());
        // Failed reads are not accounted.
        assert_eq!(d.stats().total_reads(), 1);
    }

    #[test]
    fn reset_clears_state() {
        let d = DiskSim::new(100, CostModel::default());
        d.read(PageId(0)).unwrap();
        d.read(PageId(1)).unwrap();
        d.reset();
        assert_eq!(d.stats(), IoStats::default());
        // After reset the head position is forgotten: next read is random
        // even if physically consecutive.
        d.read(PageId(2)).unwrap();
        assert_eq!(d.stats().random_reads, 1);
    }

    #[test]
    fn fault_injection_fails_every_nth() {
        let d = DiskSim::new(100, CostModel::default());
        d.inject_faults(Some(3));
        assert!(d.read(PageId(0)).is_ok());
        assert!(d.read(PageId(1)).is_ok());
        assert!(matches!(d.read(PageId(2)), Err(IoError::InjectedFault(_))));
        assert!(d.read(PageId(3)).is_ok());
        assert!(d.read(PageId(4)).is_ok());
        assert!(d.read(PageId(5)).is_err());
        d.inject_faults(None);
        for i in 6..20 {
            assert!(d.read(PageId(i)).is_ok());
        }
    }

    #[test]
    fn stats_merge() {
        let mut a = IoStats { random_reads: 1, sequential_reads: 2, total_cost_ms: 8.2 };
        let b = IoStats { random_reads: 3, sequential_reads: 4, total_cost_ms: 24.4 };
        a.merge(&b);
        assert_eq!(a.random_reads, 4);
        assert_eq!(a.sequential_reads, 6);
        assert!((a.total_cost_ms - 32.6).abs() < 1e-9);
    }

    #[test]
    fn error_display() {
        assert!(IoError::OutOfRange(PageId(7)).to_string().contains("P7"));
        assert!(IoError::InjectedFault(PageId(1)).to_string().contains("fault"));
    }

    #[test]
    fn shared_across_threads() {
        let d = std::sync::Arc::new(DiskSim::new(u64::MAX, CostModel::ssd()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    d.read(PageId(t * 1000 + i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.stats().total_reads(), 400);
    }
}
