//! Deterministic fault injection and bounded-retry recovery.
//!
//! The pager detects corruption ([`crate::PageFile`] re-verifies every
//! checksum on every read) but detection alone is not resilience: a
//! production service must *recover* from transient I/O hiccups and
//! *degrade* — not die — on permanent ones. This module supplies both
//! halves plus the instrument that proves them:
//!
//! - [`PageIo`] is the injectable read seam behind the pager. The
//!   production implementation is [`PageFile`] itself (a passthrough);
//!   [`FaultFile`] wraps any inner reader and injects faults from a
//!   seeded, replayable [`FaultPlan`].
//! - [`RetryPolicy`] + [`with_retry`] give transient errors (classified
//!   by [`StorageError::is_transient`]) a bounded number of attempts
//!   with decorrelated-jitter backoff. Permanent errors are returned on
//!   the first attempt, untouched.
//! - [`tear_page`] physically corrupts a page *on disk* — the torn-write
//!   scenario — so the real checksum machinery (not a simulated error)
//!   produces the failure.
//!
//! ## Determinism
//!
//! Every injection decision is a pure function of
//! `(plan.seed, page, logical read index of that page)` — independent of
//! thread interleaving, wall-clock time and the order *different* pages
//! are read in. Replaying the same plan against the same access pattern
//! injects the same faults, which is what lets the chaos suite shrink a
//! red run to a seed. Transient faults come in bursts of at most
//! [`FaultPlan::max_consecutive`] consecutive failures per page, so any
//! retry policy with `max_attempts > max_consecutive` is *guaranteed* to
//! recover from a transient-only plan — the property the chaos suite's
//! byte-identical assertion rests on.

use crate::file::{PageFile, StorageError, FILE_HEADER_BYTES, PAGE_HEADER_BYTES};
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Positioned page reads — the seam between the frame pool / scout
/// engine and the physical file, so tests can interpose a fault
/// injector without touching production code paths.
///
/// Implemented by [`PageFile`] (the production passthrough) and
/// [`FaultFile`] (the chaos harness).
pub trait PageIo: Send + Sync {
    /// Read page `page`'s payload into `buf` (cleared and refilled).
    fn read_page_into(&self, page: u64, buf: &mut Vec<u8>) -> Result<(), StorageError>;

    /// Number of pages in the file.
    fn page_count(&self) -> u64;

    /// The page size (including the per-page header).
    fn page_size(&self) -> usize;

    /// The file's metadata blob.
    fn meta(&self) -> &[u8];
}

impl PageIo for PageFile {
    fn read_page_into(&self, page: u64, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        PageFile::read_page_into(self, page, buf)
    }

    fn page_count(&self) -> u64 {
        PageFile::page_count(self)
    }

    fn page_size(&self) -> usize {
        PageFile::page_size(self)
    }

    fn meta(&self) -> &[u8] {
        PageFile::meta(self)
    }
}

/// SplitMix64 — the deterministic decision hash behind every injection.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, replayable fault schedule for a [`FaultFile`].
///
/// The plan is pure data: two plans with equal fields inject identical
/// faults against identical access patterns. [`dump`](Self::dump)
/// serialises it to a line CI can archive next to a red run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of every injection decision.
    pub seed: u64,
    /// Probability (in permille, 0..=1000) that a given per-page read
    /// *window* carries a transient-fault burst.
    pub transient_permille: u32,
    /// Longest transient burst: at most this many consecutive failures
    /// of one page before a read of it succeeds. Retry policies with
    /// `max_attempts > max_consecutive` always recover.
    pub max_consecutive: u32,
    /// Injected latency per faulted attempt, in microseconds (0 = none)
    /// — models a disk that is slow *and* flaky, and exercises the
    /// server's time budgets.
    pub latency_us: u64,
    /// Pages whose reads fail **permanently** with
    /// [`StorageError::PageChecksum`] — targeted bit-rot. Sorted,
    /// deduplicated on construction.
    pub corrupt_pages: Vec<u64>,
    /// Write-side crash point for [`FaultLog`]: after this many bytes
    /// have been appended through the wrapper, everything else is
    /// dropped on the floor — the write that straddles the offset
    /// persists only its prefix (a torn record), and every later write
    /// or sync fails permanently, as if the process had died.
    /// `None` = never crash.
    pub write_crash_at: Option<u64>,
    /// Write-side bit flips for [`FaultLog`]: `(offset, mask)` pairs,
    /// where `offset` counts bytes appended through the wrapper and the
    /// byte landing there is XORed with `mask` *before* it reaches the
    /// disk — silent media corruption inside acknowledged history.
    /// Sorted by offset, deduplicated on construction.
    pub write_flips: Vec<(u64, u8)>,
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_permille: 0,
            max_consecutive: 2,
            latency_us: 0,
            corrupt_pages: Vec::new(),
            write_crash_at: None,
            write_flips: Vec::new(),
        }
    }

    /// Set the transient-fault rate in permille (clamped to 1000).
    pub fn with_transient_permille(mut self, permille: u32) -> Self {
        self.transient_permille = permille.min(1000);
        self
    }

    /// Set the longest transient burst (clamped to at least 1).
    pub fn with_max_consecutive(mut self, n: u32) -> Self {
        self.max_consecutive = n.max(1);
        self
    }

    /// Set the injected latency per faulted attempt.
    pub fn with_latency_us(mut self, us: u64) -> Self {
        self.latency_us = us;
        self
    }

    /// Set the permanently corrupt pages (sorted and deduplicated).
    pub fn with_corrupt_pages(mut self, mut pages: Vec<u64>) -> Self {
        pages.sort_unstable();
        pages.dedup();
        self.corrupt_pages = pages;
        self
    }

    /// Set the write-side crash point in appended bytes (see
    /// [`write_crash_at`](Self::write_crash_at)).
    pub fn with_write_crash_at(mut self, offset: u64) -> Self {
        self.write_crash_at = Some(offset);
        self
    }

    /// Add a write-side bit flip at appended-byte `offset` (XOR `mask`,
    /// clamped to nonzero so every flip actually corrupts).
    pub fn with_write_flip(mut self, offset: u64, mask: u8) -> Self {
        self.write_flips.push((offset, mask.max(1)));
        self.write_flips.sort_unstable();
        self.write_flips.dedup();
        self
    }

    /// Whether this plan contains only recoverable (transient) faults.
    pub fn is_transient_only(&self) -> bool {
        self.corrupt_pages.is_empty()
            && self.write_crash_at.is_none()
            && self.write_flips.is_empty()
    }

    /// One-line replayable description — what CI archives when a chaos
    /// run fails, so the failure replays from the artifact alone.
    pub fn dump(&self) -> String {
        format!(
            "FaultPlan {{ seed: {}, transient_permille: {}, max_consecutive: {}, \
             latency_us: {}, corrupt_pages: {:?}, write_crash_at: {:?}, \
             write_flips: {:?} }}",
            self.seed,
            self.transient_permille,
            self.max_consecutive,
            self.latency_us,
            self.corrupt_pages,
            self.write_crash_at,
            self.write_flips
        )
    }

    /// The transient-burst length for `page`'s read window `window`:
    /// `0` (no fault) or `1..=max_consecutive`.
    fn burst_len(&self, page: u64, window: u64) -> u64 {
        if self.transient_permille == 0 {
            return 0;
        }
        let h = splitmix64(
            self.seed
                ^ page.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ window.wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        if (h % 1000) as u32 >= self.transient_permille {
            return 0;
        }
        1 + (h >> 32) % u64::from(self.max_consecutive)
    }

    /// The flavour of the `k`-th transient failure of (`page`,
    /// `window`): rotates through the `EINTR`-class error kinds plus a
    /// short read, all of which classify as transient.
    fn transient_error(&self, page: u64, window: u64, k: u64) -> StorageError {
        let h = splitmix64(
            self.seed ^ splitmix64(page) ^ window ^ k.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let (kind, context) = match h % 4 {
            0 => (std::io::ErrorKind::Interrupted, "read page (injected EINTR)"),
            1 => (std::io::ErrorKind::WouldBlock, "read page (injected EWOULDBLOCK)"),
            2 => (std::io::ErrorKind::TimedOut, "read page (injected timeout)"),
            _ => (std::io::ErrorKind::Interrupted, "read page (injected short read)"),
        };
        StorageError::Io { kind, context }
    }
}

/// A [`PageIo`] that wraps an inner reader and injects the faults a
/// [`FaultPlan`] schedules. Header and metadata reads (done at open,
/// before a `FaultFile` exists) are unaffected; only page reads fault.
///
/// Thread-safe: per-page logical read indices are kept under a mutex,
/// so concurrent readers of different pages do not perturb each other's
/// schedules.
pub struct FaultFile<F: PageIo> {
    inner: F,
    plan: FaultPlan,
    /// page → logical read index (how many reads of it were attempted).
    reads: Mutex<HashMap<u64, u64>>,
    injected: AtomicU64,
}

impl<F: PageIo> FaultFile<F> {
    /// Wrap `inner`, injecting faults from `plan`.
    pub fn new(inner: F, plan: FaultPlan) -> Self {
        FaultFile { inner, plan, reads: Mutex::new(HashMap::new()), injected: AtomicU64::new(0) }
    }

    /// The plan driving this file.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far (transient and permanent).
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped reader.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: PageIo> PageIo for FaultFile<F> {
    fn read_page_into(&self, page: u64, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        // Claim this read's logical index first, so concurrent readers
        // of the same page each get a distinct, deterministic slot.
        let idx = {
            let mut reads = self.reads.lock().unwrap_or_else(|p| p.into_inner());
            let c = reads.entry(page).or_insert(0);
            let idx = *c;
            *c += 1;
            idx
        };
        if self.plan.latency_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.plan.latency_us));
        }
        if self.plan.corrupt_pages.binary_search(&page).is_ok() {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::PageChecksum { page });
        }
        // Group reads of one page into windows of max_consecutive + 1
        // attempts; a faulty window fails its first `burst` attempts and
        // then succeeds, bounding any burst below the window size.
        let window_size = u64::from(self.plan.max_consecutive) + 1;
        let (window, offset) = (idx / window_size, idx % window_size);
        let burst = self.plan.burst_len(page, window);
        if offset < burst {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(self.plan.transient_error(page, window, offset));
        }
        self.inner.read_page_into(page, buf)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn meta(&self) -> &[u8] {
        self.inner.meta()
    }
}

/// Physically corrupt page `page` of the page file at `path`, emulating
/// a torn write: the tail half of the page is overwritten with garbage
/// while its stored checksum stays stale, so the next read of that page
/// fails with [`StorageError::PageChecksum`] through the *real*
/// verification path. The header, every other page and the metadata
/// blob are untouched.
pub fn tear_page<P: AsRef<Path>>(path: P, page: u64) -> Result<(), StorageError> {
    let err = |context: &'static str| {
        move |e: std::io::Error| StorageError::Io { kind: e.kind(), context }
    };
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(err("open for tear"))?;
    let mut header = [0u8; FILE_HEADER_BYTES];
    file.read_exact(&mut header).map_err(err("read header"))?;
    let page_size = u64::from(u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")));
    let page_count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    if page_size == 0 || page >= page_count {
        return Err(StorageError::PageOutOfRange { page, count: page_count });
    }
    // Overwrite the back half of the *actual* payload (the checksum only
    // covers `payload_len` bytes — trailing padding is free real estate):
    // a write that made it through the header but died before the
    // payload finished. Empty payloads get their stored checksum torn.
    let page_start = FILE_HEADER_BYTES as u64 + page * page_size;
    let mut page_header = [0u8; PAGE_HEADER_BYTES];
    file.seek(SeekFrom::Start(page_start)).map_err(err("seek page header"))?;
    file.read_exact(&mut page_header).map_err(err("read page header"))?;
    let payload_len = u64::from(u32::from_le_bytes(page_header[0..4].try_into().expect("4 bytes")));
    let (torn_from, torn_len) = if payload_len == 0 {
        (page_start + 8, 8) // the stored checksum field
    } else {
        (page_start + PAGE_HEADER_BYTES as u64 + payload_len / 2, payload_len - payload_len / 2)
    };
    // Inverting the original bytes guarantees the torn region differs.
    let mut garbage = vec![0u8; torn_len as usize];
    file.seek(SeekFrom::Start(torn_from)).map_err(err("seek to tear"))?;
    file.read_exact(&mut garbage).map_err(err("read tear region"))?;
    for b in &mut garbage {
        *b = !*b;
    }
    file.seek(SeekFrom::Start(torn_from)).map_err(err("seek to tear"))?;
    file.write_all(&garbage).map_err(err("tear page"))?;
    file.sync_all().map_err(err("sync tear"))?;
    Ok(())
}

/// Bounded retry with decorrelated-jitter backoff for transient I/O.
///
/// All durations are integer microseconds so the policy is `Copy + Eq`
/// and testable without a clock. The backoff sequence follows the
/// decorrelated-jitter scheme: each delay is drawn (deterministically,
/// from the attempt's hash) between `base_us` and three times the
/// previous delay, capped at `cap_us` — spreading concurrent retriers
/// out instead of synchronising them into retry storms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Lower bound of every backoff delay, in microseconds.
    pub base_us: u64,
    /// Upper bound of every backoff delay, in microseconds.
    pub cap_us: u64,
}

impl Default for RetryPolicy {
    /// 4 attempts, 50 µs base, 5 ms cap: recovers any transient burst of
    /// up to 3 consecutive failures while bounding the worst-case added
    /// latency of a single page read to ~15 ms.
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_us: 50, cap_us: 5_000 }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, base_us: 0, cap_us: 0 }
    }

    /// The deterministic backoff delay before retry attempt `attempt`
    /// (1-based: the delay slept after the `attempt`-th failure), for a
    /// retrier identified by `salt`. Always within
    /// `base_us..=cap_us` (and exactly 0 when both bounds are 0).
    pub fn backoff_us(&self, salt: u64, attempt: u32) -> u64 {
        if self.cap_us <= self.base_us {
            return self.base_us;
        }
        // Decorrelated jitter, derandomised: prev grows like base·3^k
        // but each step re-draws uniformly from [base, prev·3].
        let mut prev = self.base_us;
        let mut draw = 0u64;
        for k in 1..=attempt {
            let hi = prev.saturating_mul(3).clamp(self.base_us + 1, self.cap_us);
            let h = splitmix64(salt ^ u64::from(k).wrapping_mul(0xD6E8_FEB8_6659_FD93));
            draw = self.base_us + h % (hi - self.base_us + 1);
            prev = draw;
        }
        draw.min(self.cap_us)
    }
}

/// Run `op`, retrying transient failures under `policy`, sleeping via
/// `sleep` (microseconds) between attempts. Returns the final result
/// plus the number of retries performed (0 = first attempt succeeded or
/// failed permanently). Permanent errors short-circuit immediately.
///
/// `salt` decorrelates concurrent retriers' backoff sequences (use the
/// page index); `sleep` is injectable so unit tests record delays
/// instead of paying them.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    salt: u64,
    mut sleep: impl FnMut(u64),
    mut op: impl FnMut() -> Result<T, StorageError>,
) -> (Result<T, StorageError>, u32) {
    let attempts = policy.max_attempts.max(1);
    let mut retries = 0u32;
    loop {
        match op() {
            Ok(v) => return (Ok(v), retries),
            Err(e) if e.is_transient() && retries + 1 < attempts => {
                retries += 1;
                crate::metrics::fault_obs().retries.inc();
                let delay = policy.backoff_us(salt, retries);
                if delay > 0 {
                    sleep(delay);
                }
            }
            Err(e) => {
                crate::metrics::fault_obs().exhausted.inc();
                return (Err(e), retries);
            }
        }
    }
}

/// [`with_retry`] with a real `std::thread::sleep` — the production
/// sleeper used by the paged engine's demand reads.
pub fn with_retry_sleeping<T>(
    policy: &RetryPolicy,
    salt: u64,
    op: impl FnMut() -> Result<T, StorageError>,
) -> (Result<T, StorageError>, u32) {
    with_retry(policy, salt, |us| std::thread::sleep(std::time::Duration::from_micros(us)), op)
}

// ---------------------------------------------------------------------
// Write-side injection: the WAL's chaos harness
// ---------------------------------------------------------------------

/// The error a [`FaultLog`] returns once its crash point is reached.
/// Deliberately permanent ([`StorageError::is_transient`] = false): a
/// dead process does not come back because the caller retried.
fn crash_error() -> StorageError {
    StorageError::Io {
        kind: std::io::ErrorKind::BrokenPipe,
        context: "injected crash: log writes dropped",
    }
}

/// A [`LogIo`](crate::wal::LogIo) wrapper that injects **write-side**
/// faults from a [`FaultPlan`] — the mirror image of [`FaultFile`] for
/// the WAL's append path.
///
/// Two fault families, both deterministic functions of the plan:
///
/// - **Crash at byte offset** ([`FaultPlan::write_crash_at`]): the
///   append that crosses the offset persists only its prefix — a torn
///   record for replay to find — and every subsequent write, sync or
///   replace fails with a permanent error, exactly like a process that
///   died mid-write. A whole-file [`replace`](crate::wal::LogIo::replace)
///   that would cross the offset persists *nothing* (the temp-file +
///   rename idiom is all-or-nothing), modelling a crash before the
///   rename.
/// - **Bit flips** ([`FaultPlan::write_flips`]): bytes at the given
///   appended-byte offsets are XORed before they reach the inner log —
///   silent corruption *inside* acknowledged history, which replay must
///   refuse rather than truncate.
///
/// Offsets count bytes appended through this wrapper since it was
/// constructed (reads and the open-time truncate do not advance them),
/// so a chaos test can aim a crash at any byte of the op stream it is
/// about to write.
pub struct FaultLog<L: crate::wal::LogIo> {
    inner: L,
    plan: FaultPlan,
    appended: u64,
    crashed: bool,
}

impl<L: crate::wal::LogIo> FaultLog<L> {
    /// Wrap `inner`, injecting write faults from `plan`.
    pub fn new(inner: L, plan: FaultPlan) -> Self {
        FaultLog { inner, plan, appended: 0, crashed: false }
    }

    /// Whether the crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The plan driving this log.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Apply the plan's bit flips to the bytes about to occupy appended
    /// offsets `[start, start + bytes.len())`.
    fn flipped(&self, start: u64, bytes: &[u8]) -> Option<Vec<u8>> {
        let end = start + bytes.len() as u64;
        let mut owned: Option<Vec<u8>> = None;
        for &(off, mask) in &self.plan.write_flips {
            if off >= start && off < end {
                let buf = owned.get_or_insert_with(|| bytes.to_vec());
                buf[(off - start) as usize] ^= mask;
            }
        }
        owned
    }
}

impl<L: crate::wal::LogIo> crate::wal::LogIo for FaultLog<L> {
    fn read_all(&mut self, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        self.inner.read_all(buf)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        if self.crashed {
            return Err(crash_error());
        }
        let start = self.appended;
        let keep = match self.plan.write_crash_at {
            Some(at) if at <= start => {
                self.crashed = true;
                return Err(crash_error());
            }
            Some(at) if at < start + bytes.len() as u64 => (at - start) as usize,
            _ => bytes.len(),
        };
        let flipped = self.flipped(start, bytes);
        let to_write = &flipped.as_deref().unwrap_or(bytes)[..keep];
        self.inner.append(to_write)?;
        self.appended = start + keep as u64;
        if keep < bytes.len() {
            // The tail of this write is lost; flush the surviving torn
            // prefix so recovery has something real to truncate.
            let _ = self.inner.sync();
            self.crashed = true;
            return Err(crash_error());
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        if self.crashed {
            return Err(crash_error());
        }
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        if self.crashed {
            return Err(crash_error());
        }
        self.inner.truncate(len)
    }

    fn replace(&mut self, contents: &[u8]) -> Result<(), StorageError> {
        if self.crashed {
            return Err(crash_error());
        }
        let start = self.appended;
        let end = start + contents.len() as u64;
        if let Some(at) = self.plan.write_crash_at {
            if at <= start || at < end {
                // Crash anywhere inside the replace window: the rename
                // never happens, the old file stays fully intact.
                self.crashed = true;
                return Err(crash_error());
            }
        }
        let flipped = self.flipped(start, contents);
        self.inner.replace(flipped.as_deref().unwrap_or(contents))?;
        self.appended = end;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::PageFileWriter;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("nspf-fault-{}-{tag}-{n}", std::process::id()))
    }

    struct TempFile(PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn sample(path: &Path, pages: usize) -> PageFile {
        let mut w = PageFileWriter::create(path, 64).expect("create");
        for i in 0..pages {
            w.append_page(format!("payload-{i}").as_bytes()).expect("append");
        }
        w.finish(b"meta").expect("finish");
        PageFile::open(path).expect("open")
    }

    #[test]
    fn transient_classification() {
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::WouldBlock,
            std::io::ErrorKind::TimedOut,
        ] {
            assert!(StorageError::Io { kind, context: "t" }.is_transient());
        }
        assert!(StorageError::FrameBudgetExhausted { frames: 1 }.is_transient());
        for permanent in [
            StorageError::Io { kind: std::io::ErrorKind::NotFound, context: "t" },
            StorageError::BadMagic,
            StorageError::PageChecksum { page: 0 },
            StorageError::HeaderChecksum,
            StorageError::Quarantined { pages: vec![1] },
            StorageError::BadPages { pages: vec![0, 2] },
            StorageError::Corrupt("x".into()),
        ] {
            assert!(!permanent.is_transient(), "{permanent:?}");
        }
    }

    #[test]
    fn zero_rate_plan_is_a_passthrough() {
        let t = TempFile(temp_path("passthrough"));
        let file = sample(&t.0, 3);
        let faulted = FaultFile::new(file, FaultPlan::new(42));
        let mut buf = Vec::new();
        for page in 0..3u64 {
            for _ in 0..5 {
                faulted.read_page_into(page, &mut buf).expect("no faults scheduled");
                assert_eq!(buf, format!("payload-{page}").as_bytes());
            }
        }
        assert_eq!(faulted.injected_faults(), 0);
    }

    #[test]
    fn bursts_are_bounded_and_replayable() {
        let t = TempFile(temp_path("burst"));
        let file = sample(&t.0, 4);
        let plan = FaultPlan::new(7).with_transient_permille(1000).with_max_consecutive(3);
        let faulted = FaultFile::new(file, plan.clone());
        let mut buf = Vec::new();
        // Under a 100% fault rate every window starts with a burst, but a
        // read never fails more than max_consecutive times in a row.
        let mut sequences: Vec<Vec<bool>> = Vec::new();
        for page in 0..4u64 {
            let mut seq = Vec::new();
            let mut consecutive = 0u32;
            for _ in 0..40 {
                match faulted.read_page_into(page, &mut buf) {
                    Ok(()) => {
                        consecutive = 0;
                        seq.push(true);
                    }
                    Err(e) => {
                        assert!(e.is_transient(), "only transient faults scheduled: {e:?}");
                        consecutive += 1;
                        assert!(consecutive <= 3, "burst exceeded max_consecutive");
                        seq.push(false);
                    }
                }
            }
            assert!(seq.iter().any(|ok| !ok), "100% windows must fault");
            assert!(seq.iter().any(|ok| *ok), "every window must also succeed");
            sequences.push(seq);
        }
        // Replay: an identical plan over an identical access pattern
        // yields the identical fault sequence.
        let faulted2 = FaultFile::new(PageFile::open(&t.0).expect("reopen"), plan);
        for (page, want) in sequences.iter().enumerate() {
            for &ok in want {
                assert_eq!(faulted2.read_page_into(page as u64, &mut buf).is_ok(), ok);
            }
        }
    }

    #[test]
    fn corrupt_pages_fail_permanently_and_spare_the_rest() {
        let t = TempFile(temp_path("corrupt"));
        let file = sample(&t.0, 4);
        let plan = FaultPlan::new(1).with_corrupt_pages(vec![2, 2, 0]);
        assert_eq!(plan.corrupt_pages, vec![0, 2], "sorted and deduplicated");
        assert!(!plan.is_transient_only());
        let faulted = FaultFile::new(file, plan);
        let mut buf = Vec::new();
        for _ in 0..3 {
            assert_eq!(
                faulted.read_page_into(0, &mut buf),
                Err(StorageError::PageChecksum { page: 0 }),
                "corrupt page fails every attempt"
            );
        }
        faulted.read_page_into(1, &mut buf).expect("healthy page");
        assert_eq!(buf, b"payload-1");
    }

    #[test]
    fn tear_page_breaks_exactly_one_page_through_real_checksums() {
        let t = TempFile(temp_path("tear"));
        drop(sample(&t.0, 3));
        tear_page(&t.0, 1).expect("tear");
        let file = PageFile::open(&t.0).expect("header and meta intact");
        let mut buf = Vec::new();
        file.read_page_into(0, &mut buf).expect("page 0 intact");
        assert_eq!(file.read_page_into(1, &mut buf), Err(StorageError::PageChecksum { page: 1 }));
        file.read_page_into(2, &mut buf).expect("page 2 intact");
        assert!(matches!(tear_page(&t.0, 99), Err(StorageError::PageOutOfRange { page: 99, .. })));
    }

    #[test]
    fn retry_recovers_transient_bursts_within_the_attempt_budget() {
        let fails = AtomicU32::new(3);
        let policy = RetryPolicy::default(); // 4 attempts > 3 failures
        let mut slept = Vec::new();
        let (res, retries) = with_retry(
            &policy,
            9,
            |us| slept.push(us),
            || {
                if fails
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| f.checked_sub(1))
                    .is_ok()
                {
                    Err(StorageError::Io { kind: std::io::ErrorKind::Interrupted, context: "t" })
                } else {
                    Ok(123u32)
                }
            },
        );
        assert_eq!(res, Ok(123));
        assert_eq!(retries, 3);
        assert_eq!(slept.len(), 3);
        for &us in &slept {
            assert!((policy.base_us..=policy.cap_us).contains(&us), "delay {us} out of bounds");
        }
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let policy = RetryPolicy { max_attempts: 3, base_us: 10, cap_us: 100 };
        let mut calls = 0u32;
        let (res, retries) = with_retry(
            &policy,
            0,
            |_| {},
            || {
                calls += 1;
                Err::<(), _>(StorageError::Io {
                    kind: std::io::ErrorKind::WouldBlock,
                    context: "t",
                })
            },
        );
        assert!(res.is_err());
        assert_eq!((calls, retries), (3, 2), "max_attempts bounds total calls");
    }

    #[test]
    fn permanent_errors_never_retry() {
        let mut calls = 0u32;
        let (res, retries) = with_retry(
            &RetryPolicy::default(),
            0,
            |_| panic!("no sleep"),
            || {
                calls += 1;
                Err::<(), _>(StorageError::PageChecksum { page: 7 })
            },
        );
        assert_eq!(res, Err(StorageError::PageChecksum { page: 7 }));
        assert_eq!((calls, retries), (1, 0));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy { max_attempts: 8, base_us: 100, cap_us: 2_000 };
        for salt in [0u64, 1, 99, u64::MAX] {
            for attempt in 1..8u32 {
                let a = policy.backoff_us(salt, attempt);
                let b = policy.backoff_us(salt, attempt);
                assert_eq!(a, b, "same inputs, same delay");
                assert!((100..=2_000).contains(&a), "salt {salt} attempt {attempt}: {a}");
            }
        }
        // Different salts decorrelate (at least one attempt differs).
        let diverge = (1..8u32).any(|k| policy.backoff_us(1, k) != policy.backoff_us(2, k));
        assert!(diverge, "salts must decorrelate the sequences");
        assert_eq!(RetryPolicy::none().backoff_us(5, 1), 0);
    }

    #[test]
    fn plan_dump_is_replayable_documentation() {
        let plan = FaultPlan::new(3)
            .with_transient_permille(50)
            .with_max_consecutive(2)
            .with_latency_us(10)
            .with_corrupt_pages(vec![4]);
        let d = plan.dump();
        for needle in ["seed: 3", "transient_permille: 50", "max_consecutive: 2", "[4]"] {
            assert!(d.contains(needle), "{d}");
        }
    }
}
