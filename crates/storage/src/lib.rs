//! # neurospatial-storage
//!
//! The paged-storage layer: a real on-disk page format with a pinning
//! buffer pool, plus the original deterministic I/O *simulator*.
//!
//! ## Real I/O — the out-of-core stack
//!
//! Datasets larger than RAM live in a *page file* ([`PageFile`], written
//! by [`PageFileWriter`]): a versioned, checksummed array of fixed-size
//! pages plus an index-specific metadata blob (byte layout in the
//! [`mod@file`] module docs). Query engines read pages through a
//! [`FramePool`] — a bounded set of in-memory frames with CLOCK or LRU
//! eviction ([`EvictionPolicy`]), pin guards ([`FrameGuard`]) that make
//! eviction of in-use pages impossible, and hit/miss/eviction/prefetch
//! counters ([`FrameStats`]) that surface in the facade's query
//! statistics. Every failure mode — corrupt bytes, truncation, version
//! skew, an exhausted frame budget — is a typed [`StorageError`], never
//! a panic.
//!
//! The out-of-core FLAT engine built on this stack lives in
//! `neurospatial-scout` (the serializer needs the FLAT index types);
//! this crate owns the format and the buffer manager.
//!
//! ## Durability — the write-ahead log
//!
//! Live ingest writes through a [`Wal`] (module [`mod@wal`]):
//! FNV-1a-checksummed records with monotonic LSNs, group commit with
//! one fsync per commit, atomic checkpoints that bound replay, and
//! torn-tail detection on open. Writes flow through the [`LogIo`] seam
//! so [`FaultLog`] can inject crashes at exact byte offsets and bit
//! flips into acknowledged history, under the same seeded [`FaultPlan`]
//! replay discipline as the read path.
//!
//! ## Simulated I/O — the measurement instrument
//!
//! The demo's live statistics panels (Figures 3 and 6 of the paper)
//! show *disk pages retrieved* and *time* while queries execute. To
//! report the same quantities reproducibly on any machine, the
//! cost-model experiments account page accesses against a [`DiskSim`]
//! (two-parameter random/sequential model) through an LRU
//! [`BufferPool`]. The simulator does no real I/O by design — it is the
//! deterministic yardstick the prefetching experiments are scored with,
//! while the [`FramePool`] path measures actual wall-clock stalls.

#![warn(missing_docs)]

pub mod buffer;
pub mod disk;
pub mod fault;
pub mod file;
pub mod frame;
pub mod metrics;
pub mod page;
pub mod wal;

pub use buffer::BufferPool;
pub use disk::{CostModel, DiskSim, IoError, IoStats};
pub use fault::{
    tear_page, with_retry, with_retry_sleeping, FaultFile, FaultLog, FaultPlan, PageIo, RetryPolicy,
};
pub use file::{checksum64, Checksum64, PageFile, PageFileWriter, StorageError};
pub use file::{FILE_HEADER_BYTES, PAGE_FILE_MAGIC, PAGE_FILE_VERSION, PAGE_HEADER_BYTES};
pub use frame::{EvictionPolicy, FrameGuard, FramePool, FrameStats};
pub use page::{PageId, PAGE_SIZE_BYTES};
pub use wal::{FileLog, LogIo, Wal, WalRecovery};
