//! # neurospatial-storage
//!
//! A deterministic paged-storage simulator.
//!
//! The demo's live statistics panels (Figures 3 and 6 of the paper) show
//! *disk pages retrieved* and *time* while queries execute. To report the
//! same quantities reproducibly on any machine, index structures in this
//! workspace account their page accesses against a [`DiskSim`]: every page
//! read is classified as sequential or random and costed with a simple
//! two-parameter model, and an optional LRU [`BufferPool`] absorbs re-reads
//! exactly the way the demo machine's cache would.
//!
//! Nothing here does real I/O — the simulator is the measurement
//! instrument, not a persistence layer. Wall-clock performance of the
//! in-memory algorithms is measured separately by the Criterion benches.

pub mod buffer;
pub mod disk;
pub mod page;

pub use buffer::BufferPool;
pub use disk::{CostModel, DiskSim, IoError, IoStats};
pub use page::{PageId, PAGE_SIZE_BYTES};
