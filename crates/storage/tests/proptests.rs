//! Property tests: the buffer pool behaves exactly like a reference LRU.

use neurospatial_storage::{BufferPool, CostModel, DiskSim, PageId};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Straightforward reference implementation: a deque of page ids, most
/// recent at the front.
struct RefLru {
    cap: usize,
    q: VecDeque<u64>,
}

impl RefLru {
    fn new(cap: usize) -> Self {
        RefLru { cap, q: VecDeque::new() }
    }
    /// Returns true on hit.
    fn access(&mut self, p: u64) -> bool {
        if let Some(pos) = self.q.iter().position(|&x| x == p) {
            self.q.remove(pos);
            self.q.push_front(p);
            true
        } else {
            if self.q.len() == self.cap {
                self.q.pop_back();
            }
            self.q.push_front(p);
            false
        }
    }
}

proptest! {
    #[test]
    fn pool_matches_reference_lru(
        cap in 1usize..16,
        accesses in prop::collection::vec(0u64..32, 0..400),
    ) {
        let disk = DiskSim::new(u64::MAX, CostModel::default());
        let mut pool = BufferPool::new(cap);
        let mut reference = RefLru::new(cap);
        for &a in &accesses {
            let expect_hit = reference.access(a);
            let cost = pool.get(PageId(a), &disk).unwrap();
            prop_assert_eq!(cost == 0.0, expect_hit, "page {}", a);
            prop_assert!(pool.len() <= cap);
            // Residency sets agree.
            let order = pool.lru_order();
            prop_assert_eq!(order.len(), reference.q.len());
            for (got, want) in order.iter().zip(reference.q.iter()) {
                prop_assert_eq!(got.0, *want);
            }
        }
        // Disk reads equal misses exactly.
        prop_assert_eq!(disk.stats().total_reads(), pool.stats().misses);
    }

    #[test]
    fn interleaved_prefetch_preserves_capacity(
        cap in 1usize..12,
        ops in prop::collection::vec((any::<bool>(), 0u64..24), 0..300),
    ) {
        let disk = DiskSim::new(u64::MAX, CostModel::ssd());
        let mut pool = BufferPool::new(cap);
        for &(is_prefetch, page) in &ops {
            if is_prefetch {
                pool.prefetch(PageId(page), &disk).unwrap();
            } else {
                pool.get(PageId(page), &disk).unwrap();
            }
            prop_assert!(pool.len() <= cap);
        }
        // Every miss and every effective prefetch hit the disk exactly once.
        let s = pool.stats();
        prop_assert!(disk.stats().total_reads() >= s.misses);
    }

    #[test]
    fn sequential_scan_costs_less_than_random(
        start in 0u64..1000,
        len in 2u64..64,
    ) {
        let seq = DiskSim::new(u64::MAX, CostModel::default());
        for i in 0..len {
            seq.read(PageId(start + i)).unwrap();
        }
        let rnd = DiskSim::new(u64::MAX, CostModel::default());
        for i in 0..len {
            rnd.read(PageId(start + i * 2)).unwrap(); // gaps → all random
        }
        prop_assert!(seq.stats().total_cost_ms < rnd.stats().total_cost_ms);
        prop_assert_eq!(seq.stats().sequential_reads, len - 1);
        prop_assert_eq!(rnd.stats().sequential_reads, 0);
    }
}
